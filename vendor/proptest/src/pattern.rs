//! String generation from the regex-like patterns proptest accepts as
//! `&str` strategies.
//!
//! Supports the subset the workspace's tests use: literal characters,
//! character classes with ranges (`[a-z0-9._-]`, `[ -~]`), groups with
//! alternation (`(/|[a-z.]{1,8})`), bounded repetition (`{n}`,
//! `{m,n}`, `*`, `+`, `?`), and the `\PC` escape (any printable
//! character). Unsupported syntax panics with the offending pattern so
//! a new test immediately flags what to add.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Node {
    /// A sequence of nodes, generated in order.
    Seq(Vec<Node>),
    /// Uniform choice between alternatives.
    Alt(Vec<Node>),
    /// Uniform choice from a set of characters.
    Class(Vec<char>),
    /// A literal character.
    Lit(char),
    /// Repeat the inner node `min..=max` times.
    Repeat(Box<Node>, u32, u32),
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let node = Parser::new(pattern).parse();
    let mut out = String::new();
    emit(&node, rng, &mut out);
    out
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Seq(items) => {
            for item in items {
                emit(item, rng, out);
            }
        }
        Node::Alt(arms) => {
            let idx = rng.below(arms.len() as u64) as usize;
            emit(&arms[idx], rng, out);
        }
        Node::Class(set) => {
            let idx = rng.below(set.len() as u64) as usize;
            out.push(set[idx]);
        }
        Node::Lit(c) => out.push(*c),
        Node::Repeat(inner, min, max) => {
            let n = *min as u64 + rng.below(u64::from(*max - *min) + 1);
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

/// The printable set used for `\PC`: printable ASCII plus a few
/// multi-byte characters so UTF-8 handling gets exercised.
fn printable_set() -> Vec<char> {
    let mut set: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
    set.extend(['é', 'λ', '中', '☃']);
    set
}

struct Parser<'a> {
    pattern: &'a str,
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Parser<'a> {
        Parser {
            pattern,
            chars: pattern.chars().peekable(),
        }
    }

    fn unsupported(&self, what: &str) -> ! {
        panic!(
            "unsupported pattern construct ({what}) in {:?}",
            self.pattern
        );
    }

    fn parse(mut self) -> Node {
        let node = self.parse_alt();
        if self.chars.peek().is_some() {
            self.unsupported("trailing input");
        }
        node
    }

    /// alt := seq ('|' seq)*
    fn parse_alt(&mut self) -> Node {
        let mut arms = vec![self.parse_seq()];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            arms.push(self.parse_seq());
        }
        if arms.len() == 1 {
            arms.pop().expect("one arm")
        } else {
            Node::Alt(arms)
        }
    }

    /// seq := (atom repeat?)* — stops at '|' or ')'.
    fn parse_seq(&mut self) -> Node {
        let mut items = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom();
            items.push(self.parse_repeat(atom));
        }
        Node::Seq(items)
    }

    fn parse_atom(&mut self) -> Node {
        match self.chars.next() {
            Some('(') => {
                let inner = self.parse_alt();
                if self.chars.next() != Some(')') {
                    self.unsupported("unclosed group");
                }
                inner
            }
            Some('[') => self.parse_class(),
            Some('\\') => self.parse_escape(),
            Some('.') => Node::Class(printable_set()),
            Some(c) if !"{}*+?".contains(c) => Node::Lit(c),
            _ => self.unsupported("atom"),
        }
    }

    fn parse_escape(&mut self) -> Node {
        match self.chars.next() {
            // \PC — "not in Unicode category Other": printables.
            Some('P') => match self.chars.next() {
                Some('C') => Node::Class(printable_set()),
                _ => self.unsupported("\\P category"),
            },
            Some('n') => Node::Lit('\n'),
            Some('t') => Node::Lit('\t'),
            Some(
                c @ ('\\' | '.' | '[' | ']' | '(' | ')' | '{' | '}' | '|' | '*' | '+' | '?' | '-'
                | '/'),
            ) => Node::Lit(c),
            _ => self.unsupported("escape"),
        }
    }

    fn parse_class(&mut self) -> Node {
        let mut set: Vec<char> = Vec::new();
        loop {
            match self.chars.next() {
                Some(']') => break,
                Some('\\') => match self.parse_escape() {
                    Node::Lit(c) => set.push(c),
                    Node::Class(cs) => set.extend(cs),
                    _ => self.unsupported("class escape"),
                },
                Some(lo) => {
                    // A range `lo-hi` if a '-' follows and is not the
                    // closing position; otherwise a literal.
                    if self.chars.peek() == Some(&'-') {
                        let mut ahead = self.chars.clone();
                        ahead.next(); // the '-'
                        match ahead.peek() {
                            Some(&hi) if hi != ']' => {
                                self.chars.next();
                                let hi = self.chars.next().expect("peeked");
                                if (lo as u32) > (hi as u32) {
                                    self.unsupported("inverted class range");
                                }
                                set.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
                            }
                            _ => set.push(lo),
                        }
                    } else {
                        set.push(lo);
                    }
                }
                None => self.unsupported("unclosed class"),
            }
        }
        if set.is_empty() {
            self.unsupported("empty class");
        }
        Node::Class(set)
    }

    /// repeat := '{m}' | '{m,n}' | '*' | '+' | '?'
    fn parse_repeat(&mut self, atom: Node) -> Node {
        match self.chars.peek() {
            Some('{') => {
                self.chars.next();
                let mut spec = String::new();
                loop {
                    match self.chars.next() {
                        Some('}') => break,
                        Some(c) => spec.push(c),
                        None => self.unsupported("unclosed repetition"),
                    }
                }
                let (min, max) = match spec.split_once(',') {
                    Some((m, n)) => (
                        m.parse().unwrap_or_else(|_| self.unsupported("repeat min")),
                        n.parse().unwrap_or_else(|_| self.unsupported("repeat max")),
                    ),
                    None => {
                        let n: u32 = spec
                            .parse()
                            .unwrap_or_else(|_| self.unsupported("repeat count"));
                        (n, n)
                    }
                };
                if min > max {
                    self.unsupported("inverted repetition");
                }
                Node::Repeat(Box::new(atom), min, max)
            }
            Some('*') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, 8)
            }
            Some('+') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 1, 8)
            }
            Some('?') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, 1)
            }
            _ => atom,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pattern: &str, n: usize) -> Vec<String> {
        let mut rng = TestRng::deterministic(pattern);
        (0..n).map(|_| generate(pattern, &mut rng)).collect()
    }

    #[test]
    fn class_with_ranges() {
        for s in sample("[a-z0-9.]{1,20}", 50) {
            assert!((1..=20).contains(&s.chars().count()), "{s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn space_to_tilde_range() {
        for s in sample("[ -~]{1,40}", 50) {
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn group_alternation() {
        for s in sample("(/|[a-z.]{1,8}){0,8}", 50) {
            assert!(
                s.chars()
                    .all(|c| c == '/' || c.is_ascii_lowercase() || c == '.'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn path_shaped_groups() {
        for s in sample("(/[a-zA-Z0-9._-]{1,12}){1,4}", 50) {
            assert!(s.starts_with('/'), "{s:?}");
            let segments: Vec<&str> = s.split('/').skip(1).collect();
            assert!((1..=4).contains(&segments.len()), "{s:?}");
            assert!(segments.iter().all(|seg| !seg.is_empty()), "{s:?}");
        }
    }

    #[test]
    fn printable_escape_forms() {
        for s in sample("\\PC{0,64}", 30) {
            assert!(s.chars().count() <= 64);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
        for s in sample("[\\PC]{1,64}", 30) {
            assert!((1..=64).contains(&s.chars().count()));
        }
    }

    #[test]
    fn exact_count_repetition() {
        for s in sample("[ab]{3}", 20) {
            assert_eq!(s.len(), 3);
        }
    }
}

//! Value-generation strategies: the [`Strategy`] trait and the
//! combinators the workspace's tests use.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// cloneable generator function over the deterministic [`TestRng`].
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| inner.generate(rng)))
    }
}

/// Types with a canonical whole-domain strategy, via [`crate::any`].
pub trait Arbitrary {
    /// Draw a uniformly random value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}
impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> u16 {
        rng.next_u64() as u16
    }
}
impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}
impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}
impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as i32
    }
}
impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}
impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`crate::any`].
pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Integer ranges are strategies (`0u8..64`, `0..paths.len()`).
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as u128 + draw) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// Signed ranges draw an unsigned offset into the (positive) span.
macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_signed_range_strategy!(i32, i64);

/// Open-ended ranges (`1024u16..`) draw uniformly up to the type's max.
macro_rules! impl_range_from_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as u128) - (self.start as u128) + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as u128 + draw) as $t
            }
        }
    )*};
}
impl_range_from_strategy!(u8, u16, u32, u64, usize);

/// A string literal is a strategy generating matching strings from the
/// supported regex-like subset (see [`crate::pattern`]).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::pattern::generate(self, rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased, cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Union<T> {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Build a union over `arms`; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Tuples of strategies generate tuples of values. The `proptest!`
/// macro relies on this for its argument lists, so arities cover the
/// workspace's widest test (six parameters) with headroom.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_applies() {
        let s = (0u8..10).prop_map(|v| v as u32 + 100);
        let mut rng = TestRng::deterministic("map");
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((100..110).contains(&v));
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let s = (0u8..4, 10u64..12);
        let mut rng = TestRng::deterministic("tuple");
        let (a, b) = s.generate(&mut rng);
        assert!(a < 4);
        assert!((10..12).contains(&b));
    }

    #[test]
    fn boxed_erases_type() {
        let b = (0usize..3).prop_map(|v| v * 2).boxed();
        let mut rng = TestRng::deterministic("boxed");
        for _ in 0..20 {
            assert!(b.generate(&mut rng) % 2 == 0);
        }
    }
}

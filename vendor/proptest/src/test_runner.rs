//! The case runner's support types: the deterministic RNG and the
//! rejection marker used by `prop_assume!`.

/// Marker returned (through the generated closure) when a case is
/// rejected by `prop_assume!`.
#[derive(Debug, Clone, Copy)]
pub struct Reject;

/// A deterministic SplitMix64 generator. Each test derives its seed
/// from the test name, so runs are reproducible without a lockstep
/// global seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name.
    pub fn deterministic(name: &str) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform usize in the half-open range.
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty size range");
        range.start + self.below((range.end - range.start) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_bounded() {
        let mut r = TestRng::deterministic("below");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}

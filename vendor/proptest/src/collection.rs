//! Collection strategies: `proptest::collection::vec`.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy for `Vec<S::Value>` with length drawn from `size`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generate vectors of `element` values with a length in `size`
/// (half-open, like real proptest).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_in(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn length_is_in_range() {
        let s = vec(any::<u8>(), 2..5);
        let mut rng = TestRng::deterministic("veclen");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn nested_vecs_work() {
        let s = vec(vec(any::<u8>(), 1..3), 1..4);
        let mut rng = TestRng::deterministic("nested");
        let v = s.generate(&mut rng);
        assert!(!v.is_empty());
        assert!(v.iter().all(|inner| !inner.is_empty()));
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this path crate
//! implements the slice of proptest the workspace's property tests
//! use: the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//! range / tuple / vec / regex-pattern strategies, `any::<T>()`,
//! `prop_oneof!`, and the `proptest!` runner macro with
//! `proptest_config`, `prop_assert!`, `prop_assert_eq!`, and
//! `prop_assume!`.
//!
//! Differences from real proptest, deliberately accepted for an
//! offline test harness: cases are generated from a deterministic
//! per-test seed (reproducible across runs), and failing cases are
//! **not shrunk** — the panic message carries the failing values via
//! the normal assert formatting instead.

#![warn(missing_docs)]

pub mod collection;
pub mod pattern;
pub mod strategy;
pub mod test_runner;

/// Runner configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; this runner does not shrink.
    pub max_shrink_iters: u32,
    /// Cap on rejected cases (via `prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
            max_global_rejects: 65536,
        }
    }
}

/// The canonical strategy for a type: uniform over its whole domain.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Everything a property test needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run a block of property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///     #[test]
///     fn parses(x in 0u8..64, s in "[a-z]{1,8}") { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expands each test case of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            let __strats = ( $( $strat, )* );
            let mut __accepted: u32 = 0;
            let mut __rejected: u32 = 0;
            while __accepted < __cfg.cases {
                let ( $( $arg, )* ) =
                    $crate::strategy::Strategy::generate(&__strats, &mut __rng);
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::core::result::Result<(), $crate::test_runner::Reject> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __accepted += 1,
                    ::core::result::Result::Err(_) => {
                        __rejected += 1;
                        assert!(
                            __rejected < __cfg.max_global_rejects,
                            "too many prop_assume! rejections ({} accepted)",
                            __accepted
                        );
                    }
                }
            }
        }
    )*};
}

/// Choose uniformly between several strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Assert inside a property test (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn oneof_and_map_cover_all_arms() {
        let strat = prop_oneof![
            (0usize..4).prop_map(|v| ("small", v)),
            (100usize..104).prop_map(|v| ("big", v)),
        ];
        let mut rng = crate::test_runner::TestRng::deterministic("arms");
        let mut seen_small = false;
        let mut seen_big = false;
        for _ in 0..64 {
            match Strategy::generate(&strat, &mut rng) {
                ("small", v) => {
                    assert!(v < 4);
                    seen_small = true;
                }
                ("big", v) => {
                    assert!((100..104).contains(&v));
                    seen_big = true;
                }
                _ => unreachable!(),
            }
        }
        assert!(seen_small && seen_big);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 0u8..64, n in 5usize..9) {
            prop_assert!(x < 64);
            prop_assert!((5..9).contains(&n));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_strategy_honours_len(v in crate::collection::vec(any::<u8>(), 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
        }

        #[test]
        fn pattern_strategy_matches_class(s in "[a-z]{2,4}") {
            prop_assert!((2..=4).contains(&s.chars().count()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }
}

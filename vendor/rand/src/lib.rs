//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container cannot reach crates.io, so this path crate
//! supplies exactly what the workspace uses: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`rngs::SmallRng`], [`thread_rng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! `SmallRng` is xoshiro256** seeded through SplitMix64 — the same
//! construction real `rand` 0.8 uses — so seeded simulations remain
//! deterministic across runs, which `simnet`'s tests rely on.

#![warn(missing_docs)]

use std::ops::Range;

/// The core of a random number generator.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

/// A generator that can be created from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
    /// Build a generator from OS-ish entropy.
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

/// Extension methods every [`RngCore`] gets, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of a [`Standard`]-sampled type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open).
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types uniformly samplable over their whole domain (the `Standard`
/// distribution of real `rand`).
pub trait Standard {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        rng.next_u64() as u8
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy {
    /// Draw uniformly from the half-open `range`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u128;
                // Widening multiply gives an unbiased-enough mapping
                // for simulation workloads without a rejection loop.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as u128;
                (range.start as u128 + draw) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (range.start as i128 + draw) as $t
            }
        }
    )*};
}
impl_uniform_int_signed!(i32: u32, i64: u64);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // Expand the seed with SplitMix64, as real rand does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// The thread-local generator behind [`crate::thread_rng`].
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) SmallRng);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// A per-call generator seeded from process entropy. Unlike real
/// `rand` this is not a shared thread-local handle, but every call
/// yields an independently-seeded stream, which is what the callers
/// (unique token/name generation) need.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng(rngs::SmallRng::seed_from_u64(entropy_seed()))
}

fn entropy_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    // RandomState draws from OS entropy once per process; mix in a
    // counter and the clock so successive calls diverge.
    let mut h = std::collections::hash_map::RandomState::new().build_hasher();
    h.write_u64(COUNTER.fetch_add(1, Ordering::Relaxed));
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    h.write_u64(now);
    h.finish()
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Shuffle in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let u: usize = r.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn thread_rng_streams_diverge() {
        let a = thread_rng().next_u64();
        let b = thread_rng().next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

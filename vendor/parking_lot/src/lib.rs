//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no access to crates.io, so this path crate
//! provides the subset of the `parking_lot` API the workspace uses —
//! [`Mutex`] and [`RwLock`] with non-poisoning guards — implemented on
//! `std::sync`. Poisoning is erased by recovering the inner guard,
//! which matches `parking_lot` semantics (a panicking holder does not
//! wedge the lock for everyone else).

#![warn(missing_docs)]

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Never fails:
    /// a poisoned lock is recovered, as in `parking_lot`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdRwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdRwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn poison_is_recovered() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so this path crate
//! implements the API subset the workspace's benches use: `Criterion`,
//! `benchmark_group` with `measurement_time` / `warm_up_time` /
//! `sample_size` / `throughput`, `bench_function` / `bench_with_input`
//! with `&str` or [`BenchmarkId`] ids, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a plain wall-clock sampler: warm up for the
//! configured time, then take `sample_size` samples whose iteration
//! counts are sized to fill the measurement window, and report
//! min/median/max per-iteration time (plus throughput when set). There
//! is no statistical outlier analysis, HTML report, or baseline
//! comparison. `--test` (passed by `cargo test` to harness-less bench
//! targets) runs every benchmark body exactly once.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput basis for a benchmark group, reported alongside timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter, for groups benching one function over inputs.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted by `bench_function` ids: `&str` or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered benchmark id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // libtest-compat flags cargo passes to harness-less benches
                "--bench" | "--nocapture" | "--quiet" => {}
                other if !other.starts_with('-') && filter.is_none() => {
                    filter = Some(other.to_string());
                }
                _ => {}
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            sample_size: 50,
            throughput: None,
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }

    fn run_one<F>(&mut self, full_id: &str, settings: &Settings, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            settings: settings.clone(),
            report: None,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("{full_id}: ok (test mode, 1 iteration)");
            return;
        }
        match bencher.report.take() {
            Some(report) => report.print(full_id, settings.throughput),
            None => println!("{full_id}: no measurement (Bencher::iter never called)"),
        }
    }
}

#[derive(Debug, Clone)]
struct Settings {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Target wall-clock time for the sampling phase.
    pub fn measurement_time(&mut self, time: Duration) -> &mut BenchmarkGroup<'a> {
        self.measurement_time = time;
        self
    }

    /// Wall-clock time spent warming up before sampling.
    pub fn warm_up_time(&mut self, time: Duration) -> &mut BenchmarkGroup<'a> {
        self.warm_up_time = time;
        self
    }

    /// Number of samples to take during measurement.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup<'a> {
        self.sample_size = n.max(2);
        self
    }

    /// Report throughput derived from per-iteration work.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut BenchmarkGroup<'a> {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark `f` under this group's configuration.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut BenchmarkGroup<'a>
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = self.full_id(id);
        let settings = self.settings();
        self.criterion.run_one(&full_id, &settings, f);
        self
    }

    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut BenchmarkGroup<'a>
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = self.full_id(id);
        let settings = self.settings();
        self.criterion.run_one(&full_id, &settings, |b| f(b, input));
        self
    }

    /// End the group. (Reporting is per-benchmark; this is a no-op kept
    /// for API compatibility.)
    pub fn finish(self) {}

    fn full_id(&self, id: impl IntoBenchmarkId) -> String {
        let id = id.into_id();
        if self.name.is_empty() {
            id
        } else {
            format!("{}/{id}", self.name)
        }
    }

    fn settings(&self) -> Settings {
        Settings {
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            sample_size: self.sample_size,
            throughput: self.throughput,
        }
    }
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    test_mode: bool,
    settings: Settings,
    report: Option<Report>,
}

impl Bencher {
    /// Measure `routine`, timing many batched invocations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }

        // Warm up and estimate per-iteration cost at the same time.
        let warm_up = self.settings.warm_up_time;
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let est_per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size each sample so all samples together roughly fill the
        // measurement window.
        let samples = self.settings.sample_size;
        let per_sample = self.settings.measurement_time.as_secs_f64() / samples as f64;
        let iters_per_sample = ((per_sample / est_per_iter).round() as u64).max(1);

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            per_iter_ns.push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        self.report = Some(Report {
            min_ns: per_iter_ns[0],
            median_ns: per_iter_ns[per_iter_ns.len() / 2],
            max_ns: per_iter_ns[per_iter_ns.len() - 1],
        });
    }
}

struct Report {
    min_ns: f64,
    median_ns: f64,
    max_ns: f64,
}

impl Report {
    fn print(&self, id: &str, throughput: Option<Throughput>) {
        println!(
            "{id}\n{:24}time:   [{} {} {}]",
            "",
            fmt_time(self.min_ns),
            fmt_time(self.median_ns),
            fmt_time(self.max_ns),
        );
        if let Some(tp) = throughput {
            // Fastest sample gives highest throughput, mirroring the
            // [max median min] ordering criterion uses for thrpt lines.
            println!(
                "{:24}thrpt:  [{} {} {}]",
                "",
                fmt_rate(tp, self.max_ns),
                fmt_rate(tp, self.median_ns),
                fmt_rate(tp, self.min_ns),
            );
        }
    }
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn fmt_rate(tp: Throughput, per_iter_ns: f64) -> String {
    let per_sec = |work: u64| work as f64 / (per_iter_ns / 1_000_000_000.0);
    match tp {
        Throughput::Bytes(n) => {
            let bps = per_sec(n);
            if bps < 1024.0 * 1024.0 {
                format!("{:.2} KiB/s", bps / 1024.0)
            } else if bps < 1024.0 * 1024.0 * 1024.0 {
                format!("{:.2} MiB/s", bps / (1024.0 * 1024.0))
            } else {
                format!("{:.3} GiB/s", bps / (1024.0 * 1024.0 * 1024.0))
            }
        }
        Throughput::Elements(n) => format!("{:.1} elem/s", per_sec(n)),
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion {
            test_mode: false,
            filter: None,
        }
    }

    #[test]
    fn bencher_records_a_report() {
        let mut c = fast_criterion();
        let mut g = c.benchmark_group("unit");
        g.measurement_time(Duration::from_millis(20));
        g.warm_up_time(Duration::from_millis(5));
        g.sample_size(5);
        let mut ran = 0u64;
        g.bench_function("count", |b| b.iter(|| ran = ran.wrapping_add(1)));
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("read", 4).into_id(), "read/4");
        assert_eq!(
            BenchmarkId::from_parameter("loopback").into_id(),
            "loopback"
        );
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(12.0).ends_with("ns"));
        assert!(fmt_time(12_000.0).ends_with("µs"));
        assert!(fmt_time(12_000_000.0).ends_with("ms"));
        assert!(fmt_time(2_000_000_000.0).ends_with(" s"));
    }

    #[test]
    fn throughput_formatting_scales() {
        // 64 KiB in 1ms = 64 MiB/s
        let s = fmt_rate(Throughput::Bytes(64 * 1024), 1_000_000.0);
        assert!(s.contains("MiB/s"), "{s}");
    }
}

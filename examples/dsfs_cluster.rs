//! A distributed shared filesystem across several servers (paper §5):
//! one user builds a DSFS out of borrowed machines, several clients
//! share it, and the loss of a device degrades — never destroys — the
//! filesystem.
//!
//! ```sh
//! cargo run --example dsfs_cluster
//! ```

use tss::chirp_client::AuthMethod;
use tss::chirp_proto::testutil::TempDir;
use tss::chirp_server::acl::Acl;
use tss::chirp_server::{FileServer, ServerConfig};
use tss::core::stubfs::DataServer;
use tss::core::Dsfs;
use tss_core::fs::FileSystem;

fn main() -> std::io::Result<()> {
    // One server volunteers as the directory server; three more hold
    // data. Under the recursive storage abstraction they are all the
    // same kind of server — roles are the user's choice.
    let auth = vec![AuthMethod::Hostname];
    let mut dirs = Vec::new();
    let mut servers = Vec::new();
    for _ in 0..4 {
        let dir = TempDir::new();
        let server = FileServer::start(
            ServerConfig::localhost(dir.path(), "volunteer")
                .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap()),
        )?;
        dirs.push(dir);
        servers.push(server);
    }
    let dir_endpoint = servers[0].endpoint();
    let lost_endpoint = servers[1].endpoint();
    let pool: Vec<DataServer> = servers[1..]
        .iter()
        .map(|s| DataServer::new(&s.endpoint(), "/vol", auth.clone()))
        .collect();
    println!(
        "DSFS: directory on {dir_endpoint}, data across {} servers",
        pool.len()
    );

    // Creating the filesystem is an ordinary-user operation: make a
    // tree directory and a volume on each data server.
    let fs = Dsfs::format(&dir_endpoint, "/shared-tree", auth.clone(), pool.clone())?;
    fs.mkdir("/results", 0o755)?;
    for i in 0..9 {
        fs.write_file(
            &format!("/results/run{i}.out"),
            format!("output of run {i}").as_bytes(),
        )?;
    }
    println!("wrote 9 files; data spread round-robin across the pool");

    // A second, independent client attaches to the same tree and sees
    // everything (this is what DPFS cannot do).
    let other = Dsfs::new(&dir_endpoint, "/shared-tree", auth.clone(), pool.clone())?;
    let names = other.readdir("/results")?;
    println!("second client lists {} entries", names.len());
    assert_eq!(names.len(), 9);
    assert_eq!(other.read_file("/results/run4.out")?, b"output of run 4");

    // Name-only operations never touch a data server.
    other.rename("/results/run4.out", "/results/best.out")?;
    assert_eq!(fs.read_file("/results/best.out")?, b"output of run 4");

    // -- failure coherence ------------------------------------------------
    // Kill one data server. Only its files become unavailable; the
    // directory stays navigable and the rest keeps working.
    servers[1].shutdown();
    println!("data server 1 lost");
    let names = fs.readdir("/results")?;
    assert_eq!(names.len(), 9, "directory remains navigable");
    let mut alive = 0;
    let mut dead = 0;
    for name in &names {
        match fs.read_file(&format!("/results/{name}")) {
            Ok(_) => alive += 1,
            Err(_) => dead += 1,
        }
    }
    println!("{alive} files still readable, {dead} unavailable (on the lost server)");
    assert!(alive >= 5, "two-thirds of the data lives elsewhere");
    assert!(dead >= 1);

    // New files keep flowing to the surviving servers if we rebuild
    // the pool without the dead one — reconfiguring an abstraction is
    // the user's own decision, no administrator involved.
    let surviving: Vec<DataServer> = pool
        .iter()
        .filter(|s| s.endpoint != lost_endpoint)
        .cloned()
        .collect();
    let fs2 = Dsfs::new(&dir_endpoint, "/shared-tree", auth, surviving)?;
    fs2.write_file("/results/post-failure.out", b"still in business")?;
    assert_eq!(
        fs.read_file("/results/post-failure.out")?,
        b"still in business"
    );
    println!("new writes succeed on the reconfigured pool");
    Ok(())
}

//! Quickstart: deploy a personal file server, share it, and use it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Walks the paper's §4 story end to end on your own machine: an
//! ordinary user runs one command to export a directory, controls who
//! may do what through per-directory ACLs over the virtual user space,
//! lets a visitor reserve a private workspace, and discovers servers
//! through a catalog.

use std::time::Duration;

use tss::catalog::{CatalogConfig, CatalogServer};
use tss::chirp_client::{AuthMethod, Connection};
use tss::chirp_proto::testutil::TempDir;
use tss::chirp_server::acl::Acl;
use tss::chirp_server::{FileServer, ServerConfig};

fn main() -> std::io::Result<()> {
    let timeout = Duration::from_secs(5);

    // A catalog for discovery (a site usually runs one or two).
    let catalog = CatalogServer::start(CatalogConfig::localhost(Duration::from_secs(60)))?;

    // -- the resource layer: one command deploys a file server --------
    // The owner exports a directory. No root, no kernel modules, no
    // configuration files: a root ACL and a key for themselves.
    let storage = TempDir::new();
    let server = FileServer::start(
        ServerConfig::localhost(storage.path(), "alice")
            // Visitors identified by hostname may carve out private
            // space (reserve right) but touch nothing else; alice's
            // grid identity has everything.
            .with_root_acl(
                Acl::parse(
                    "hostname:* v(rwl)\n\
                     globus:/O=Demo/CN=alice rwlda\n",
                )
                .unwrap(),
            )
            .with_key("globus", "/O=Demo/CN=alice", b"alice-secret-key")
            // The owner retains access to all data on her server.
            .with_superuser("globus:/O=Demo/CN=alice")
            .with_catalog(catalog.udp_addr(), Duration::from_millis(100)),
    )?;
    println!("file server deployed at {}", server.endpoint());

    // -- the owner uses her own server ---------------------------------
    let mut alice = Connection::connect(server.addr(), timeout)?;
    let subject = alice
        .authenticate(&[AuthMethod::key("globus", "", b"alice-secret-key")])
        .map_err(std::io::Error::from)?;
    println!("alice authenticated as: {subject}");
    alice
        .mkdir("/software", 0o755)
        .map_err(std::io::Error::from)?;
    alice
        .putfile("/software/libphysics.so", 0o644, b"pretend shared library")
        .map_err(std::io::Error::from)?;
    println!("alice stored /software/libphysics.so");

    // -- a visitor reserves a private workspace ------------------------
    let mut visitor = Connection::connect(server.addr(), timeout)?;
    let vsubject = visitor
        .authenticate(&[AuthMethod::Hostname])
        .map_err(std::io::Error::from)?;
    println!("visitor authenticated as: {vsubject}");
    // Direct writes at the root are refused...
    assert!(visitor.putfile("/evil", 0o644, b"nope").is_err());
    // ...but mkdir under the reserve right creates a private space
    // whose ACL names only the visitor.
    visitor
        .mkdir("/backup", 0o755)
        .map_err(std::io::Error::from)?;
    visitor
        .putfile("/backup/notes.txt", 0o644, b"my private data")
        .map_err(std::io::Error::from)?;
    let acl = visitor.getacl("/backup").map_err(std::io::Error::from)?;
    println!("visitor's private ACL in /backup:\n  {}", acl.trim());

    // The owner retains access to everything on her server.
    let notes = alice
        .getfile("/backup/notes.txt")
        .map_err(std::io::Error::from)?;
    assert_eq!(notes, b"my private data");

    // -- discovery through the catalog ----------------------------------
    std::thread::sleep(Duration::from_millis(300)); // let a report land
    let listing = tss::catalog::query(catalog.tcp_addr(), timeout)?;
    println!("catalog lists {} server(s):", listing.len());
    for r in &listing {
        println!(
            "  {} owned by {} — {:.1} MB free of {:.1} MB",
            r.address,
            r.owner,
            r.free as f64 / 1e6,
            r.total as f64 / 1e6
        );
    }
    println!("quickstart complete");
    Ok(())
}

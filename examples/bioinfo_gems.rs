//! Bioinformatics data management with GEMS (paper §9): index, share,
//! and preserve simulation outputs across a pool of file servers.
//!
//! ```sh
//! cargo run --example bioinfo_gems
//! ```
//!
//! A research group pours PROTOMOL-style simulation outputs into the
//! distributed shared database. The files land on whichever servers
//! have space, are indexed by attributes, and are kept alive by the
//! auditor/replicator pair even as storage owners delete data out from
//! under the system.

use std::time::Duration;

use tss::chirp_client::AuthMethod;
use tss::chirp_proto::testutil::TempDir;
use tss::chirp_server::acl::Acl;
use tss::chirp_server::{FileServer, ServerConfig};
use tss::core::stubfs::DataServer;
use tss::gems::{DbServer, Gems, GemsConfig};

fn main() -> std::io::Result<()> {
    // A pool of six file servers — workstations, classroom machines,
    // cluster nodes; any directory anyone is willing to share.
    let mut dirs = Vec::new();
    let mut servers = Vec::new();
    let mut pool = Vec::new();
    for _ in 0..6 {
        let dir = TempDir::new();
        let server = FileServer::start(
            ServerConfig::localhost(dir.path(), "grid-owner")
                .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap()),
        )?;
        pool.push(DataServer::new(
            &server.endpoint(),
            "/gems",
            vec![AuthMethod::Hostname],
        ));
        dirs.push(dir);
        servers.push(server);
    }
    let db = DbServer::start_ephemeral()?;
    let mut config = GemsConfig::new(db.addr(), pool);
    config.default_target = 3;
    config.timeout = Duration::from_secs(5);
    let gems = Gems::connect(config)?;
    println!("GEMS online: database + {} file servers", servers.len());

    // -- ingest a batch of simulation outputs ---------------------------
    for run in 0..8u32 {
        let temperature = 290 + 10 * (run % 3);
        let data: Vec<u8> = (0..64 * 1024u32)
            .map(|i| ((i.wrapping_mul(2654435761) ^ run) % 251) as u8)
            .collect();
        gems.ingest(
            &format!("protomol/run{run:02}/trajectory.dcd"),
            &[
                ("project", "protomol"),
                ("molecule", if run % 2 == 0 { "bpti" } else { "villin" }),
                ("temperature", &format!("{temperature}K")),
            ],
            &data,
        )?;
    }
    println!("ingested 8 trajectories");

    // -- index queries ---------------------------------------------------
    let bpti = gems.query("molecule", "bpti")?;
    println!("molecule=bpti matches {} runs: {bpti:?}", bpti.len());
    let hot = gems.query("temperature", "31*")?;
    println!("temperature=31xK matches {} runs", hot.len());

    // -- replicate up to the target ---------------------------------------
    let (audit, repair) = gems.maintain()?;
    println!(
        "maintenance: {} records audited, {} new replicas placed",
        audit.records, repair.copied
    );
    let rec = gems.record("protomol/run00/trajectory.dcd")?;
    println!(
        "run00 now has {} replicas on distinct servers",
        rec.replicas.len()
    );

    // -- a storage owner reclaims their disk ------------------------------
    // Resource owners may forcibly delete data placed by other users
    // at any time; preservation must survive it.
    let victim = dirs[0].path().join("gems");
    let mut evicted = 0;
    for entry in std::fs::read_dir(&victim)?.flatten() {
        if entry.file_name() != ".__acl" {
            std::fs::remove_file(entry.path())?;
            evicted += 1;
        }
    }
    println!("server 0's owner evicted {evicted} files");

    let (audit, repair) = gems.maintain()?;
    println!(
        "auditor found {} missing replicas; replicator restored {}",
        audit.missing, repair.copied
    );

    // Every trajectory is still wholly intact (checksum-verified).
    for run in 0..8u32 {
        let name = format!("protomol/run{run:02}/trajectory.dcd");
        let data = gems.fetch(&name)?;
        assert_eq!(data.len(), 64 * 1024);
    }
    println!("all 8 trajectories verified intact — preservation held");
    Ok(())
}

//! The conclusion's "wide array of variations": transparent striping
//! and transparent replication, assembled by an ordinary user from the
//! same file servers — no new server code, no administrator.
//!
//! ```sh
//! cargo run --example striping_mirroring
//! ```

use std::sync::Arc;
use std::time::Instant;

use tss::chirp_client::AuthMethod;
use tss::chirp_proto::testutil::TempDir;
use tss::chirp_server::acl::Acl;
use tss::chirp_server::{FileServer, ServerConfig};
use tss::core::stubfs::{DataServer, StubFsOptions};
use tss::core::{LocalFs, MirroredFs, StripedFs};
use tss_core::fs::FileSystem;

fn main() -> std::io::Result<()> {
    let auth = vec![AuthMethod::Hostname];
    let mut dirs = Vec::new();
    let mut servers = Vec::new();
    for _ in 0..4 {
        let dir = TempDir::new();
        servers.push(FileServer::start(
            ServerConfig::localhost(dir.path(), "volunteer")
                .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap()),
        )?);
        dirs.push(dir);
    }
    let pool: Vec<DataServer> = servers
        .iter()
        .map(|s| DataServer::new(&s.endpoint(), "/vol", auth.clone()))
        .collect();

    // ---- striping: one file's bandwidth from four disks --------------
    let meta = TempDir::new();
    let striped = StripedFs::new(
        Arc::new(LocalFs::new(meta.path())?),
        pool.clone(),
        4,          // stripe width
        256 * 1024, // stripe size
        StubFsOptions::default(),
    )?;
    striped.ensure_volumes()?;

    let payload: Vec<u8> = (0..8 << 20).map(|i: u32| (i % 251) as u8).collect();
    let t0 = Instant::now();
    striped.write_file("/big.dat", &payload)?;
    let wrote = t0.elapsed();
    let t0 = Instant::now();
    let back = striped.read_file("/big.dat")?;
    let read = t0.elapsed();
    assert_eq!(back, payload);
    println!(
        "striped 8 MiB over 4 servers: write {:.1} ms, read {:.1} ms",
        wrote.as_secs_f64() * 1e3,
        read.as_secs_f64() * 1e3
    );
    for (i, dir) in dirs.iter().enumerate() {
        let bytes: u64 = std::fs::read_dir(dir.path().join("vol"))?
            .flatten()
            .filter(|e| e.file_name() != ".__acl")
            .map(|e| e.metadata().map(|m| m.len()).unwrap_or(0))
            .sum();
        println!(
            "  server {i} holds {:.1} MiB of stripes",
            bytes as f64 / (1 << 20) as f64
        );
    }

    // ---- mirroring: survive losing half the servers -------------------
    let meta2 = TempDir::new();
    let mirrored = MirroredFs::new(
        Arc::new(LocalFs::new(meta2.path())?),
        pool,
        3, // three replicas per file
        StubFsOptions {
            timeout: std::time::Duration::from_millis(500),
            retry: tss::core::cfs::RetryPolicy::none(),
            ..StubFsOptions::default()
        },
    )?;
    mirrored.ensure_volumes()?;
    mirrored.write_file("/precious.db", b"irreplaceable results")?;
    println!("mirrored /precious.db onto 3 of 4 servers");

    servers[0].shutdown();
    servers[1].shutdown();
    println!("two servers lost");
    let data = mirrored.read_file("/precious.db")?;
    assert_eq!(data, b"irreplaceable results");
    println!("read still succeeds: {:?}", String::from_utf8_lossy(&data));

    // Strict mirrors refuse writes they cannot apply everywhere.
    match mirrored.write_file("/precious.db", b"update") {
        Err(e) => println!("write correctly refused while mirrors are down: {e}"),
        Ok(()) => println!("write reached all live mirrors"),
    }
    Ok(())
}

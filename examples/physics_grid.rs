//! High-energy physics on the grid (paper §8): run an SP5-like job on
//! a remote "grid node" that securely reaches its home storage through
//! the adapter — no application changes, no local accounts, no kernel
//! help.
//!
//! ```sh
//! cargo run --example physics_grid
//! ```
//!
//! The home lab exports its software installation and data directory
//! from a file server guarded by grid credentials. The job ships to a
//! "grid node" (here: a thread) carrying only the adapter and a
//! credential; the mountlist makes the remote storage appear at the
//! paths the application was built to expect.

use std::io::{Read, Write};
use std::time::Duration;

use tss::chirp_proto::testutil::TempDir;
use tss::chirp_proto::OpenFlags;
use tss::chirp_server::acl::Acl;
use tss::chirp_server::{FileServer, ServerConfig};
use tss::core::adapter::{Adapter, AdapterConfig, Namespace};
use tss::core::cfs::RetryPolicy;

fn main() -> std::io::Result<()> {
    // -- the home laboratory -------------------------------------------
    // Only holders of the collaboration's grid credentials may touch
    // the experiment's storage; the virtual user space means the lab
    // never creates local accounts for them.
    let home = TempDir::new();
    let server = FileServer::start(
        ServerConfig::localhost(home.path(), "babar-lab")
            .with_root_acl(Acl::single("globus:/O=BaBar/*", "rwl").unwrap())
            .with_key("globus", "/O=BaBar/CN=worker17", b"worker-credential-key"),
    )?;
    println!("home storage at {}", server.endpoint());

    // Install the "application": scripts, dynamic libraries, config,
    // and an event data file — the complex installation SP5 actually
    // has, in miniature.
    {
        let mut setup =
            tss::chirp_client::Connection::connect(server.addr(), Duration::from_secs(5))?;
        setup
            .authenticate(&[tss::chirp_client::AuthMethod::key(
                "globus",
                "",
                b"worker-credential-key",
            )])
            .map_err(std::io::Error::from)?;
        setup.mkdir("/sp5", 0o755).map_err(std::io::Error::from)?;
        setup
            .mkdir("/sp5/lib", 0o755)
            .map_err(std::io::Error::from)?;
        setup
            .mkdir("/sp5/etc", 0o755)
            .map_err(std::io::Error::from)?;
        setup.mkdir("/data", 0o755).map_err(std::io::Error::from)?;
        for lib in ["libdetector.so", "libgeometry.so", "libio.so"] {
            setup
                .putfile(&format!("/sp5/lib/{lib}"), 0o644, lib.as_bytes())
                .map_err(std::io::Error::from)?;
        }
        setup
            .putfile("/sp5/etc/run.conf", 0o644, b"events=5\nseed=17\n")
            .map_err(std::io::Error::from)?;
        setup
            .putfile(
                "/data/events.in",
                0o644,
                &(0..5000u32).flat_map(u32::to_le_bytes).collect::<Vec<_>>(),
            )
            .map_err(std::io::Error::from)?;
    }

    // -- the grid node ----------------------------------------------------
    // The job arrives with nothing but the adapter, a credential, and
    // a mountlist mapping the paths it expects onto the home CFS.
    let endpoint = server.endpoint();
    let grid_job = std::thread::spawn(move || -> std::io::Result<u64> {
        let config = AdapterConfig {
            auth: vec![tss::chirp_client::AuthMethod::key(
                "globus",
                "",
                b"worker-credential-key",
            )],
            retry: RetryPolicy::default(),
            ..AdapterConfig::default()
        };
        let mut adapter = Adapter::new(config)?;
        let mountlist = format!(
            "/usr/local/sp5  /cfs/{endpoint}/sp5\n\
             /data           /cfs/{endpoint}/data\n"
        );
        adapter.set_namespace(Namespace::parse_mountlist(&mountlist)?);

        // The "application" below knows nothing about Chirp: it opens
        // the install-time paths it was built with.
        let libs = adapter.readdir("/usr/local/sp5/lib")?;
        println!(
            "grid node loaded {} dynamic libraries: {libs:?}",
            libs.len()
        );
        let conf = adapter.read_file("/usr/local/sp5/etc/run.conf")?;
        let conf = String::from_utf8_lossy(&conf);
        let events: u64 = conf
            .lines()
            .find_map(|l| l.strip_prefix("events="))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);

        // Process "events": read input records, write simulated output
        // back home, through the same adapter.
        let mut input = adapter.open("/data/events.in", OpenFlags::READ, 0)?;
        let mut output = adapter.open(
            "/data/events.out",
            OpenFlags::WRITE | OpenFlags::CREATE | OpenFlags::TRUNCATE,
            0o644,
        )?;
        let mut buf = vec![0u8; 4000];
        let mut checksum = 0u64;
        for event in 0..events {
            input.read_exact(&mut buf)?;
            // "Simulate": fold the detector response.
            checksum = buf
                .iter()
                .fold(checksum, |acc, &b| acc.rotate_left(3) ^ b as u64);
            writeln!(output, "event {event} response {checksum:016x}")?;
        }
        println!("grid node processed {events} events");
        Ok(checksum)
    });
    let checksum = grid_job.join().expect("grid job thread")?;

    // -- back home: the output arrived under the lab's control ----------
    let mut home_view =
        tss::chirp_client::Connection::connect(server.addr(), Duration::from_secs(5))?;
    home_view
        .authenticate(&[tss::chirp_client::AuthMethod::key(
            "globus",
            "",
            b"worker-credential-key",
        )])
        .map_err(std::io::Error::from)?;
    let out = home_view
        .getfile("/data/events.out")
        .map_err(std::io::Error::from)?;
    println!(
        "home storage received {} bytes of output (final response {checksum:016x})",
        out.len()
    );
    assert!(String::from_utf8_lossy(&out).lines().count() == 5);

    // An uncredentialed visitor gets nothing — the point of carrying
    // grid security to wherever the job lands.
    let mut stranger =
        tss::chirp_client::Connection::connect(server.addr(), Duration::from_secs(5))?;
    stranger
        .authenticate(&[tss::chirp_client::AuthMethod::Hostname])
        .map_err(std::io::Error::from)?;
    assert!(stranger.getfile("/data/events.out").is_err());
    println!("uncredentialed access correctly refused");
    Ok(())
}

//! Distributed backups over tactical storage (paper §10): record
//! images of a working directory into a friend's file server, browse
//! old versions on-line, recover after a mistake, and prune history.
//!
//! ```sh
//! cargo run --example backup_vault
//! ```

use std::sync::Arc;

use tss::chirp_client::AuthMethod;
use tss::chirp_proto::testutil::TempDir;
use tss::chirp_server::acl::Acl;
use tss::chirp_server::{FileServer, ServerConfig};
use tss::core::{BackupVault, Cfs};

fn main() -> std::io::Result<()> {
    // A friend shares a directory on their workstation.
    let friend = TempDir::new();
    let server = FileServer::start(
        ServerConfig::localhost(friend.path(), "trusted-friend")
            .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap()),
    )?;
    let storage = Arc::new(Cfs::connect(&server.endpoint(), vec![AuthMethod::Hostname]));
    let vault = BackupVault::open(storage, "/backups/my-thesis")?;
    println!("vault opened on {}", server.endpoint());

    // A working directory evolves over three days.
    let work = TempDir::new();
    std::fs::create_dir_all(work.path().join("chapters"))?;
    std::fs::write(work.path().join("chapters/intro.tex"), b"\\section{Intro}")?;
    std::fs::write(work.path().join("refs.bib"), b"@article{thain2005}")?;
    let day1 = vault.backup(work.path(), "day1")?;
    println!(
        "day1: {} files, {} bytes recorded",
        day1.file_count, day1.total_bytes
    );

    std::fs::write(
        work.path().join("chapters/eval.tex"),
        b"\\section{Evaluation}",
    )?;
    let day2 = vault.backup(work.path(), "day2")?;
    println!(
        "day2: {} files (only the new chapter uploaded — dedup)",
        day2.file_count
    );

    // Day three: disaster. The intro is overwritten with garbage and
    // backed up before anyone notices.
    std::fs::write(work.path().join("chapters/intro.tex"), b"asdfasdf")?;
    vault.backup(work.path(), "day3")?;

    // On-line forensics: find when it broke, without restoring.
    for image in vault.images()? {
        let intro = vault.read_file(&image.name, "chapters/intro.tex")?;
        println!(
            "  {}: intro.tex = {:?}",
            image.label,
            String::from_utf8_lossy(&intro)
        );
    }

    // Recovery: pull yesterday's intro back.
    let good = vault.read_file(&day2.name, "chapters/intro.tex")?;
    std::fs::write(work.path().join("chapters/intro.tex"), &good)?;
    println!("recovered intro.tex from {}", day2.label);

    // Or restore a whole image elsewhere.
    let restore_dir = TempDir::new();
    let files = vault.restore(&day2.name, restore_dir.path())?;
    println!(
        "restored {} files from {} into a fresh tree",
        files, day2.label
    );

    // Keep history bounded on the borrowed disk.
    let (images_gone, blobs_gone) = vault.prune(2)?;
    println!(
        "pruned {images_gone} old image(s), collected {blobs_gone} unreferenced blob(s); \
         {:.1} KB now stored",
        vault.stored_bytes()? as f64 / 1e3
    );
    Ok(())
}

//! A deterministic fault-injecting TCP proxy for the Chirp protocol.
//!
//! The paper's resource layer is defined as much by its failure
//! semantics as by its RPCs: a Chirp disconnect closes every open file,
//! and the abstraction layer (CFS, DPFS) is responsible for masking
//! resource loss. Testing that masking requires faults on demand, so
//! this crate puts a proxy between a client and a real `chirp-server`
//! and injects failures according to a [`FaultPlan`]: drop the socket
//! mid-frame, delay a request, truncate or corrupt a reply, or
//! black-hole a request (accept it, never answer).
//!
//! Determinism: every random decision comes from a [`rand::rngs::SmallRng`]
//! seeded from the plan (`FaultPlan::new(seed)`); there is no
//! wall-clock randomness. Counter-based triggers ([`FaultTrigger::NthRpc`]
//! and friends) are exact on a single connection; under concurrent
//! connections the RPC interleaving is scheduler-dependent, so chaos
//! tests assert *outcomes* (data integrity, bounded retries), not which
//! specific RPC a fault landed on.
//!
//! The proxy is frame-aware on the client→server direction: it parses
//! each request line, knows that `PWRITE`/`PUTFILE` carry a payload of
//! the length named on the line, and counts whole RPCs. The
//! server→client direction is pumped opaquely, with per-RPC flags
//! ("corrupt the next reply chunk", "truncate it") set by the request
//! side — Chirp is strictly one RPC at a time per connection, so the
//! next server bytes after a flagged request are that request's reply.

#![warn(missing_docs)]

pub mod mem;

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What a fired fault does to the connection it fires on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Forward only part of the request frame, then sever both
    /// directions — the server sees a torn request, the client sees a
    /// dead socket mid-RPC.
    KillMidFrame,
    /// Hold the request for the given duration before forwarding it.
    Delay(Duration),
    /// Forward the request, then sever after relaying only part of the
    /// reply — the client sees a frame that ends early.
    TruncateReply,
    /// Forward the request, flip high bits in the first bytes of the
    /// reply, then sever. The damaged status line is unparseable, which
    /// the client must treat as a transport failure, not a protocol
    /// verdict.
    CorruptReply,
    /// Swallow the request and everything after it without forwarding;
    /// the connection stays open but the server never sees the RPC and
    /// the client never gets a reply (it must rely on its own timeout).
    BlackHole,
}

/// When a fault fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultTrigger {
    /// On the `n`th RPC (1-based) observed across the whole proxy.
    NthRpc(u64),
    /// On every `n`th RPC observed across the whole proxy.
    EveryNthRpc(u64),
    /// On the first RPC of the `n`th accepted connection (1-based).
    NthConnection(u64),
    /// On each RPC independently with probability `p`, drawn from the
    /// plan's seeded RNG.
    Probability(f64),
}

/// One trigger/action pair with an optional cap on how often it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// When to fire.
    pub trigger: FaultTrigger,
    /// What to do.
    pub action: FaultAction,
    /// Maximum number of firings; `0` means unlimited.
    pub max_fires: u64,
}

impl FaultRule {
    /// A rule with unlimited firings.
    pub fn new(trigger: FaultTrigger, action: FaultAction) -> Self {
        FaultRule {
            trigger,
            action,
            max_fires: 0,
        }
    }

    /// Cap the number of times this rule may fire.
    pub fn max_fires(mut self, n: u64) -> Self {
        self.max_fires = n;
        self
    }
}

/// A seeded set of fault rules. Rules are consulted in order; the first
/// eligible rule that triggers fires, and at most one rule fires per
/// RPC.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (a transparent proxy) with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Append a rule with unlimited firings.
    pub fn rule(mut self, trigger: FaultTrigger, action: FaultAction) -> Self {
        self.rules.push(FaultRule::new(trigger, action));
        self
    }

    /// Append a pre-built rule.
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }
}

/// Counters published by a running proxy, all monotone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Connections accepted from clients.
    pub connections: u64,
    /// Whole RPCs observed on the client→server direction.
    pub rpcs: u64,
    /// Faults fired, by action.
    pub kills: u64,
    /// Delays applied.
    pub delays: u64,
    /// Replies truncated.
    pub truncates: u64,
    /// Replies corrupted.
    pub corruptions: u64,
    /// Requests black-holed.
    pub blackholes: u64,
}

/// The proxy's counters live in a telemetry registry (`fault.*`
/// names) so chaos runs can snapshot injected faults alongside the
/// client's recovery counters; these are the prebuilt handles.
struct StatCells {
    registry: telemetry::Registry,
    connections: telemetry::Counter,
    rpcs: telemetry::Counter,
    kills: telemetry::Counter,
    delays: telemetry::Counter,
    truncates: telemetry::Counter,
    corruptions: telemetry::Counter,
    blackholes: telemetry::Counter,
}

impl Default for StatCells {
    fn default() -> StatCells {
        let registry = telemetry::Registry::default();
        StatCells {
            connections: registry.counter("fault.connections"),
            rpcs: registry.counter("fault.rpcs"),
            kills: registry.counter("fault.kills"),
            delays: registry.counter("fault.delays"),
            truncates: registry.counter("fault.truncates"),
            corruptions: registry.counter("fault.corruptions"),
            blackholes: registry.counter("fault.blackholes"),
            registry,
        }
    }
}

impl StatCells {
    fn snapshot(&self) -> ProxyStats {
        ProxyStats {
            connections: self.connections.get(),
            rpcs: self.rpcs.get(),
            kills: self.kills.get(),
            delays: self.delays.get(),
            truncates: self.truncates.get(),
            corruptions: self.corruptions.get(),
            blackholes: self.blackholes.get(),
        }
    }
}

/// Shared trigger state: the seeded RNG and the global counters the
/// triggers consult. One lock keeps rule evaluation atomic per RPC.
struct Decider {
    rng: SmallRng,
    rpc_count: u64,
    conn_count: u64,
    fires: Vec<u64>,
}

struct PlanState {
    rules: Vec<FaultRule>,
    /// When false the proxy forwards transparently (counters still
    /// advance); flipped by [`FaultProxy::set_armed`].
    armed: AtomicBool,
    decider: Mutex<Decider>,
}

impl PlanState {
    fn next_conn(&self) -> u64 {
        let mut d = self.decider.lock().unwrap();
        d.conn_count += 1;
        d.conn_count
    }

    /// Called once per observed RPC; returns the action to apply, if
    /// any. `first_rpc_of_conn` carries the connection ordinal when
    /// this is the connection's first RPC.
    fn decide(&self, first_rpc_of_conn: Option<u64>) -> Option<FaultAction> {
        let mut d = self.decider.lock().unwrap();
        d.rpc_count += 1;
        let rpc = d.rpc_count;
        if !self.armed.load(Ordering::SeqCst) {
            return None;
        }
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.max_fires > 0 && d.fires[i] >= rule.max_fires {
                continue;
            }
            let hit = match rule.trigger {
                FaultTrigger::NthRpc(n) => rpc == n,
                FaultTrigger::EveryNthRpc(n) => n > 0 && rpc.is_multiple_of(n),
                FaultTrigger::NthConnection(n) => first_rpc_of_conn == Some(n),
                FaultTrigger::Probability(p) => d.rng.gen_bool(p),
            };
            if hit {
                d.fires[i] += 1;
                return Some(rule.action);
            }
        }
        None
    }
}

/// A running fault proxy. Dropping it shuts the listener down and
/// severs every connection it is carrying.
pub struct FaultProxy {
    addr: SocketAddr,
    stats: Arc<StatCells>,
    state: Arc<PlanState>,
    shutdown: Arc<AtomicBool>,
    sockets: Arc<Mutex<Vec<TcpStream>>>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Listen on an ephemeral localhost port and forward every accepted
    /// connection to `upstream`, applying `plan` along the way.
    pub fn spawn(upstream: &str, plan: FaultPlan) -> io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let upstream = upstream.to_string();
        let stats = Arc::new(StatCells::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let sockets = Arc::new(Mutex::new(Vec::new()));
        let state = Arc::new(PlanState {
            armed: AtomicBool::new(true),
            decider: Mutex::new(Decider {
                rng: SmallRng::seed_from_u64(plan.seed),
                rpc_count: 0,
                conn_count: 0,
                fires: vec![0; plan.rules.len()],
            }),
            rules: plan.rules,
        });

        let accept_thread = {
            let state = Arc::clone(&state);
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            let sockets = Arc::clone(&sockets);
            thread::spawn(move || {
                for client in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(client) = client else { break };
                    stats.connections.inc();
                    let conn_index = state.next_conn();
                    let upstream = upstream.clone();
                    let state = Arc::clone(&state);
                    let stats = Arc::clone(&stats);
                    let sockets = Arc::clone(&sockets);
                    thread::spawn(move || {
                        let _ = serve_conn(client, &upstream, conn_index, &state, &stats, &sockets);
                    });
                }
            })
        };

        Ok(FaultProxy {
            addr,
            stats,
            state,
            shutdown,
            sockets,
            accept_thread: Some(accept_thread),
        })
    }

    /// Disarm (or re-arm) fault injection. A disarmed proxy forwards
    /// transparently while its connection and RPC counters keep
    /// advancing — useful for building test fixtures fault-free before
    /// switching the chaos on.
    pub fn set_armed(&self, armed: bool) {
        self.state.armed.store(armed, Ordering::SeqCst);
    }

    /// The `host:port` clients should connect to.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Snapshot of the proxy's counters.
    pub fn stats(&self) -> ProxyStats {
        self.stats.snapshot()
    }

    /// Total rule firings so far (every fired fault, across all rules).
    /// Chaos tests compare this against the client's observed retry
    /// and failover counters: N injected faults must surface as at
    /// least N recovery actions somewhere downstream.
    pub fn fires(&self) -> u64 {
        self.state.decider.lock().unwrap().fires.iter().sum()
    }

    /// Per-rule firing counts, in plan order.
    pub fn fires_by_rule(&self) -> Vec<u64> {
        self.state.decider.lock().unwrap().fires.clone()
    }

    /// The telemetry registry behind [`FaultProxy::stats`] (`fault.*`
    /// counters), for folding a chaos run's injected-fault counts into
    /// one snapshot with the client's recovery metrics.
    pub fn telemetry(&self) -> &telemetry::Registry {
        &self.stats.registry
    }

    /// Stop accepting, sever every carried connection, and join the
    /// accept thread.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        for sock in self.sockets.lock().unwrap().drain(..) {
            let _ = sock.shutdown(Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-connection reply-side flags, set by the request pump and
/// consumed by the reply pump.
#[derive(Default)]
struct ReplyFlags {
    corrupt_next: AtomicBool,
    truncate_next: AtomicBool,
}

fn sever(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

fn serve_conn(
    client: TcpStream,
    upstream: &str,
    conn_index: u64,
    state: &Arc<PlanState>,
    stats: &Arc<StatCells>,
    sockets: &Arc<Mutex<Vec<TcpStream>>>,
) -> io::Result<()> {
    let server = TcpStream::connect(upstream)?;
    client.set_nodelay(true).ok();
    server.set_nodelay(true).ok();
    {
        let mut held = sockets.lock().unwrap();
        held.push(client.try_clone()?);
        held.push(server.try_clone()?);
    }
    let flags = Arc::new(ReplyFlags::default());

    // Reply pump: opaque copy, honouring the per-RPC flags.
    let reply_thread = {
        let mut from = server.try_clone()?;
        let mut to = client.try_clone()?;
        let server = server.try_clone()?;
        let client = client.try_clone()?;
        let flags = Arc::clone(&flags);
        let stats = Arc::clone(stats);
        thread::spawn(move || {
            let mut buf = [0u8; 64 * 1024];
            loop {
                let n = match from.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => n,
                };
                if flags.corrupt_next.swap(false, Ordering::SeqCst) {
                    // Flip high bits in the leading bytes: the status
                    // line becomes unparseable, then the stream dies.
                    for b in buf.iter_mut().take(n.min(4)) {
                        *b |= 0x80;
                    }
                    stats.corruptions.inc();
                    let _ = to.write_all(&buf[..n]);
                    sever(&client, &server);
                    break;
                }
                if flags.truncate_next.swap(false, Ordering::SeqCst) {
                    stats.truncates.inc();
                    let _ = to.write_all(&buf[..n / 2]);
                    sever(&client, &server);
                    break;
                }
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        })
    };

    // Request pump: frame-aware.
    let result = pump_requests(&client, &server, conn_index, state, stats, &flags);
    // Whatever ended the request side, make sure the reply side is not
    // left blocked on a half-open socket.
    sever(&client, &server);
    let _ = reply_thread.join();
    result
}

/// Payload length named on a request line, for the two verbs that
/// carry one (`PWRITE fd length offset`, `PUTFILE path mode length`).
fn payload_len(line: &[u8]) -> u64 {
    let Ok(text) = std::str::from_utf8(line) else {
        return 0;
    };
    let mut words = text.split_ascii_whitespace();
    match words.next() {
        Some("PWRITE") => words.nth(1).and_then(|w| w.parse().ok()).unwrap_or(0),
        Some("PUTFILE") => words.nth(2).and_then(|w| w.parse().ok()).unwrap_or(0),
        _ => 0,
    }
}

fn pump_requests(
    client: &TcpStream,
    server: &TcpStream,
    conn_index: u64,
    state: &Arc<PlanState>,
    stats: &Arc<StatCells>,
    flags: &Arc<ReplyFlags>,
) -> io::Result<()> {
    let mut from = io::BufReader::new(client.try_clone()?);
    let mut to = server.try_clone()?;
    let mut first_rpc = true;

    loop {
        // Read one whole request line without forwarding it yet.
        let mut line = Vec::new();
        {
            use io::BufRead;
            loop {
                let buf = from.fill_buf()?;
                if buf.is_empty() {
                    return Ok(()); // client hung up
                }
                match buf.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        line.extend_from_slice(&buf[..=pos]);
                        from.consume(pos + 1);
                        break;
                    }
                    None => {
                        let n = buf.len();
                        line.extend_from_slice(buf);
                        from.consume(n);
                        if line.len() > chirp_proto::MAX_LINE {
                            sever(client, server);
                            return Ok(());
                        }
                    }
                }
            }
        }
        stats.rpcs.inc();
        let body = payload_len(&line[..line.len() - 1]);
        let action = state.decide(first_rpc.then_some(conn_index));
        first_rpc = false;

        match action {
            Some(FaultAction::Delay(d)) => {
                stats.delays.inc();
                thread::sleep(d);
            }
            Some(FaultAction::KillMidFrame) => {
                stats.kills.inc();
                // Forward a torn frame: half the line, or the whole
                // line plus half the payload when one is present.
                if body > 0 {
                    to.write_all(&line)?;
                    copy_bounded(&mut from, &mut to, body / 2)?;
                } else {
                    to.write_all(&line[..line.len() / 2])?;
                }
                sever(client, server);
                return Ok(());
            }
            Some(FaultAction::TruncateReply) => {
                flags.truncate_next.store(true, Ordering::SeqCst);
            }
            Some(FaultAction::CorruptReply) => {
                flags.corrupt_next.store(true, Ordering::SeqCst);
            }
            Some(FaultAction::BlackHole) => {
                stats.blackholes.inc();
                // Swallow this request and everything after it; the
                // connection stays open but mute until the client
                // gives up.
                let mut sink = io::sink();
                let _ = io::copy(&mut from, &mut sink);
                return Ok(());
            }
            None => {}
        }

        to.write_all(&line)?;
        if body > 0 {
            copy_bounded(&mut from, &mut to, body)?;
        }
    }
}

fn copy_bounded<R: Read, W: Write>(from: &mut R, to: &mut W, len: u64) -> io::Result<()> {
    let mut buf = [0u8; 64 * 1024];
    let mut remaining = len;
    while remaining > 0 {
        let want = buf.len().min(remaining as usize);
        let got = from.read(&mut buf[..want])?;
        if got == 0 {
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        to.write_all(&buf[..got])?;
        remaining -= got as u64;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::time::Instant;

    /// A line server that answers `PING x` with `PONG x` and `PWRITE`
    /// frames with the payload length, enough protocol to exercise the
    /// proxy's framing without a full chirp-server.
    fn echo_server() -> (String, thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(conn) = conn else { break };
                thread::spawn(move || {
                    let mut reader = BufReader::new(conn.try_clone().unwrap());
                    let mut writer = conn;
                    loop {
                        let mut line = String::new();
                        match reader.read_line(&mut line) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {}
                        }
                        let body = payload_len(line.trim_end().as_bytes());
                        if body > 0 {
                            let mut payload = vec![0u8; body as usize];
                            if reader.read_exact(&mut payload).is_err() {
                                break;
                            }
                            if writeln!(writer, "{body}").is_err() {
                                break;
                            }
                        } else if writeln!(writer, "PONG {}", line.trim_end()).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        (addr, handle)
    }

    fn rpc(stream: &mut (impl BufRead + Write), req: &str) -> io::Result<String> {
        writeln!(stream, "{req}")?;
        let mut reply = String::new();
        if stream.read_line(&mut reply)? == 0 {
            return Err(io::ErrorKind::ConnectionAborted.into());
        }
        Ok(reply.trim_end().to_string())
    }

    struct Duplex {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }
    impl Duplex {
        fn connect(addr: &str) -> Self {
            let s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            Duplex {
                reader: BufReader::new(s.try_clone().unwrap()),
                writer: s,
            }
        }
        fn rpc(&mut self, req: &str) -> io::Result<String> {
            writeln!(self.writer, "{req}")?;
            let mut reply = String::new();
            if self.reader.read_line(&mut reply)? == 0 {
                return Err(io::ErrorKind::ConnectionAborted.into());
            }
            Ok(reply.trim_end().to_string())
        }
    }

    #[test]
    fn transparent_plan_forwards_both_directions() {
        let (addr, _srv) = echo_server();
        let proxy = FaultProxy::spawn(&addr, FaultPlan::new(1)).unwrap();
        let mut conn = Duplex::connect(&proxy.addr());
        assert_eq!(conn.rpc("PING a").unwrap(), "PONG PING a");
        assert_eq!(conn.rpc("PING b").unwrap(), "PONG PING b");
        let stats = proxy.stats();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.rpcs, 2);
    }

    #[test]
    fn payload_frames_pass_intact() {
        let (addr, _srv) = echo_server();
        let proxy = FaultProxy::spawn(&addr, FaultPlan::new(1)).unwrap();
        let mut conn = Duplex::connect(&proxy.addr());
        writeln!(conn.writer, "PWRITE 3 10 0").unwrap();
        conn.writer.write_all(b"0123456789").unwrap();
        let mut reply = String::new();
        conn.reader.read_line(&mut reply).unwrap();
        assert_eq!(reply.trim_end(), "10");
        // The stream is still framed after a payload.
        assert_eq!(conn.rpc("PING z").unwrap(), "PONG PING z");
    }

    #[test]
    fn nth_rpc_kill_severs_that_rpc_only() {
        let (addr, _srv) = echo_server();
        let plan = FaultPlan::new(7).rule(FaultTrigger::NthRpc(2), FaultAction::KillMidFrame);
        let proxy = FaultProxy::spawn(&addr, plan).unwrap();
        let mut conn = Duplex::connect(&proxy.addr());
        assert_eq!(conn.rpc("PING a").unwrap(), "PONG PING a");
        assert!(conn.rpc("PING b").is_err());
        // A fresh connection works again.
        let mut conn2 = Duplex::connect(&proxy.addr());
        assert_eq!(conn2.rpc("PING c").unwrap(), "PONG PING c");
        assert_eq!(proxy.stats().kills, 1);
    }

    #[test]
    fn delay_holds_the_request() {
        let (addr, _srv) = echo_server();
        let plan = FaultPlan::new(7).rule(
            FaultTrigger::NthRpc(1),
            FaultAction::Delay(Duration::from_millis(80)),
        );
        let proxy = FaultProxy::spawn(&addr, plan).unwrap();
        let mut conn = Duplex::connect(&proxy.addr());
        let t0 = Instant::now();
        assert_eq!(conn.rpc("PING a").unwrap(), "PONG PING a");
        assert!(t0.elapsed() >= Duration::from_millis(80));
        assert_eq!(proxy.stats().delays, 1);
    }

    #[test]
    fn corrupt_reply_damages_then_severs() {
        let (addr, _srv) = echo_server();
        let plan = FaultPlan::new(7).rule(FaultTrigger::NthRpc(1), FaultAction::CorruptReply);
        let proxy = FaultProxy::spawn(&addr, plan).unwrap();
        let mut conn = Duplex::connect(&proxy.addr());
        writeln!(conn.writer, "PING a").unwrap();
        let mut bytes = Vec::new();
        conn.reader.read_to_end(&mut bytes).unwrap();
        assert!(!bytes.is_empty());
        assert!(bytes[0] & 0x80 != 0, "leading byte should be damaged");
        assert_eq!(proxy.stats().corruptions, 1);
    }

    #[test]
    fn truncate_reply_cuts_the_frame_short() {
        let (addr, _srv) = echo_server();
        let plan = FaultPlan::new(7).rule(FaultTrigger::NthRpc(1), FaultAction::TruncateReply);
        let proxy = FaultProxy::spawn(&addr, plan).unwrap();
        let mut conn = Duplex::connect(&proxy.addr());
        writeln!(conn.writer, "PING aaaaaaaaaaaaaaaa").unwrap();
        let mut bytes = Vec::new();
        conn.reader.read_to_end(&mut bytes).unwrap();
        assert!(bytes.len() < "PONG PING aaaaaaaaaaaaaaaa\n".len());
        assert_eq!(proxy.stats().truncates, 1);
    }

    #[test]
    fn blackhole_never_replies() {
        let (addr, _srv) = echo_server();
        let plan = FaultPlan::new(7).with_rule(
            FaultRule::new(FaultTrigger::NthRpc(1), FaultAction::BlackHole).max_fires(1),
        );
        let proxy = FaultProxy::spawn(&addr, plan).unwrap();
        let s = TcpStream::connect(proxy.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let mut reader = BufReader::new(s.try_clone().unwrap());
        let mut writer = s;
        assert!(rpc(&mut DuplexRef(&mut reader, &mut writer), "PING a").is_err());
        assert_eq!(proxy.stats().blackholes, 1);
    }

    /// Adapter so `rpc` can be used with split reader/writer halves.
    struct DuplexRef<'a>(&'a mut BufReader<TcpStream>, &'a mut TcpStream);
    impl io::Read for DuplexRef<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.0.read(buf)
        }
    }
    impl BufRead for DuplexRef<'_> {
        fn fill_buf(&mut self) -> io::Result<&[u8]> {
            self.0.fill_buf()
        }
        fn consume(&mut self, n: usize) {
            self.0.consume(n)
        }
    }
    impl Write for DuplexRef<'_> {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.1.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            self.1.flush()
        }
    }

    #[test]
    fn disarmed_proxy_is_transparent_until_rearmed() {
        let (addr, _srv) = echo_server();
        let plan = FaultPlan::new(7).rule(FaultTrigger::EveryNthRpc(1), FaultAction::KillMidFrame);
        let proxy = FaultProxy::spawn(&addr, plan).unwrap();
        proxy.set_armed(false);
        let mut conn = Duplex::connect(&proxy.addr());
        assert_eq!(conn.rpc("PING a").unwrap(), "PONG PING a");
        assert_eq!(conn.rpc("PING b").unwrap(), "PONG PING b");
        assert_eq!(proxy.stats().kills, 0);
        proxy.set_armed(true);
        assert!(conn.rpc("PING c").is_err());
        assert_eq!(proxy.stats().kills, 1);
        // Counters advanced through the disarmed phase.
        assert_eq!(proxy.stats().rpcs, 3);
    }

    #[test]
    fn nth_connection_targets_one_connection() {
        let (addr, _srv) = echo_server();
        let plan =
            FaultPlan::new(7).rule(FaultTrigger::NthConnection(2), FaultAction::KillMidFrame);
        let proxy = FaultProxy::spawn(&addr, plan).unwrap();
        let mut c1 = Duplex::connect(&proxy.addr());
        assert_eq!(c1.rpc("PING a").unwrap(), "PONG PING a");
        let mut c2 = Duplex::connect(&proxy.addr());
        assert!(c2.rpc("PING b").is_err());
        assert_eq!(c1.rpc("PING c").unwrap(), "PONG PING c");
    }

    #[test]
    fn max_fires_caps_a_rule() {
        let (addr, _srv) = echo_server();
        let plan = FaultPlan::new(7).with_rule(
            FaultRule::new(FaultTrigger::EveryNthRpc(1), FaultAction::KillMidFrame).max_fires(2),
        );
        let proxy = FaultProxy::spawn(&addr, plan).unwrap();
        for _ in 0..2 {
            let mut conn = Duplex::connect(&proxy.addr());
            assert!(conn.rpc("PING x").is_err());
        }
        let mut conn = Duplex::connect(&proxy.addr());
        assert_eq!(conn.rpc("PING y").unwrap(), "PONG PING y");
        assert_eq!(proxy.stats().kills, 2);
    }

    #[test]
    fn probability_draws_are_seed_deterministic() {
        // Two proxies with the same seed make identical decisions for
        // the same sequential RPC stream.
        let outcomes = |seed: u64| -> Vec<bool> {
            let (addr, _srv) = echo_server();
            let plan = FaultPlan::new(seed)
                .rule(FaultTrigger::Probability(0.5), FaultAction::KillMidFrame);
            let proxy = FaultProxy::spawn(&addr, plan).unwrap();
            let mut seen = Vec::new();
            for i in 0..8 {
                let mut conn = Duplex::connect(&proxy.addr());
                seen.push(conn.rpc(&format!("PING {i}")).is_ok());
            }
            seen
        };
        assert_eq!(outcomes(42), outcomes(42));
        let a = outcomes(42);
        assert!(a.iter().any(|&ok| ok) && a.iter().any(|&ok| !ok));
    }

    #[test]
    fn payload_len_parses_only_data_verbs() {
        assert_eq!(payload_len(b"PWRITE 4 1024 0"), 1024);
        assert_eq!(payload_len(b"PUTFILE /a/b 420 77"), 77);
        assert_eq!(payload_len(b"PREAD 4 1024 0"), 0);
        assert_eq!(payload_len(b"OPEN /x r 420"), 0);
        assert_eq!(payload_len(b"\xff\xfe"), 0);
    }
}

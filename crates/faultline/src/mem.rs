//! Transport-level fault injection: the proxy's rule engine applied
//! directly to a [`Transport`], with no sockets in between.
//!
//! [`FaultProxy`](crate::FaultProxy) needs a TCP listener and three
//! threads per connection; under the deterministic simulation harness
//! that is exactly the machinery we are trying to eliminate. This
//! module reuses the same [`FaultPlan`] rule engine (same triggers,
//! same seeded RNG, same counters) but injects faults *inside* the
//! client's own connection: [`FaultDialer`] wraps any
//! [`Dialer`] — typically [`MemNet::dialer`] — and every stream it
//! produces is a [`FaultTransport`] that watches the request frames
//! flowing through `write` and sabotages them (or their replies)
//! according to the plan.
//!
//! The semantics mirror the proxy byte for byte:
//!
//! * **Kill mid-frame** forwards half the request line (or the whole
//!   line plus half the payload) and severs the stream.
//! * **Delay** sleeps on the injected [`Clock`] — simulated time under
//!   the harness, so a ten-second stall costs nothing real.
//! * **Truncate / corrupt reply** mark the connection; the next bytes
//!   read back are cut in half or have their high bits flipped, then
//!   the stream dies.
//! * **Black hole** swallows the request and everything after it; the
//!   connection stays open but mute, and each read charges the
//!   configured read timeout to the clock before failing with
//!   [`io::ErrorKind::TimedOut`] — the client's timeout machinery sees
//!   exactly what a mute server would produce, without waiting.
//!
//! [`MemNet::dialer`]: chirp_proto::MemNet::dialer

use std::fmt;
use std::io::{self, Read, Write};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use chirp_proto::transport::{Dial, Dialer, Transport};
use chirp_proto::Clock;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::{payload_len, Decider, FaultAction, FaultPlan, PlanState, ProxyStats, StatCells};

/// A [`Dial`] wrapper injecting faults per a [`FaultPlan`].
///
/// Construct with [`FaultDialer::new`], hand [`FaultDialer::dialer`]
/// to the client configuration, and keep the `Arc` to inspect
/// [`stats`](FaultDialer::stats) and [`fires`](FaultDialer::fires) or
/// to [`set_armed`](FaultDialer::set_armed) mid-test — the same
/// control surface as the TCP proxy.
pub struct FaultDialer {
    inner: Dialer,
    clock: Clock,
    stats: Arc<StatCells>,
    state: Arc<PlanState>,
}

impl FaultDialer {
    /// Wrap `inner`, applying `plan` to every connection dialed.
    /// Delays and black-hole timeouts are charged to `clock`.
    pub fn new(inner: Dialer, clock: Clock, plan: FaultPlan) -> Arc<FaultDialer> {
        Arc::new(FaultDialer {
            inner,
            clock,
            stats: Arc::new(StatCells::default()),
            state: Arc::new(PlanState {
                armed: AtomicBool::new(true),
                decider: Mutex::new(Decider {
                    rng: SmallRng::seed_from_u64(plan.seed),
                    rpc_count: 0,
                    conn_count: 0,
                    fires: vec![0; plan.rules.len()],
                }),
                rules: plan.rules,
            }),
        })
    }

    /// A [`Dialer`] handle on this wrapper, for client configurations.
    pub fn dialer(self: &Arc<Self>) -> Dialer {
        Dialer::from_arc(self.clone())
    }

    /// Disarm (or re-arm) fault injection; a disarmed dialer forwards
    /// transparently while its counters keep advancing.
    pub fn set_armed(&self, armed: bool) {
        self.state.armed.store(armed, Ordering::SeqCst);
    }

    /// Snapshot of the injection counters.
    pub fn stats(&self) -> ProxyStats {
        self.stats.snapshot()
    }

    /// Total rule firings so far.
    pub fn fires(&self) -> u64 {
        self.state.decider.lock().unwrap().fires.iter().sum()
    }

    /// Per-rule firing counts, in plan order.
    pub fn fires_by_rule(&self) -> Vec<u64> {
        self.state.decider.lock().unwrap().fires.clone()
    }

    /// The telemetry registry behind [`FaultDialer::stats`] (`fault.*`
    /// counters).
    pub fn telemetry(&self) -> &telemetry::Registry {
        &self.stats.registry
    }
}

impl fmt::Debug for FaultDialer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("FaultDialer(..)")
    }
}

impl Dial for FaultDialer {
    fn dial(&self, endpoint: &str, timeout: Duration) -> io::Result<Box<dyn Transport>> {
        let inner = self.inner.dial(endpoint, timeout)?;
        self.stats.connections.inc();
        let conn_index = self.state.next_conn();
        Ok(Box::new(FaultTransport {
            inner,
            conn: Arc::new(ConnState {
                state: self.state.clone(),
                stats: self.stats.clone(),
                clock: self.clock.clone(),
                conn_index,
                killed: AtomicBool::new(false),
                blackholed: AtomicBool::new(false),
                corrupt_next: AtomicBool::new(false),
                truncate_next: AtomicBool::new(false),
                parser: Mutex::new(Parser {
                    line: Vec::new(),
                    payload_left: 0,
                    kill_after_payload: false,
                    first_rpc: true,
                }),
            }),
        }))
    }
}

/// Per-connection injection state, shared by every clone of the
/// stream (reader and writer halves see one set of flags).
struct ConnState {
    state: Arc<PlanState>,
    stats: Arc<StatCells>,
    clock: Clock,
    conn_index: u64,
    /// The stream has been severed by a fault; writes fail, reads see
    /// end-of-stream.
    killed: AtomicBool,
    /// Everything written from here on is swallowed; reads time out.
    blackholed: AtomicBool,
    corrupt_next: AtomicBool,
    truncate_next: AtomicBool,
    parser: Mutex<Parser>,
}

/// Frame parser for the client→server direction: accumulate one
/// request line, decide a fault on completion, then track how much of
/// the frame's payload remains to forward.
struct Parser {
    line: Vec<u8>,
    payload_left: u64,
    /// Sever once `payload_left` drains (kill-mid-frame on a frame
    /// that carries a payload: forward line + half payload, then die).
    kill_after_payload: bool,
    first_rpc: bool,
}

/// A [`Transport`] whose request frames and replies are subject to a
/// [`FaultPlan`]. Produced by [`FaultDialer`]; not constructed
/// directly.
pub struct FaultTransport {
    inner: Box<dyn Transport>,
    conn: Arc<ConnState>,
}

impl fmt::Debug for FaultTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultTransport")
            .field("conn_index", &self.conn.conn_index)
            .finish_non_exhaustive()
    }
}

impl FaultTransport {
    fn sever(&self) {
        self.conn.killed.store(true, Ordering::SeqCst);
        let _ = self.inner.shutdown();
    }
}

impl Read for FaultTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.conn.killed.load(Ordering::SeqCst) {
            return Ok(0);
        }
        if self.conn.blackholed.load(Ordering::SeqCst) {
            // A mute server: the client waits out its own read timeout.
            // Charge it to the clock (instant under simulation) and
            // fail the way an expired socket timeout does.
            if let Ok(Some(t)) = self.inner.read_timeout() {
                self.conn.clock.sleep(t);
            }
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "black-holed connection",
            ));
        }
        let n = self.inner.read(buf)?;
        if n > 0 && self.conn.corrupt_next.swap(false, Ordering::SeqCst) {
            // Flip high bits in the leading bytes: the status line
            // becomes unparseable, then the stream dies.
            for b in buf.iter_mut().take(n.min(4)) {
                *b |= 0x80;
            }
            self.conn.stats.corruptions.inc();
            self.sever();
            return Ok(n);
        }
        if n > 0 && self.conn.truncate_next.swap(false, Ordering::SeqCst) {
            self.conn.stats.truncates.inc();
            self.sever();
            return Ok(n / 2);
        }
        Ok(n)
    }
}

impl Write for FaultTransport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.conn.killed.load(Ordering::SeqCst) {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection severed by fault",
            ));
        }
        if self.conn.blackholed.load(Ordering::SeqCst) {
            return Ok(buf.len());
        }
        // Hold the parser lock via a cloned Arc so `frame_complete`
        // can borrow `self` mutably while the guard lives.
        let conn = self.conn.clone();
        let mut parser = conn.parser.lock().unwrap();
        let mut consumed = 0;
        while consumed < buf.len() {
            // Once a fault fires mid-buffer, accept the rest of the
            // caller's bytes silently (they went to a socket that is
            // now reset); the *next* write observes the severed state.
            if self.conn.killed.load(Ordering::SeqCst)
                || self.conn.blackholed.load(Ordering::SeqCst)
            {
                return Ok(buf.len());
            }
            if parser.payload_left > 0 {
                let want = (buf.len() - consumed).min(parser.payload_left as usize);
                self.inner.write_all(&buf[consumed..consumed + want])?;
                parser.payload_left -= want as u64;
                consumed += want;
                if parser.payload_left == 0 && parser.kill_after_payload {
                    parser.kill_after_payload = false;
                    self.conn.stats.kills.inc();
                    self.sever();
                }
                continue;
            }
            // Accumulate the request line.
            let rest = &buf[consumed..];
            match rest.iter().position(|&b| b == b'\n') {
                None => {
                    parser.line.extend_from_slice(rest);
                    consumed = buf.len();
                }
                Some(pos) => {
                    parser.line.extend_from_slice(&rest[..=pos]);
                    consumed += pos + 1;
                    self.frame_complete(&mut parser)?;
                }
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.conn.killed.load(Ordering::SeqCst) || self.conn.blackholed.load(Ordering::SeqCst) {
            return Ok(());
        }
        self.inner.flush()
    }
}

impl FaultTransport {
    /// One whole request line is buffered in `parser.line`: count it,
    /// consult the plan, and forward (or sabotage) the frame.
    fn frame_complete(&mut self, parser: &mut Parser) -> io::Result<()> {
        let line = std::mem::take(&mut parser.line);
        self.conn.stats.rpcs.inc();
        let body = payload_len(&line[..line.len() - 1]);
        let first = parser.first_rpc.then_some(self.conn.conn_index);
        parser.first_rpc = false;
        match self.conn.state.decide(first) {
            Some(FaultAction::Delay(d)) => {
                self.conn.stats.delays.inc();
                self.conn.clock.sleep(d);
            }
            Some(FaultAction::KillMidFrame) => {
                if body > 0 {
                    // Forward the whole line, then die halfway through
                    // the payload (which has not been written yet).
                    self.inner.write_all(&line)?;
                    parser.payload_left = body / 2;
                    parser.kill_after_payload = true;
                    if parser.payload_left == 0 {
                        parser.kill_after_payload = false;
                        self.conn.stats.kills.inc();
                        self.sever();
                    }
                } else {
                    self.conn.stats.kills.inc();
                    self.inner.write_all(&line[..line.len() / 2])?;
                    self.sever();
                }
                return Ok(());
            }
            Some(FaultAction::TruncateReply) => {
                self.conn.truncate_next.store(true, Ordering::SeqCst);
            }
            Some(FaultAction::CorruptReply) => {
                self.conn.corrupt_next.store(true, Ordering::SeqCst);
            }
            Some(FaultAction::BlackHole) => {
                self.conn.stats.blackholes.inc();
                self.conn.blackholed.store(true, Ordering::SeqCst);
                return Ok(());
            }
            None => {}
        }
        self.inner.write_all(&line)?;
        parser.payload_left = body;
        Ok(())
    }
}

impl Transport for FaultTransport {
    fn try_clone(&self) -> io::Result<Box<dyn Transport>> {
        Ok(Box::new(FaultTransport {
            inner: self.inner.try_clone()?,
            conn: self.conn.clone(),
        }))
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(timeout)
    }

    fn read_timeout(&self) -> io::Result<Option<Duration>> {
        self.inner.read_timeout()
    }

    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_write_timeout(timeout)
    }

    fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    fn shutdown(&self) -> io::Result<()> {
        self.conn.killed.store(true, Ordering::SeqCst);
        self.inner.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultTrigger;
    use chirp_proto::transport::Listener;
    use chirp_proto::MemNet;
    use std::io::{BufRead, BufReader};

    /// A line server over the in-memory network: `PING x` → `PONG x`,
    /// `PWRITE fd len off` + payload → the payload length. One
    /// connection at a time is plenty for these tests.
    fn spawn_line_server(net: &MemNet) -> (String, std::thread::JoinHandle<()>) {
        let listener = net.listen();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                loop {
                    let mut line = String::new();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                    let words: Vec<&str> = line.split_ascii_whitespace().collect();
                    let reply = match words.first().copied() {
                        Some("PING") => format!("PONG {}\n", words.get(1).unwrap_or(&"")),
                        Some("PWRITE") => {
                            let len: u64 = words.get(2).and_then(|w| w.parse().ok()).unwrap_or(0);
                            let mut payload = vec![0u8; len as usize];
                            if reader.read_exact(&mut payload).is_err() {
                                break;
                            }
                            format!("{len}\n")
                        }
                        _ => "-1\n".to_string(),
                    };
                    if writer.write_all(reply.as_bytes()).is_err() {
                        break;
                    }
                    let _ = writer.flush();
                }
            }
        });
        (addr, handle)
    }

    fn connect(
        fd: &Arc<FaultDialer>,
        addr: &str,
    ) -> (BufReader<Box<dyn Transport>>, Box<dyn Transport>) {
        let stream = fd.dialer().dial(addr, Duration::from_secs(5)).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        (BufReader::new(stream.try_clone().unwrap()), stream)
    }

    fn rpc(
        reader: &mut BufReader<Box<dyn Transport>>,
        writer: &mut Box<dyn Transport>,
        req: &str,
    ) -> io::Result<String> {
        writer.write_all(req.as_bytes())?;
        writer.flush()?;
        let mut reply = String::new();
        let n = reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        Ok(reply.trim_end().to_string())
    }

    #[test]
    fn transparent_when_plan_is_empty() {
        let net = MemNet::new(Clock::fresh_virtual());
        let (addr, _h) = spawn_line_server(&net);
        let fd = FaultDialer::new(net.dialer(), net.clock().clone(), FaultPlan::new(1));
        let (mut r, mut w) = connect(&fd, &addr);
        assert_eq!(rpc(&mut r, &mut w, "PING a\n").unwrap(), "PONG a");
        assert_eq!(rpc(&mut r, &mut w, "PING b\n").unwrap(), "PONG b");
        let s = fd.stats();
        assert_eq!(s.rpcs, 2);
        assert_eq!(fd.fires(), 0);
    }

    #[test]
    fn kill_mid_frame_tears_the_stream() {
        let net = MemNet::new(Clock::fresh_virtual());
        let (addr, _h) = spawn_line_server(&net);
        let plan = FaultPlan::new(7).rule(FaultTrigger::NthRpc(2), FaultAction::KillMidFrame);
        let fd = FaultDialer::new(net.dialer(), net.clock().clone(), plan);
        let (mut r, mut w) = connect(&fd, &addr);
        assert_eq!(rpc(&mut r, &mut w, "PING a\n").unwrap(), "PONG a");
        // The second RPC dies: either the write fails or the reply
        // never comes (torn frame ⇒ EOF).
        let err = rpc(&mut r, &mut w, "PING b\n").unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::UnexpectedEof | io::ErrorKind::BrokenPipe
            ),
            "unexpected error: {err:?}"
        );
        assert_eq!(fd.stats().kills, 1);
    }

    #[test]
    fn kill_mid_frame_with_payload_forwards_half() {
        let net = MemNet::new(Clock::fresh_virtual());
        let (addr, _h) = spawn_line_server(&net);
        let plan = FaultPlan::new(7).rule(FaultTrigger::NthRpc(1), FaultAction::KillMidFrame);
        let fd = FaultDialer::new(net.dialer(), net.clock().clone(), plan);
        let (mut r, mut w) = connect(&fd, &addr);
        let err = rpc(&mut r, &mut w, &format!("PWRITE 3 8 0\n{}", "ABCDEFGH")).unwrap_err();
        assert!(matches!(
            err.kind(),
            io::ErrorKind::UnexpectedEof | io::ErrorKind::BrokenPipe
        ));
        assert_eq!(fd.stats().kills, 1);
        // Subsequent writes observe the severed stream.
        assert!(w.write_all(b"PING x\n").is_err());
    }

    #[test]
    fn delay_charges_the_virtual_clock() {
        let clock = Clock::fresh_virtual();
        let net = MemNet::new(clock.clone());
        let (addr, _h) = spawn_line_server(&net);
        let plan = FaultPlan::new(7).rule(
            FaultTrigger::NthRpc(1),
            FaultAction::Delay(Duration::from_secs(30)),
        );
        let fd = FaultDialer::new(net.dialer(), clock.clone(), plan);
        let (mut r, mut w) = connect(&fd, &addr);
        let t0 = clock.now();
        let wall = std::time::Instant::now();
        assert_eq!(rpc(&mut r, &mut w, "PING a\n").unwrap(), "PONG a");
        assert!(clock.elapsed_since(t0) >= Duration::from_secs(30));
        assert!(wall.elapsed() < Duration::from_secs(5));
        assert_eq!(fd.stats().delays, 1);
    }

    #[test]
    fn blackhole_times_out_on_simulated_clock() {
        let clock = Clock::fresh_virtual();
        let net = MemNet::new(clock.clone());
        let (addr, _h) = spawn_line_server(&net);
        let plan = FaultPlan::new(7).rule(FaultTrigger::NthRpc(2), FaultAction::BlackHole);
        let fd = FaultDialer::new(net.dialer(), clock.clone(), plan);
        let (mut r, mut w) = connect(&fd, &addr);
        assert_eq!(rpc(&mut r, &mut w, "PING a\n").unwrap(), "PONG a");
        let t0 = clock.now();
        let err = rpc(&mut r, &mut w, "PING b\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        // The 200ms read timeout was charged to simulated time.
        assert!(clock.elapsed_since(t0) >= Duration::from_millis(200));
        assert_eq!(fd.stats().blackholes, 1);
    }

    #[test]
    fn corrupt_reply_flips_high_bits_then_dies() {
        let net = MemNet::new(Clock::fresh_virtual());
        let (addr, _h) = spawn_line_server(&net);
        let plan = FaultPlan::new(7).rule(FaultTrigger::NthRpc(1), FaultAction::CorruptReply);
        let fd = FaultDialer::new(net.dialer(), net.clock().clone(), plan);
        let (mut r, mut w) = connect(&fd, &addr);
        w.write_all(b"PING a\n").unwrap();
        w.flush().unwrap();
        let mut reply = Vec::new();
        let _ = r.read_until(b'\n', &mut reply);
        assert!(
            reply.iter().take(4).all(|&b| b & 0x80 != 0),
            "leading bytes not corrupted: {reply:?}"
        );
        assert_eq!(fd.stats().corruptions, 1);
    }

    #[test]
    fn truncate_reply_halves_the_first_chunk() {
        let net = MemNet::new(Clock::fresh_virtual());
        let (addr, _h) = spawn_line_server(&net);
        let plan = FaultPlan::new(7).rule(FaultTrigger::NthRpc(1), FaultAction::TruncateReply);
        let fd = FaultDialer::new(net.dialer(), net.clock().clone(), plan);
        let (mut r, mut w) = connect(&fd, &addr);
        w.write_all(b"PING abcdefgh\n").unwrap();
        w.flush().unwrap();
        let mut reply = Vec::new();
        let _ = r.read_until(b'\n', &mut reply);
        // "PONG abcdefgh\n" is 14 bytes; we must see strictly fewer,
        // with no trailing newline (the frame ends early).
        assert!(reply.len() < 14, "reply not truncated: {reply:?}");
        assert_eq!(fd.stats().truncates, 1);
    }

    #[test]
    fn disarmed_dialer_forwards_transparently() {
        let net = MemNet::new(Clock::fresh_virtual());
        let (addr, _h) = spawn_line_server(&net);
        let plan = FaultPlan::new(7).rule(FaultTrigger::EveryNthRpc(1), FaultAction::KillMidFrame);
        let fd = FaultDialer::new(net.dialer(), net.clock().clone(), plan);
        fd.set_armed(false);
        let (mut r, mut w) = connect(&fd, &addr);
        for i in 0..5 {
            assert_eq!(
                rpc(&mut r, &mut w, &format!("PING {i}\n")).unwrap(),
                format!("PONG {i}")
            );
        }
        assert_eq!(fd.fires(), 0);
        assert_eq!(fd.stats().rpcs, 5);
    }
}

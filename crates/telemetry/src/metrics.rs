//! The live metric cells and their registry.
//!
//! Updates are lock-free: a [`Counter`], [`Gauge`], or [`Histogram`]
//! handle is an `Arc` around plain atomics, updated with `Relaxed`
//! RMWs — these are monotonic telemetry, never used for
//! synchronization. Only *registration* (name → handle) takes a
//! mutex, so hot paths fetch their handles once and keep them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::snapshot::{bucket_index, HistogramSnapshot, MetricValue, MetricsSnapshot, NUM_BUCKETS};
use crate::trace::{TraceEvent, TraceRing};

/// A monotonic counter handle. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A point-in-time level handle. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Set the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adjust the level by `delta` (may be negative).
    #[inline]
    pub fn adjust(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCells {
    fn default() -> HistogramCells {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A log₂-bucketed histogram handle. Cloning shares the cells; one
/// `record` is three relaxed atomic adds.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    cells: Arc<HistogramCells>,
}

impl Histogram {
    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.cells.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.cells.count.fetch_add(1, Ordering::Relaxed);
        self.cells.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Copy the current values. Buckets are read individually, so a
    /// snapshot taken under concurrent updates is approximate (counts
    /// may straddle the reads) but never torn within one cell.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot {
            count: self.cells.count.load(Ordering::Relaxed),
            sum: self.cells.sum.load(Ordering::Relaxed),
            ..HistogramSnapshot::default()
        };
        for (i, b) in self.cells.buckets.iter().enumerate() {
            snap.buckets[i] = b.load(Ordering::Relaxed);
        }
        snap
    }
}

#[derive(Debug, Clone)]
enum Cell {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Inner {
    cells: Mutex<BTreeMap<String, Cell>>,
    ring: TraceRing,
}

impl Default for Inner {
    fn default() -> Inner {
        Inner {
            cells: Mutex::new(BTreeMap::new()),
            ring: TraceRing::new(Registry::DEFAULT_RING_CAPACITY),
        }
    }
}

/// A global-free registry of named metrics plus a trace ring of
/// recent events. Cloning shares the registry; there is deliberately
/// no process-wide singleton — each server, pool, or proxy owns its
/// registry and decides where it is published.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// Trace events retained by the built-in ring.
    pub const DEFAULT_RING_CAPACITY: usize = 256;

    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, registering it at zero on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut cells = self.inner.cells.lock().expect("registry poisoned");
        match cells
            .entry(name.to_string())
            .or_insert_with(|| Cell::Counter(Counter::default()))
        {
            Cell::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// The gauge named `name`, registering it at zero on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut cells = self.inner.cells.lock().expect("registry poisoned");
        match cells
            .entry(name.to_string())
            .or_insert_with(|| Cell::Gauge(Gauge::default()))
        {
            Cell::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// The histogram named `name`, registering it empty on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut cells = self.inner.cells.lock().expect("registry poisoned");
        match cells
            .entry(name.to_string())
            .or_insert_with(|| Cell::Histogram(Histogram::default()))
        {
            Cell::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// The trace ring of recent events.
    pub fn ring(&self) -> &TraceRing {
        &self.inner.ring
    }

    /// Push one event into the trace ring.
    pub fn record_event(&self, event: TraceEvent) {
        self.inner.ring.push(event);
    }

    /// Freeze every registered metric into a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let cells = self.inner.cells.lock().expect("registry poisoned");
        let metrics = cells
            .iter()
            .map(|(name, cell)| {
                let value = match cell {
                    Cell::Counter(c) => MetricValue::Counter(c.get()),
                    Cell::Gauge(g) => MetricValue::Gauge(g.get()),
                    Cell::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect();
        MetricsSnapshot { metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells_with_the_registry() {
        let reg = Registry::new();
        let c = reg.counter("hits");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("hits").get(), 5);
        let g = reg.gauge("level");
        g.set(9);
        g.adjust(-2);
        assert_eq!(reg.gauge("level").get(), 7);
        let h = reg.histogram("lat");
        h.record(100);
        assert_eq!(reg.histogram("lat").snapshot().count, 1);
    }

    #[test]
    fn snapshot_contains_all_kinds() {
        let reg = Registry::new();
        reg.counter("c").add(3);
        reg.gauge("g").set(-2);
        reg.histogram("h").record(10);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), Some(3));
        assert_eq!(snap.metrics.get("g"), Some(&MetricValue::Gauge(-2)));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_clash_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = reg.counter("n");
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(reg.counter("n").get(), 8000);
        let snap = reg.histogram("lat").snapshot();
        assert_eq!(snap.count, 8000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 8000);
    }
}

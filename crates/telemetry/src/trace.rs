//! Span timing and the per-process flight recorder.
//!
//! Aggregates (histograms) answer "how fast on average"; the trace
//! ring answers "what just happened" — the last few hundred per-RPC
//! events with enough context (op, subject, duration, bytes, outcome)
//! to reconstruct an incident without logs or a debugger attached.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How a traced operation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The operation succeeded.
    Ok,
    /// The operation returned an error.
    Error,
}

/// One recorded operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Operation name (`pread`, `open`, ...).
    pub op: String,
    /// Acting subject (authenticated identity, endpoint, or `-`).
    pub subject: String,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Payload bytes moved (in + out).
    pub bytes: u64,
    /// How it ended.
    pub outcome: Outcome,
}

/// A bounded ring of recent [`TraceEvent`]s. Pushes beyond capacity
/// drop the oldest event; the drop total is kept so "how much history
/// have I lost" stays answerable.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
    dropped: AtomicU64,
}

impl TraceRing {
    /// A ring retaining at most `capacity` events.
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append an event, evicting the oldest when full.
    pub fn push(&self, event: TraceEvent) {
        let mut events = self.events.lock().expect("trace ring poisoned");
        if events.len() == self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn recent(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .expect("trace ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace ring poisoned").len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted to make room so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// A lightweight span clock: capture [`SpanTimer::start`], then read
/// [`SpanTimer::elapsed_ns`] when the operation resolves. Costs one
/// `Instant::now()` at each end and allocates nothing.
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer {
    started: Instant,
}

impl SpanTimer {
    /// Start timing now.
    pub fn start() -> SpanTimer {
        SpanTimer {
            started: Instant::now(),
        }
    }

    /// Nanoseconds since the span started.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: &str) -> TraceEvent {
        TraceEvent {
            op: op.into(),
            subject: "-".into(),
            dur_ns: 1,
            bytes: 0,
            outcome: Outcome::Ok,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let ring = TraceRing::new(3);
        for op in ["a", "b", "c", "d", "e"] {
            ring.push(ev(op));
        }
        let ops: Vec<String> = ring.recent().into_iter().map(|e| e.op).collect();
        assert_eq!(ops, vec!["c", "d", "e"]);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn span_timer_measures_something() {
        let t = SpanTimer::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(t.elapsed_ns() >= 1_000_000);
    }
}

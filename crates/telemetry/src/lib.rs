//! Zero-dependency observability for the tactical storage system.
//!
//! The paper's resource layer is manageable only because every server
//! *describes itself* to catalogs (§4). This crate makes the rest of
//! the system's internal state equally first-class:
//!
//! * [`Registry`] — a global-free set of named [`Counter`]s,
//!   [`Gauge`]s, and log-bucketed latency [`Histogram`]s. Handles are
//!   plain `Arc<Atomic…>` cells: once registered, every update is one
//!   relaxed atomic RMW — no locks, no allocation, no formatting on
//!   the hot path. The registration table itself is behind a mutex,
//!   so handles are fetched once at startup and kept.
//! * [`MetricsSnapshot`] — a point-in-time copy of a registry,
//!   encodable as `key value` text lines (for embedding in catalog
//!   report packets) and as JSON, and decodable from both. Snapshots
//!   merge: counters add, gauges take the newest, histograms add
//!   bucket-wise (merge is associative and commutative, so catalog
//!   aggregation order never matters).
//! * [`TraceRing`] — a bounded ring of recent [`TraceEvent`]s (op,
//!   subject, duration, bytes, outcome) giving every process a
//!   flight-recorder of its last few hundred RPCs; [`SpanTimer`] is
//!   the matching lightweight span clock.
//!
//! Everything here is offline and dependency-free by construction —
//! the build container has no network, and the instrumented hot paths
//! (`Cfs::pread`, the Chirp request loop) cannot afford more than an
//! atomic or two per event.

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod snapshot;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use snapshot::{HistogramSnapshot, MetricValue, MetricsSnapshot};
pub use trace::{Outcome, SpanTimer, TraceEvent, TraceRing};

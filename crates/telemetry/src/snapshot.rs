//! Point-in-time metric values and their wire encodings.
//!
//! Two codecs, both lossless:
//!
//! * **text** — one `name value` line per metric, with the value a
//!   single space-free token (`c<n>` counter, `g<n>` gauge,
//!   `h<count>;<sum>;<i>:<n>,...` sparse histogram). This rides
//!   directly inside the catalog report packet's `key value` line
//!   format under an `m.` key prefix.
//! * **JSON** — `{"name":{"counter":n}, ...}` objects for external
//!   tools, via [`crate::json`], with exact integers.

use std::collections::BTreeMap;

use crate::json::Value;

/// Number of log₂ buckets in a histogram. Bucket `0` holds the value
/// `0`; bucket `i` (for `i ≥ 1`) holds values in `[2^(i-1), 2^i)`,
/// and the last bucket absorbs everything above.
pub const NUM_BUCKETS: usize = 64;

/// Bucket index for a recorded value.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
    }
}

/// A point-in-time copy of a log-bucketed histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Per-bucket counts; see [`bucket_index`].
    pub buckets: [u64; NUM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Record one value (snapshot-side; the live path is
    /// [`crate::Histogram::record`]).
    pub fn record(&mut self, v: u64) {
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.buckets[bucket_index(v)] = self.buckets[bucket_index(v)].saturating_add(1);
    }

    /// Merge another histogram into this one, bucket-wise. Saturating
    /// adds keep merge associative and commutative even at the rails.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
    }

    /// Bucket-wise difference from an `earlier` observation of the
    /// same histogram: what was recorded between the two snapshots.
    /// Saturating subtraction keeps a reset (or unrelated) earlier
    /// snapshot from underflowing — the delta clamps at zero.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            ..HistogramSnapshot::default()
        };
        for (o, (now, then)) in out
            .buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(earlier.buckets.iter()))
        {
            *o = now.saturating_sub(*then);
        }
        out
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the
    /// first bucket at which the cumulative count reaches `q × count`.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(NUM_BUCKETS - 1)
    }

    /// Mean of recorded values, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    fn encode(&self) -> String {
        let mut out = format!("h{};{};", self.count, self.sum);
        let mut first = true;
        for (i, b) in self.buckets.iter().enumerate() {
            if *b != 0 {
                if !first {
                    out.push(',');
                }
                out.push_str(&format!("{i}:{b}"));
                first = false;
            }
        }
        out
    }

    fn decode(body: &str) -> Option<HistogramSnapshot> {
        let mut parts = body.splitn(3, ';');
        let count = parts.next()?.parse().ok()?;
        let sum = parts.next()?.parse().ok()?;
        let pairs = parts.next()?;
        let mut buckets = [0u64; NUM_BUCKETS];
        if !pairs.is_empty() {
            for pair in pairs.split(',') {
                let (i, n) = pair.split_once(':')?;
                let i: usize = i.parse().ok()?;
                if i >= NUM_BUCKETS {
                    return None;
                }
                buckets[i] = n.parse().ok()?;
            }
        }
        Some(HistogramSnapshot {
            count,
            sum,
            buckets,
        })
    }
}

/// Inclusive-ish upper bound of bucket `i`, used as its representative
/// value when reporting quantiles.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// One metric's value in a snapshot.
// The histogram variant dominates the size, but snapshot values live
// in BTreeMap nodes (already heap-allocated) and are built/consumed
// per report tick, so boxing would add a pointer chase for nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonic counter.
    Counter(u64),
    /// A point-in-time level.
    Gauge(i64),
    /// A log-bucketed histogram.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// Encode as a single space-free token.
    pub fn encode(&self) -> String {
        match self {
            MetricValue::Counter(n) => format!("c{n}"),
            MetricValue::Gauge(n) => format!("g{n}"),
            MetricValue::Histogram(h) => h.encode(),
        }
    }

    /// Decode a token produced by [`MetricValue::encode`].
    pub fn decode(token: &str) -> Option<MetricValue> {
        let body = token.get(1..)?;
        match token.as_bytes().first()? {
            b'c' => body.parse().ok().map(MetricValue::Counter),
            b'g' => body.parse().ok().map(MetricValue::Gauge),
            b'h' => HistogramSnapshot::decode(body).map(MetricValue::Histogram),
            _ => None,
        }
    }

    /// Merge another observation of the same metric: counters add,
    /// gauges keep the other (newest) value, histograms merge
    /// bucket-wise. A kind mismatch keeps the other value.
    pub fn merge(&mut self, other: &MetricValue) {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a = a.saturating_add(*b),
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
            (slot, other) => *slot = other.clone(),
        }
    }

    /// Difference from an `earlier` observation of the same metric:
    /// counters subtract (saturating), histograms subtract bucket-wise,
    /// gauges keep the later (self) level — a gauge is a reading, not
    /// an accumulation. A kind mismatch keeps the later value.
    pub fn delta(&self, earlier: &MetricValue) -> MetricValue {
        match (self, earlier) {
            (MetricValue::Counter(now), MetricValue::Counter(then)) => {
                MetricValue::Counter(now.saturating_sub(*then))
            }
            (MetricValue::Histogram(now), MetricValue::Histogram(then)) => {
                MetricValue::Histogram(now.delta(then))
            }
            (later, _) => later.clone(),
        }
    }

    /// This value as a JSON object (`{"counter":n}` etc.). Histograms
    /// carry `count`, `sum`, and sparse `buckets`.
    pub fn to_json_value(&self) -> Value {
        match self {
            MetricValue::Counter(n) => Value::Object(vec![("counter".into(), Value::Uint(*n))]),
            MetricValue::Gauge(n) => Value::Object(vec![(
                "gauge".into(),
                if *n >= 0 {
                    Value::Uint(*n as u64)
                } else {
                    Value::Int(*n)
                },
            )]),
            MetricValue::Histogram(h) => {
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| **b != 0)
                    .map(|(i, b)| (i.to_string(), Value::Uint(*b)))
                    .collect();
                Value::Object(vec![
                    ("count".into(), Value::Uint(h.count)),
                    ("sum".into(), Value::Uint(h.sum)),
                    ("buckets".into(), Value::Object(buckets)),
                ])
            }
        }
    }

    /// Decode the JSON form produced by [`MetricValue::to_json_value`].
    /// Extra keys (for instance derived `p50`/`p99` a catalog appends)
    /// are ignored, so enriched listings still parse.
    pub fn from_json_value(v: &Value) -> Option<MetricValue> {
        if let Some(n) = v.get("counter") {
            return Some(MetricValue::Counter(n.as_u64()?));
        }
        if let Some(n) = v.get("gauge") {
            return Some(MetricValue::Gauge(n.as_i64()?));
        }
        if v.get("count").is_some() {
            let mut h = HistogramSnapshot {
                count: v.get("count")?.as_u64()?,
                sum: v.get("sum")?.as_u64()?,
                ..HistogramSnapshot::default()
            };
            for (k, n) in v.get("buckets")?.as_object()? {
                let i: usize = k.parse().ok()?;
                if i >= NUM_BUCKETS {
                    return None;
                }
                h.buckets[i] = n.as_u64()?;
            }
            return Some(MetricValue::Histogram(h));
        }
        None
    }
}

/// A named set of metric values — one registry, frozen.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Metric name → value, sorted by name.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// True when no metrics are present.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The value of a counter metric, when present and a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name)? {
            MetricValue::Counter(n) => Some(*n),
            _ => None,
        }
    }

    /// The value of a histogram metric, when present and a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metrics.get(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Sum of every counter whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .filter_map(|(_, v)| match v {
                MetricValue::Counter(n) => Some(*n),
                _ => None,
            })
            .sum()
    }

    /// Encode as `name value` lines.
    pub fn encode_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.metrics {
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.encode());
            out.push('\n');
        }
        out
    }

    /// Decode [`MetricsSnapshot::encode_text`] output. Malformed lines
    /// are skipped — a newer sender's unknown value kinds must not
    /// poison the rest of the snapshot.
    pub fn decode_text(text: &str) -> MetricsSnapshot {
        let mut metrics = BTreeMap::new();
        for line in text.lines() {
            let Some((name, token)) = line.trim_end().split_once(' ') else {
                continue;
            };
            if let Some(v) = MetricValue::decode(token) {
                metrics.insert(name.to_string(), v);
            }
        }
        MetricsSnapshot { metrics }
    }

    /// Merge another snapshot into this one (see [`MetricValue::merge`]).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.metrics {
            self.metrics
                .entry(name.clone())
                .and_modify(|v| v.merge(value))
                .or_insert_with(|| value.clone());
        }
    }

    /// What happened between `earlier` and this snapshot, per metric
    /// (see [`MetricValue::delta`]): counters and histograms subtract,
    /// gauges keep this snapshot's reading. Metrics absent from
    /// `earlier` pass through whole (they were born in the window);
    /// metrics only in `earlier` are dropped — nothing about them
    /// happened in the window. Scenario envelopes assert on this:
    /// `before.merge(&after.delta(&before))` restores `after` for
    /// every counter and histogram, which the property suite pins.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut metrics = BTreeMap::new();
        for (name, now) in &self.metrics {
            let v = match earlier.metrics.get(name) {
                Some(then) => now.delta(then),
                None => now.clone(),
            };
            metrics.insert(name.clone(), v);
        }
        MetricsSnapshot { metrics }
    }

    /// This snapshot as a JSON object value.
    pub fn to_json_value(&self) -> Value {
        Value::Object(
            self.metrics
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }

    /// Render as a JSON object string.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Parse the JSON form. Returns `None` only when `text` is not a
    /// JSON object; unrecognized member shapes are skipped.
    pub fn from_json(text: &str) -> Option<MetricsSnapshot> {
        Self::from_json_value(&Value::parse(text)?)
    }

    /// Extract a snapshot from a parsed JSON object value.
    pub fn from_json_value(v: &Value) -> Option<MetricsSnapshot> {
        let mut metrics = BTreeMap::new();
        for (k, v) in v.as_object()? {
            if let Some(mv) = MetricValue::from_json_value(v) {
                metrics.insert(k.clone(), mv);
            }
        }
        Some(MetricsSnapshot { metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(values: &[u64]) -> HistogramSnapshot {
        let mut h = HistogramSnapshot::default();
        for v in values {
            h.record(*v);
        }
        h
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn quantiles_walk_buckets() {
        let h = hist(&[1, 1, 1, 1, 1, 1, 1, 1, 1, 1000]);
        assert_eq!(h.quantile(0.5), 1);
        assert!(h.quantile(0.99) >= 1000);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn histogram_token_round_trips() {
        for h in [hist(&[]), hist(&[0]), hist(&[1, 7, 7, 900, u64::MAX])] {
            let v = MetricValue::Histogram(h);
            assert_eq!(MetricValue::decode(&v.encode()), Some(v.clone()));
        }
    }

    #[test]
    fn scalar_tokens_round_trip() {
        for v in [
            MetricValue::Counter(0),
            MetricValue::Counter(u64::MAX),
            MetricValue::Gauge(-40),
            MetricValue::Gauge(i64::MAX),
        ] {
            assert_eq!(MetricValue::decode(&v.encode()), Some(v.clone()));
        }
        assert_eq!(MetricValue::decode("x1"), None);
        assert_eq!(MetricValue::decode(""), None);
        assert_eq!(
            MetricValue::decode("h1;2;99:1"),
            None,
            "bucket out of range"
        );
    }

    #[test]
    fn text_codec_round_trips_and_skips_garbage() {
        let mut snap = MetricsSnapshot::default();
        snap.metrics
            .insert("rpc.open.count".into(), MetricValue::Counter(3));
        snap.metrics
            .insert("pool.idle".into(), MetricValue::Gauge(-1));
        snap.metrics.insert(
            "rpc.latency_ns".into(),
            MetricValue::Histogram(hist(&[5, 9])),
        );
        let mut text = snap.encode_text();
        text.push_str("weird token-without-kind\n\nnospace\n");
        assert_eq!(MetricsSnapshot::decode_text(&text), snap);
    }

    #[test]
    fn json_codec_round_trips() {
        let mut snap = MetricsSnapshot::default();
        snap.metrics
            .insert("a".into(), MetricValue::Counter(u64::MAX));
        snap.metrics.insert("b".into(), MetricValue::Gauge(-9));
        snap.metrics
            .insert("h".into(), MetricValue::Histogram(hist(&[1, 2, 3])));
        assert_eq!(MetricsSnapshot::from_json(&snap.to_json()), Some(snap));
    }

    #[test]
    fn merge_counters_add_gauges_replace() {
        let mut a = MetricsSnapshot::default();
        a.metrics.insert("c".into(), MetricValue::Counter(2));
        a.metrics.insert("g".into(), MetricValue::Gauge(5));
        let mut b = MetricsSnapshot::default();
        b.metrics.insert("c".into(), MetricValue::Counter(3));
        b.metrics.insert("g".into(), MetricValue::Gauge(1));
        b.metrics.insert("new".into(), MetricValue::Counter(1));
        a.merge(&b);
        assert_eq!(a.counter("c"), Some(5));
        assert_eq!(a.metrics.get("g"), Some(&MetricValue::Gauge(1)));
        assert_eq!(a.counter("new"), Some(1));
    }
}

//! A minimal JSON value tree with exact integer round-tripping.
//!
//! The catalog publishes listings and metrics as JSON, and tools like
//! `tss-top` (and the property tests) parse them back, so unlike a
//! render-only emitter this module implements both directions.
//! Integers are kept out of `f64` — a `u64` byte counter survives a
//! round trip bit-exact.

/// A JSON value for rendering and parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer, rendered without a fractional part.
    Uint(u64),
    /// A negative integer (positive integers parse as [`Value::Uint`]).
    Int(i64),
    /// Any number with a fractional part or exponent.
    Float(f64),
    /// A string (escaped on render).
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An ordered object (keys render in the order given).
    Object(Vec<(String, Value)>),
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl Value {
    /// Render to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Uint(n) => out.push_str(&n.to_string()),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse one JSON value from `text` (which must contain nothing
    /// else but whitespace around it).
    pub fn parse(text: &str) -> Option<Value> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos == p.bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    /// The fields of an object value, or `None` for any other variant.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The items of an array value, or `None` for any other variant.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, or `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a `u64`, when it is an integral number ≥ 0.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Uint(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f < 1.8e19 => Some(*f as u64),
            _ => None,
        }
    }

    /// This value as an `i64`, when it is an integral number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Uint(n) => i64::try_from(*n).ok(),
            Value::Int(n) => Some(*n),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.2e18 => Some(*f as i64),
            _ => None,
        }
    }

    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Option<Value> {
        match self.peek()? {
            b'n' => self.literal("null").then_some(Value::Null),
            b't' => self.literal("true").then_some(Value::Bool(true)),
            b'f' => self.literal("false").then_some(Value::Bool(false)),
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn array(&mut self) -> Option<Value> {
        self.eat(b'[');
        self.skip_ws();
        let mut items = Vec::new();
        if self.eat(b']') {
            return Some(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Some(Value::Array(items));
            }
            if !self.eat(b',') {
                return None;
            }
        }
    }

    fn object(&mut self) -> Option<Value> {
        self.eat(b'{');
        self.skip_ws();
        let mut fields = Vec::new();
        if self.eat(b'}') {
            return Some(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return None;
            }
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            if self.eat(b'}') {
                return Some(Value::Object(fields));
            }
            if !self.eat(b',') {
                return None;
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let c = std::str::from_utf8(rest).ok()?.chars().next()?;
            self.pos += c.len_utf8();
            match c {
                '"' => return Some(out),
                '\\' => {
                    let esc = self.bytes.get(self.pos).copied()?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4)?;
                            self.pos += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                c if (c as u32) < 0x20 => return None,
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Option<Value> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.eat(b'.') {
            fractional = true;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        if !fractional {
            if let Ok(n) = text.parse::<u64>() {
                return Some(Value::Uint(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Some(Value::Int(n));
            }
        }
        text.parse::<f64>().ok().map(Value::Float)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Value::Null.render(), "null");
        assert_eq!(Value::Bool(true).render(), "true");
        assert_eq!(Value::Uint(42).render(), "42");
        assert_eq!(Value::Int(-7).render(), "-7");
        assert_eq!(Value::Float(1.5).render(), "1.5");
        assert_eq!(Value::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Value::from("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Value::from("\u{01}").render(), "\"\\u0001\"");
    }

    #[test]
    fn containers_nest() {
        let v = Value::Object(vec![
            (
                "servers".into(),
                Value::Array(vec![Value::from("a"), Value::from("b")]),
            ),
            ("count".into(), Value::Uint(2)),
        ]);
        assert_eq!(v.render(), "{\"servers\":[\"a\",\"b\"],\"count\":2}");
    }

    #[test]
    fn u64_values_round_trip_exactly() {
        for n in [0, 1, u64::MAX, (1 << 53) + 1] {
            let text = Value::Uint(n).render();
            assert_eq!(Value::parse(&text), Some(Value::Uint(n)), "{n}");
        }
    }

    #[test]
    fn parse_handles_structures_and_escapes() {
        let v = Value::parse(r#" {"a":[1,-2,3.5,null,true],"s":"x\n\u0041"} "#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\nA"));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0], Value::Uint(1));
        assert_eq!(arr[1], Value::Int(-2));
        assert_eq!(arr[2], Value::Float(3.5));
    }

    #[test]
    fn parse_rejects_garbage_and_trailing_input() {
        assert_eq!(Value::parse("nope"), None);
        assert_eq!(Value::parse("{\"a\":}"), None);
        assert_eq!(Value::parse("1 2"), None);
        assert_eq!(Value::parse("[1,]"), None);
    }

    #[test]
    fn round_trips_own_rendering() {
        let v = Value::Object(vec![
            ("n".into(), Value::Uint(250_000_000_000)),
            ("f".into(), Value::Float(0.25)),
            ("s".into(), Value::from("tab\there")),
            (
                "l".into(),
                Value::Array(vec![Value::Null, Value::Bool(false)]),
            ),
        ]);
        assert_eq!(Value::parse(&v.render()), Some(v));
    }
}

//! Property tests for the metric codecs and merge algebra.

use proptest::prelude::*;
use telemetry::{HistogramSnapshot, MetricValue, MetricsSnapshot};

/// Build a metric value from a generated shape: 0 → counter,
/// 1 → gauge, 2+ → histogram over the given values.
fn metric(kind: u8, n: u64, g: i64, values: &[u64]) -> MetricValue {
    match kind % 3 {
        0 => MetricValue::Counter(n),
        1 => MetricValue::Gauge(g),
        _ => {
            let mut h = HistogramSnapshot::default();
            for v in values {
                h.record(*v);
            }
            MetricValue::Histogram(h)
        }
    }
}

fn snapshot(parts: &[(String, u8, u64, i64, Vec<u64>)]) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for (name, kind, n, g, values) in parts {
        snap.metrics
            .insert(name.clone(), metric(*kind, *n, *g, values));
    }
    snap
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn text_encoding_round_trips(
        parts in proptest::collection::vec(
            ("[a-z][a-z0-9._]{0,20}", any::<u8>(), any::<u64>(), any::<i64>(),
             proptest::collection::vec(any::<u64>(), 0..8)),
            0..6),
    ) {
        let snap = snapshot(&parts);
        prop_assert_eq!(MetricsSnapshot::decode_text(&snap.encode_text()), snap);
    }

    #[test]
    fn json_encoding_round_trips(
        parts in proptest::collection::vec(
            ("[a-z][a-z0-9._]{0,20}", any::<u8>(), any::<u64>(), any::<i64>(),
             proptest::collection::vec(any::<u64>(), 0..8)),
            0..6),
    ) {
        let snap = snapshot(&parts);
        prop_assert_eq!(MetricsSnapshot::from_json(&snap.to_json()), Some(snap));
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative(
        a in proptest::collection::vec(any::<u64>(), 0..16),
        b in proptest::collection::vec(any::<u64>(), 0..16),
        c in proptest::collection::vec(any::<u64>(), 0..16),
    ) {
        let hist = |values: &[u64]| {
            let mut h = HistogramSnapshot::default();
            for v in values { h.record(*v); }
            h
        };
        let (ha, hb, hc) = (hist(&a), hist(&b), hist(&c));

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut right_inner = hb.clone();
        right_inner.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right);

        // a ⊕ b == b ⊕ a
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);

        // Merging is the same as recording the concatenation.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(left, hist(&all));
    }

    // Delta inverts merge only away from the saturating rails, so the
    // inversion properties generate bounded values (real histograms hold
    // latencies and byte counts, far from u64::MAX).
    #[test]
    fn histogram_delta_inverts_merge(
        before in proptest::collection::vec(0u64..1_000_000_000, 0..16),
        window in proptest::collection::vec(0u64..1_000_000_000, 0..16),
    ) {
        let hist = |values: &[u64]| {
            let mut h = HistogramSnapshot::default();
            for v in values { h.record(*v); }
            h
        };
        let (hb, hw) = (hist(&before), hist(&window));
        let mut after = hb.clone();
        after.merge(&hw);
        // What merged in is exactly what the delta reports...
        prop_assert_eq!(after.delta(&hb), hw.clone());
        // ...and re-merging the delta restores the later snapshot.
        let mut rebuilt = hb.clone();
        rebuilt.merge(&after.delta(&hb));
        prop_assert_eq!(rebuilt, after);
    }

    #[test]
    fn snapshot_delta_inverts_merge_for_monotonic_metrics(
        before in proptest::collection::vec(
            ("[a-z][a-z0-9._]{0,12}", any::<u8>(), 0u64..1_000_000_000, any::<i64>(),
             proptest::collection::vec(0u64..1_000_000_000, 0..6)),
            0..5),
        window in proptest::collection::vec(
            ("[a-z][a-z0-9._]{0,12}", any::<u8>(), 0u64..1_000_000_000, any::<i64>(),
             proptest::collection::vec(0u64..1_000_000_000, 0..6)),
            0..5),
    ) {
        let b = snapshot(&before);
        let w = snapshot(&window);
        let mut after = b.clone();
        after.merge(&w);
        let delta = after.delta(&b);
        // Counters and histograms reconstruct the later snapshot when
        // the delta is merged back; gauges report the later reading.
        let mut rebuilt = b.clone();
        rebuilt.merge(&delta);
        for (name, v) in &after.metrics {
            match v {
                MetricValue::Gauge(_) => {
                    prop_assert_eq!(delta.metrics.get(name), Some(v),
                        "gauge delta keeps the later reading");
                }
                _ => {
                    prop_assert_eq!(rebuilt.metrics.get(name), Some(v),
                        "merge(before, delta) restores {}", name);
                }
            }
        }
        // A quiet window reports an all-zero delta for counters.
        let quiet = after.delta(&after);
        for (name, v) in &quiet.metrics {
            if let MetricValue::Counter(n) = v {
                prop_assert_eq!(*n, 0, "counter {} moved in an empty window", name);
            }
            if let MetricValue::Histogram(h) = v {
                prop_assert_eq!(h.count, 0, "histogram {} moved in an empty window", name);
            }
        }
    }

    #[test]
    fn quantiles_bound_recorded_values(
        values in proptest::collection::vec(0u64..1_000_000, 1..64),
    ) {
        let mut h = HistogramSnapshot::default();
        for v in &values { h.record(*v); }
        let max = *values.iter().max().expect("non-empty");
        let min = *values.iter().min().expect("non-empty");
        // A quantile is a bucket upper bound: never below the true
        // minimum, and p100 covers the true maximum.
        prop_assert!(h.quantile(0.0) >= min.min(h.quantile(0.0)));
        prop_assert!(h.quantile(1.0) >= max);
        prop_assert!(h.quantile(0.5) <= h.quantile(1.0));
    }
}

//! Wall-clock vs. virtual time.
//!
//! Every layer that sleeps, expires, or measures elapsed time —
//! retry backoff, circuit-breaker cooldowns, idle-connection eviction,
//! catalog staleness — does so through a [`Clock`] handle instead of
//! calling [`std::time::Instant::now`] or [`std::thread::sleep`]
//! directly. In production the handle is [`Clock::wall`] and behaves
//! exactly like the real clock. Under the simulation harness it is a
//! [`Clock::virtual_at`] handle sharing one [`VirtualClock`]: `sleep`
//! *advances* the shared time atomically and returns immediately, so a
//! chaos scenario that nominally waits out seconds of backoff runs in
//! microseconds and — because nothing ever parks on the scheduler —
//! runs deterministically on loaded CI machines.
//!
//! Time is represented as nanoseconds since an arbitrary epoch
//! ([`Tick`]), mirroring what `Instant` arithmetic provides without
//! carrying a platform handle that virtual time could not fabricate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A point on a [`Clock`]'s timeline, in nanoseconds since the clock's
/// arbitrary epoch. Only differences are meaningful, as with
/// [`Instant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tick(pub u64);

impl Tick {
    /// Time elapsed from `earlier` to `self`; zero if `earlier` is
    /// later (clock handles are monotone, so that only happens when
    /// comparing ticks from different clocks — a caller bug, but not
    /// one worth panicking over).
    pub fn duration_since(self, earlier: Tick) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// The tick `dur` later than this one (saturating).
    pub fn after(self, dur: Duration) -> Tick {
        let ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
        Tick(self.0.saturating_add(ns))
    }
}

/// Shared, atomically advancing simulated time.
///
/// All parties in a simulation hold the same `Arc<VirtualClock>`;
/// whoever sleeps moves time forward for everyone.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ns: AtomicU64,
}

impl VirtualClock {
    /// A fresh virtual clock starting at tick 0.
    pub fn new() -> Arc<VirtualClock> {
        Arc::new(VirtualClock::default())
    }

    /// The current simulated time.
    pub fn now(&self) -> Tick {
        Tick(self.now_ns.load(Ordering::SeqCst))
    }

    /// Advance simulated time by `dur`.
    pub fn advance(&self, dur: Duration) {
        let ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
        self.now_ns.fetch_add(ns, Ordering::SeqCst);
    }
}

/// A handle on either the wall clock or a shared virtual clock.
///
/// Cheap to clone; all clones of a virtual handle observe (and
/// advance) the same timeline.
#[derive(Debug, Clone, Default)]
pub struct Clock(Inner);

#[derive(Debug, Clone, Default)]
enum Inner {
    #[default]
    Wall,
    Virtual(Arc<VirtualClock>),
}

impl Clock {
    /// The real, monotonic system clock. `sleep` parks the thread.
    pub fn wall() -> Clock {
        Clock(Inner::Wall)
    }

    /// A handle on the given shared virtual clock. `sleep` advances
    /// the clock and returns immediately.
    pub fn virtual_at(clock: Arc<VirtualClock>) -> Clock {
        Clock(Inner::Virtual(clock))
    }

    /// A fresh private virtual clock (convenience for unit tests that
    /// only need one handle).
    pub fn fresh_virtual() -> Clock {
        Clock::virtual_at(VirtualClock::new())
    }

    /// True if this handle is virtual (used by layers that must avoid
    /// real blocking operations under simulation).
    pub fn is_virtual(&self) -> bool {
        matches!(self.0, Inner::Virtual(_))
    }

    /// The current time on this clock's timeline.
    pub fn now(&self) -> Tick {
        match &self.0 {
            Inner::Wall => {
                // One process-wide epoch so wall ticks compare across
                // handles, exactly like Instants do.
                static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
                let epoch = *EPOCH.get_or_init(Instant::now);
                let ns = u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
                Tick(ns)
            }
            Inner::Virtual(v) => v.now(),
        }
    }

    /// Sleep for `dur`: park the thread (wall) or advance simulated
    /// time and return immediately (virtual).
    pub fn sleep(&self, dur: Duration) {
        match &self.0 {
            Inner::Wall => std::thread::sleep(dur),
            Inner::Virtual(v) => v.advance(dur),
        }
    }

    /// Time elapsed since `earlier` on this clock.
    pub fn elapsed_since(&self, earlier: Tick) -> Duration {
        self.now().duration_since(earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_sleep_advances_without_blocking() {
        let clock = Clock::fresh_virtual();
        let t0 = clock.now();
        let wall_start = Instant::now();
        clock.sleep(Duration::from_secs(3600));
        assert!(wall_start.elapsed() < Duration::from_secs(1));
        assert_eq!(clock.elapsed_since(t0), Duration::from_secs(3600));
    }

    #[test]
    fn virtual_handles_share_a_timeline() {
        let shared = VirtualClock::new();
        let a = Clock::virtual_at(shared.clone());
        let b = Clock::virtual_at(shared);
        let t0 = b.now();
        a.sleep(Duration::from_millis(250));
        assert_eq!(b.elapsed_since(t0), Duration::from_millis(250));
    }

    #[test]
    fn wall_clock_is_monotone() {
        let clock = Clock::wall();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
        assert!(!clock.is_virtual());
    }

    #[test]
    fn tick_arithmetic_saturates() {
        let t = Tick(10);
        assert_eq!(t.duration_since(Tick(50)), Duration::ZERO);
        assert_eq!(Tick(u64::MAX).after(Duration::from_secs(1)), Tick(u64::MAX));
    }
}

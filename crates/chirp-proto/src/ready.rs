//! The readiness seam: how an event-driven server core watches a
//! [`Transport`](crate::transport::Transport) without knowing what it
//! is made of.
//!
//! A nonblocking reactor needs to learn "this stream has bytes to
//! read" / "this stream can accept bytes again" without blocking in
//! `read`/`write`. For OS sockets the kernel provides that through
//! `epoll`; for the in-memory network there is no kernel, so the
//! stream itself must tell us. This module defines the portable half
//! of that contract:
//!
//! * A transport that is backed by a file descriptor exposes it via
//!   [`Transport::readiness_fd`](crate::transport::Transport::readiness_fd)
//!   and the poller registers the fd with the OS.
//! * A transport that is a pure in-process object (a
//!   [`MemStream`](crate::transport::MemStream)) instead accepts a
//!   [`ReadyWatcher`] via
//!   [`Transport::register_ready`](crate::transport::Transport::register_ready)
//!   and invokes it whenever its readiness *changes*: bytes appended,
//!   buffer space freed, either direction closed, and once at
//!   registration with the current state.
//!
//! Both paths feed the same per-connection state machine, which is how
//! the simulation harness drives the production reactor
//! deterministically: the only nondeterminism a `MemStream` adds is
//! the order of notifications, and the reactor treats notifications as
//! level-triggered hints (it always reads to `WouldBlock`), so
//! coalesced or duplicated wakeups cannot change observable behavior.

use std::sync::Arc;

/// Identifies one registered stream inside a poller. Chosen by the
/// registering side; echoed back verbatim in every notification.
pub type Token = usize;

/// The callback half of the readiness contract (see the module docs).
///
/// Implementations must be cheap and must not call back into the
/// transport that is notifying them: a watcher typically just inserts
/// the token into a ready-set and kicks the poller awake.
pub trait ReadyWatcher: Send + Sync {
    /// `token` may have become readable and/or writable. Spurious
    /// notifications are allowed; missed *changes* are not.
    fn notify(&self, token: Token, readable: bool, writable: bool);
}

/// A shared handle to a watcher, as stored by transports.
pub type Watcher = Arc<dyn ReadyWatcher>;

//! Vendored, offline cryptographic primitives for challenge–response
//! authentication: SHA-256, HMAC-SHA256, and hex codecs.
//!
//! The original system authenticated with GSI certificates and
//! Kerberos tickets — heavyweight external infrastructures whose
//! *property under test* is that a cryptographic handshake yields a
//! free-form subject name the ACL layer then reasons about. This
//! module carries that property with zero dependencies: servers
//! register keyed credentials, issue random nonce challenges, and
//! verify keyed MACs over a domain-separated transcript, so the
//! secret never crosses the wire and a recorded handshake cannot be
//! replayed. HMAC-SHA256 is used rather than a vendored ed25519
//! because the fleet-scale auth-storm scenarios run thousands of
//! handshakes per test in debug builds, where an unoptimized
//! field-arithmetic signature verify would dominate the suite's
//! runtime without strengthening any property the tests assert.
//!
//! The SHA-256 core follows FIPS 180-4 and is checked against the
//! standard test vectors; HMAC follows RFC 2104 / FIPS 198-1 and is
//! checked against the RFC 4231 vectors.

/// Output size of SHA-256 in bytes.
pub const DIGEST_LEN: usize = 32;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes buffered toward the next 64-byte block.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    total: u64,
}

impl Default for Sha256 {
    fn default() -> Sha256 {
        Sha256::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 {
            state: H0,
            buf: [0; 64],
            buf_len: 0,
            total: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finish and produce the digest.
    pub fn finish(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// SHA-256 of `data` in one call.
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finish()
}

/// HMAC-SHA256 per RFC 2104: keys longer than the 64-byte block are
/// hashed down, shorter ones zero-padded.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut k = [0u8; 64];
    if key.len() > 64 {
        k[..DIGEST_LEN].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finish();
    let mut outer = Sha256::new();
    let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finish()
}

/// Lowercase hex encoding.
pub fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decode lowercase/uppercase hex; `None` on odd length or non-hex.
pub fn unhex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    s.as_bytes()
        .chunks_exact(2)
        .map(|pair| {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            Some((hi * 16 + lo) as u8)
        })
        .collect()
}

/// Compare byte strings without early exit, so a listener on the
/// path cannot time-probe credential bytes.
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (&x, &y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Public identifier of a secret key: the first 8 bytes of its
/// SHA-256, hex-encoded. Clients present it so the server can select
/// the registered credential without a trial pass over the whole key
/// ring; rotation replaces the key bytes and thereby the id.
pub fn key_fingerprint(key: &[u8]) -> String {
    hex(&sha256(key)[..8])
}

/// Domain-separated transcript for one authentication handshake:
/// binds the method label, the claimed name, the key id, and the
/// server's nonce, so a MAC produced for one (method, identity,
/// challenge) triple verifies for no other.
fn auth_transcript(method: &str, name: &str, key_id: &str, nonce_hex: &str) -> Vec<u8> {
    let mut t = Vec::with_capacity(32 + method.len() + name.len() + key_id.len() + nonce_hex.len());
    t.extend_from_slice(b"chirp-auth-v1\n");
    for part in [method, name, key_id, nonce_hex] {
        t.extend_from_slice(part.as_bytes());
        t.push(b'\n');
    }
    t
}

/// The hex MAC a client presents (and a server expects) for one
/// challenge. Both sides call this; the transcript layout is private.
pub fn auth_mac(key: &[u8], method: &str, name: &str, key_id: &str, nonce_hex: &str) -> String {
    hex(&hmac_sha256(
        key,
        &auth_transcript(method, name, key_id, nonce_hex),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / NIST CAVS vectors.
    #[test]
    fn sha256_standard_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // One million 'a's exercises the multi-block streaming path.
        let mut h = Sha256::new();
        for _ in 0..1000 {
            h.update(&[b'a'; 1000]);
        }
        assert_eq!(
            hex(&h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha256_incremental_matches_oneshot() {
        let data: Vec<u8> = (0..257u16).map(|i| i as u8).collect();
        for split in [0, 1, 55, 56, 63, 64, 65, 128, 256] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), sha256(&data), "split at {split}");
        }
    }

    // RFC 4231 test cases 1, 2, and 6 (oversized key).
    #[test]
    fn hmac_rfc4231_vectors() {
        assert_eq!(
            hex(&hmac_sha256(&[0x0b; 20], b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        assert_eq!(
            hex(&hmac_sha256(
                &[0xaa; 131],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn hex_round_trips() {
        assert_eq!(hex(&[]), "");
        assert_eq!(hex(&[0x00, 0xff, 0x1a]), "00ff1a");
        assert_eq!(unhex("00ff1a"), Some(vec![0x00, 0xff, 0x1a]));
        assert_eq!(unhex("00FF1A"), Some(vec![0x00, 0xff, 0x1a]));
        assert_eq!(unhex("0"), None);
        assert_eq!(unhex("zz"), None);
    }

    #[test]
    fn constant_time_eq_basics() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"ab"));
        assert!(constant_time_eq(b"", b""));
    }

    #[test]
    fn auth_mac_binds_every_transcript_field() {
        let base = auth_mac(b"k", "globus", "/O=ND/CN=a", "deadbeef", "0102");
        assert_eq!(
            base,
            auth_mac(b"k", "globus", "/O=ND/CN=a", "deadbeef", "0102")
        );
        for other in [
            auth_mac(b"K", "globus", "/O=ND/CN=a", "deadbeef", "0102"),
            auth_mac(b"k", "kerberos", "/O=ND/CN=a", "deadbeef", "0102"),
            auth_mac(b"k", "globus", "/O=ND/CN=b", "deadbeef", "0102"),
            auth_mac(b"k", "globus", "/O=ND/CN=a", "deadbeee", "0102"),
            auth_mac(b"k", "globus", "/O=ND/CN=a", "deadbeef", "0103"),
        ] {
            assert_ne!(base, other);
        }
        // Field boundaries are framed, not concatenated: moving a
        // byte across a boundary changes the MAC.
        assert_ne!(
            auth_mac(b"k", "ab", "c", "id", "n"),
            auth_mac(b"k", "a", "bc", "id", "n")
        );
    }

    #[test]
    fn fingerprint_is_stable_and_key_sensitive() {
        let f = key_fingerprint(b"alice-secret");
        assert_eq!(f.len(), 16);
        assert_eq!(f, key_fingerprint(b"alice-secret"));
        assert_ne!(f, key_fingerprint(b"alice-secret2"));
    }
}

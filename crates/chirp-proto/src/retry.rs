//! The recovery policy shared by every layer that talks to a server.
//!
//! The paper's resource layer *exposes* failure — a Chirp disconnect
//! closes every open file — and leaves masking it to the adapter and
//! the abstractions (§4, §6). [`RetryPolicy`] is the single knob all
//! of them share: how many times to try again, how long to wait
//! between tries, and how much total time the caller is willing to
//! burn before the failure surfaces.
//!
//! Two properties matter for testing and production alike:
//!
//! * **Determinism.** Backoff jitter comes from a seeded SplitMix64
//!   stream keyed by `(seed, attempt)`, never from the wall clock, so
//!   a chaos run with a fixed seed replays the exact same schedule.
//! * **Classification.** Only *transport* failures (connect errors,
//!   timeouts, mid-stream disconnects, transient server busy) are
//!   retried. Well-formed protocol answers — ACL denial, missing
//!   files, bad arguments — are final the first time; retrying them
//!   would only hide real errors and hammer the server. The mapping
//!   is total over [`ChirpError`]: see [`ChirpError::classify`].

use std::time::Duration;

use crate::clock::{Clock, Tick};
use crate::error::{ChirpError, ErrorClass};

/// Recovery policy: bounded retries with deterministic exponential
/// backoff, optional jitter, and an optional total-time deadline.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts after the first failure; 0 disables recovery.
    pub max_retries: u32,
    /// Delay before the first retry; doubles each attempt.
    pub initial_backoff: Duration,
    /// Upper bound on any single delay.
    pub max_backoff: Duration,
    /// Upper bound on the *total* time spent across all attempts,
    /// measured from the first failure. `None` leaves only the retry
    /// count as the limit.
    pub deadline: Option<Duration>,
    /// Fraction of each backoff randomized (`0.0` = none, `0.5` =
    /// delays land in `[0.5×, 1.5×]` of the base). Clamped to `[0, 1]`.
    pub jitter: f64,
    /// Seeds the jitter stream; same seed, same schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(5),
            deadline: None,
            jitter: 0.25,
            seed: 0x7355_0001,
        }
    }
}

impl RetryPolicy {
    /// No recovery at all: every transport error surfaces immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            initial_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            deadline: None,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Replace the jitter seed (builder style, for reproducible runs).
    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }

    /// Cap the total time spent retrying.
    pub fn with_deadline(mut self, deadline: Duration) -> RetryPolicy {
        self.deadline = Some(deadline);
        self
    }

    /// The un-jittered backoff before retry number `attempt` (0-based):
    /// exponential from [`initial_backoff`](RetryPolicy::initial_backoff),
    /// saturating at [`max_backoff`](RetryPolicy::max_backoff).
    /// Monotone non-decreasing in `attempt`.
    pub fn backoff_base(&self, attempt: u32) -> Duration {
        let exp = self.initial_backoff.saturating_mul(1u32 << attempt.min(16));
        exp.min(self.max_backoff)
    }

    /// The actual delay before retry number `attempt`: the base with
    /// the policy's jitter fraction applied from the seeded stream.
    /// Deterministic — same `(policy, attempt)`, same answer — and
    /// always within `[(1 - jitter) × base, (1 + jitter) × base]`,
    /// still capped at [`max_backoff`](RetryPolicy::max_backoff).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let base = self.backoff_base(attempt);
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 || base.is_zero() {
            return base;
        }
        // 53 uniform bits in [0, 1) keyed by (seed, attempt).
        let draw = splitmix64(self.seed ^ (u64::from(attempt) << 32)) >> 11;
        let unit = draw as f64 * (1.0 / (1u64 << 53) as f64);
        let scale = 1.0 - jitter + 2.0 * jitter * unit;
        Duration::from_secs_f64(base.as_secs_f64() * scale).min(self.max_backoff)
    }

    /// The full delay schedule this policy grants, deadline-capped: the
    /// cumulative sum of granted delays never exceeds
    /// [`deadline`](RetryPolicy::deadline). This is the *pure* view of
    /// the policy (no clock reads) used by property tests; the runtime
    /// equivalent, which also charges operation time against the
    /// deadline, is [`RetryPolicy::begin`].
    pub fn schedule(&self) -> Vec<Duration> {
        let mut out = Vec::with_capacity(self.max_retries as usize);
        let mut total = Duration::ZERO;
        for attempt in 0..self.max_retries {
            let delay = self.backoff(attempt);
            if let Some(deadline) = self.deadline {
                if total + delay > deadline {
                    break;
                }
            }
            total += delay;
            out.push(delay);
        }
        out
    }

    /// Start tracking one operation's recovery attempts against the
    /// wall clock.
    pub fn begin(&self) -> RetryState {
        self.begin_with_clock(Clock::wall())
    }

    /// Start tracking one operation's recovery attempts, charging
    /// elapsed time to `clock`. Under a virtual clock the deadline
    /// verdict is a pure function of the simulated timeline, so retry
    /// tests are exact on loaded CI machines.
    pub fn begin_with_clock(&self, clock: Clock) -> RetryState {
        RetryState {
            policy: *self,
            started: clock.now(),
            clock,
            attempt: 0,
        }
    }
}

/// Live retry bookkeeping for one logical operation: counts attempts
/// and charges elapsed time on its [`Clock`] (including the failed
/// operations themselves) against the policy deadline.
#[derive(Debug, Clone)]
pub struct RetryState {
    policy: RetryPolicy,
    clock: Clock,
    started: Tick,
    attempt: u32,
}

impl RetryState {
    /// Retries granted so far.
    pub fn retries_used(&self) -> u32 {
        self.attempt
    }

    /// Decide what to do about `err`: `Some(delay)` means sleep for
    /// `delay` and try again; `None` means give up and surface the
    /// error. Fatal errors are never granted a retry; retriable ones
    /// are granted until the attempt cap or the deadline runs out.
    pub fn next_delay(&mut self, err: ChirpError) -> Option<Duration> {
        if err.classify() == ErrorClass::Fatal {
            return None;
        }
        if self.attempt >= self.policy.max_retries {
            return None;
        }
        let delay = self.policy.backoff(self.attempt);
        if let Some(deadline) = self.policy.deadline {
            if self.clock.elapsed_since(self.started) + delay > deadline {
                return None;
            }
        }
        self.attempt += 1;
        Some(delay)
    }

    /// The clock this state charges elapsed time to (layers that honor
    /// a granted delay sleep on the same clock).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }
}

/// SplitMix64 — one multiply-xor-shift round; enough to decorrelate
/// the per-attempt jitter draws without pulling in an RNG dependency.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_backoff_grows_and_saturates() {
        let p = RetryPolicy {
            max_retries: 10,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(40));
        assert_eq!(p.backoff(5), Duration::from_millis(100));
        assert_eq!(p.backoff(30), Duration::from_millis(100));
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            max_retries: 8,
            initial_backoff: Duration::from_millis(40),
            max_backoff: Duration::from_secs(1),
            jitter: 0.5,
            seed: 99,
            ..RetryPolicy::default()
        };
        for attempt in 0..8 {
            let a = p.backoff(attempt);
            let b = p.backoff(attempt);
            assert_eq!(a, b, "same (seed, attempt) must give same delay");
            let base = p.backoff_base(attempt).as_secs_f64();
            let got = a.as_secs_f64();
            assert!(got >= base * 0.5 - 1e-9 && got <= base * 1.5 + 1e-9);
        }
    }

    #[test]
    fn schedule_respects_deadline() {
        let p = RetryPolicy {
            max_retries: 100,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(10),
            deadline: Some(Duration::from_millis(35)),
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        // 10 + 10 + 10 fits; a fourth delay would exceed 35 ms.
        assert_eq!(p.schedule().len(), 3);
    }

    #[test]
    fn state_never_retries_fatal_errors() {
        let mut s = RetryPolicy::default().begin();
        assert_eq!(s.next_delay(ChirpError::NotAuthorized), None);
        assert_eq!(s.next_delay(ChirpError::NotFound), None);
        assert_eq!(s.retries_used(), 0);
    }

    #[test]
    fn state_caps_retriable_attempts() {
        let p = RetryPolicy {
            max_retries: 2,
            initial_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut s = p.begin();
        assert!(s.next_delay(ChirpError::Disconnected).is_some());
        assert!(s.next_delay(ChirpError::Timeout).is_some());
        assert_eq!(s.next_delay(ChirpError::Disconnected), None);
        assert_eq!(s.retries_used(), 2);
    }

    #[test]
    fn none_policy_grants_nothing() {
        let mut s = RetryPolicy::none().begin();
        assert_eq!(s.next_delay(ChirpError::Disconnected), None);
    }

    #[test]
    fn deadline_on_virtual_clock_is_exact() {
        let clock = Clock::fresh_virtual();
        let p = RetryPolicy {
            max_retries: 10,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(10),
            deadline: Some(Duration::from_millis(35)),
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut s = p.begin_with_clock(clock.clone());
        let mut granted = 0;
        while let Some(d) = s.next_delay(ChirpError::Timeout) {
            clock.sleep(d);
            granted += 1;
        }
        // 10 + 10 + 10 ms of simulated sleeping fits the 35 ms
        // deadline; the fourth delay would land at 40 ms. Exact on any
        // machine because no real time is ever consulted.
        assert_eq!(granted, 3);
        assert_eq!(s.retries_used(), 3);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn policies() -> impl Strategy<Value = RetryPolicy> {
            (
                0u32..40,
                0u64..200,
                0u64..2_000,
                (any::<bool>(), 0u64..500),
                0u32..101,
                any::<u64>(),
            )
                .prop_map(
                    |(retries, init, max, (with_deadline, deadline), jitter_pct, seed)| {
                        RetryPolicy {
                            max_retries: retries,
                            initial_backoff: Duration::from_millis(init),
                            max_backoff: Duration::from_millis(max),
                            deadline: with_deadline.then(|| Duration::from_millis(deadline)),
                            jitter: f64::from(jitter_pct) / 100.0,
                            seed,
                        }
                    },
                )
        }

        proptest! {
            // The un-jittered schedule is monotone non-decreasing and
            // never exceeds the per-delay cap.
            #[test]
            fn base_backoff_is_monotone_and_capped(p in policies(), a in 0u32..60) {
                prop_assert!(p.backoff_base(a) <= p.backoff_base(a + 1));
                prop_assert!(p.backoff_base(a) <= p.max_backoff);
            }

            // Jitter stays inside its advertised envelope and below
            // the per-delay cap, and draws are reproducible.
            #[test]
            fn jittered_backoff_stays_in_envelope(p in policies(), a in 0u32..60) {
                let base = p.backoff_base(a).as_secs_f64();
                let j = p.jitter.clamp(0.0, 1.0);
                let got = p.backoff(a);
                prop_assert_eq!(got, p.backoff(a));
                prop_assert!(got <= p.max_backoff);
                let secs = got.as_secs_f64();
                prop_assert!(secs >= base * (1.0 - j) - 1e-9);
                prop_assert!(secs <= base * (1.0 + j) + 1e-9);
            }

            // The granted schedule is deadline-capped: its sum never
            // exceeds the deadline, and without one the length is
            // exactly the retry budget.
            #[test]
            fn schedule_is_deadline_capped(p in policies()) {
                let sched = p.schedule();
                prop_assert!(sched.len() <= p.max_retries as usize);
                match p.deadline {
                    Some(dl) => {
                        let total: Duration = sched.iter().sum();
                        prop_assert!(total <= dl);
                    }
                    None => prop_assert_eq!(sched.len(), p.max_retries as usize),
                }
            }

            // Every protocol error maps to exactly one class, the
            // policy honors it (fatal errors are never granted a
            // delay, retriable ones are until the budget runs out),
            // and the retriable set is precisely the transport set.
            // On a virtual clock zero time has elapsed when the first
            // failure arrives, so the deadline verdict is exact — no
            // fuzz margin for a loaded CI machine's real clock.
            #[test]
            fn classification_drives_retry_decisions(
                p in policies(),
                idx in 0..ChirpError::ALL.len(),
            ) {
                let err = ChirpError::ALL[idx];
                let mut state = p.begin_with_clock(Clock::fresh_virtual());
                let granted = state.next_delay(err);
                match err.classify() {
                    ErrorClass::Fatal => prop_assert!(granted.is_none(), "{err:?}"),
                    ErrorClass::Retriable if p.max_retries == 0 => {
                        prop_assert!(granted.is_none(), "{err:?}");
                    }
                    ErrorClass::Retriable => match p.deadline {
                        Some(dl) => prop_assert_eq!(granted.is_some(), p.backoff(0) <= dl),
                        None => prop_assert!(granted.is_some()),
                    },
                }
                let transport = matches!(
                    err,
                    ChirpError::Disconnected | ChirpError::Timeout | ChirpError::Busy
                );
                prop_assert_eq!(err.classify() == ErrorClass::Retriable, transport);
            }
        }
    }
}

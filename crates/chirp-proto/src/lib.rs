//! The Chirp wire protocol.
//!
//! Chirp is a Unix-like remote I/O protocol carried over a single TCP
//! connection: the client authenticates, then issues remote procedure
//! calls that correspond closely to Unix (`open`, `pread`, `pwrite`,
//! `stat`, `rename`, ...). All file data travels on the same connection
//! as control traffic so the TCP window stays open, in contrast to
//! FTP-style split control/data designs.
//!
//! Each request is one escaped text line, optionally followed by a raw
//! binary payload whose length is named on the line. Each response is a
//! status line (a non-negative result value or a negative error code),
//! optionally followed by result words or a raw payload.
//!
//! This crate contains only the protocol: message types, encoding and
//! decoding, error codes, framing helpers, and the checksum used by the
//! `CHECKSUM` RPC. The server lives in `chirp-server`, the client in
//! `chirp-client`.

#![warn(missing_docs)]

pub mod checksum;
pub mod clock;
pub mod crypto;
pub mod error;
pub mod escape;
pub mod flags;
pub mod message;
pub mod persist;
pub mod pipeline;
pub mod ready;
pub mod retry;
pub mod stat;
#[doc(hidden)]
pub mod testutil;
pub mod transport;
pub mod wire;

pub use checksum::crc64;
pub use clock::{Clock, Tick, VirtualClock};
pub use error::{ChirpError, ChirpResult, ErrorClass};
pub use flags::OpenFlags;
pub use message::Request;
pub use persist::{CrashPoint, DurabilityPoint, Persist, Persistence, WriteFate};
pub use pipeline::{PipelinedConn, Reply, ReplyShape, DEFAULT_PIPELINE_DEPTH};
pub use ready::{ReadyWatcher, Token, Watcher};
pub use retry::{RetryPolicy, RetryState};
pub use stat::{StatBuf, StatFs};
pub use transport::{Dial, Dialer, Listener, MemListener, MemNet, MemStream, Transport};

/// Maximum length of a single request or response line, in bytes.
///
/// Lines beyond this are a protocol violation; both sides drop the
/// connection rather than buffer unboundedly.
pub const MAX_LINE: usize = 64 * 1024;

/// Maximum size of a single binary payload (one `pwrite`/`pread` body or
/// one `putfile`/`getfile` stream chunk).
pub const MAX_PAYLOAD: usize = 64 * 1024 * 1024;

/// Protocol version announced in catalog reports.
pub const PROTOCOL_VERSION: u32 = 1;

/// Default TCP port for Chirp file servers (the historical default).
pub const DEFAULT_PORT: u16 = 9094;

//! File attribute structures and their wire encodings.

use crate::error::ChirpError;

/// File type reported by `stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileType {
    /// A regular file.
    File,
    /// A directory.
    Dir,
    /// Anything else (symlink, device, ...); the abstractions treat
    /// these as opaque.
    Other,
}

impl FileType {
    fn as_word(self) -> &'static str {
        match self {
            FileType::File => "f",
            FileType::Dir => "d",
            FileType::Other => "o",
        }
    }

    fn from_word(w: &str) -> Option<FileType> {
        match w {
            "f" => Some(FileType::File),
            "d" => Some(FileType::Dir),
            "o" => Some(FileType::Other),
            _ => None,
        }
    }
}

/// The result of a `STAT`/`FSTAT` RPC.
///
/// The adapter uses `(device, inode)` identity to detect that a file
/// was replaced while it was disconnected, turning the re-open into a
/// "stale file handle" error exactly as NFS would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatBuf {
    /// Server-local device number.
    pub device: u64,
    /// Server-local inode number.
    pub inode: u64,
    /// File type.
    pub file_type: FileType,
    /// Permission bits as stored on the server's backing filesystem.
    pub mode: u32,
    /// Link count.
    pub nlink: u64,
    /// Size in bytes.
    pub size: u64,
    /// Modification time, seconds since the epoch.
    pub mtime: u64,
}

impl StatBuf {
    /// True if this entry is a directory.
    pub fn is_dir(&self) -> bool {
        self.file_type == FileType::Dir
    }

    /// True if this entry is a regular file.
    pub fn is_file(&self) -> bool {
        self.file_type == FileType::File
    }

    /// Encode as response words (without the leading status code).
    pub fn to_words(&self) -> String {
        format!(
            "{} {} {} {} {} {} {}",
            self.device,
            self.inode,
            self.file_type.as_word(),
            self.mode,
            self.nlink,
            self.size,
            self.mtime
        )
    }

    /// Decode from the words following a successful status code.
    pub fn from_words(words: &[&str]) -> Result<StatBuf, ChirpError> {
        if words.len() != 7 {
            return Err(ChirpError::InvalidRequest);
        }
        let num = |w: &str| w.parse::<u64>().map_err(|_| ChirpError::InvalidRequest);
        Ok(StatBuf {
            device: num(words[0])?,
            inode: num(words[1])?,
            file_type: FileType::from_word(words[2]).ok_or(ChirpError::InvalidRequest)?,
            mode: num(words[3])? as u32,
            nlink: num(words[4])?,
            size: num(words[5])?,
            mtime: num(words[6])?,
        })
    }
}

/// The result of a `STATFS` RPC: storage totals for catalog reports and
/// space-aware abstractions (the GEMS replicator budgets against this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatFs {
    /// Total bytes of storage under the server root.
    pub total_bytes: u64,
    /// Bytes still free.
    pub free_bytes: u64,
}

impl StatFs {
    /// Encode as response words.
    pub fn to_words(&self) -> String {
        format!("{} {}", self.total_bytes, self.free_bytes)
    }

    /// Decode from response words.
    pub fn from_words(words: &[&str]) -> Result<StatFs, ChirpError> {
        if words.len() != 2 {
            return Err(ChirpError::InvalidRequest);
        }
        let num = |w: &str| w.parse::<u64>().map_err(|_| ChirpError::InvalidRequest);
        Ok(StatFs {
            total_bytes: num(words[0])?,
            free_bytes: num(words[1])?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn statbuf_round_trip() {
        let s = StatBuf {
            device: 3,
            inode: 1234567,
            file_type: FileType::File,
            mode: 0o644,
            nlink: 1,
            size: 4096,
            mtime: 1_120_000_000,
        };
        let words = s.to_words();
        let parts: Vec<&str> = words.split(' ').collect();
        assert_eq!(StatBuf::from_words(&parts).unwrap(), s);
    }

    #[test]
    fn statbuf_rejects_short_input() {
        assert!(StatBuf::from_words(&["1", "2", "f"]).is_err());
    }

    #[test]
    fn statbuf_rejects_bad_type() {
        let parts = ["1", "2", "x", "420", "1", "0", "0"];
        assert!(StatBuf::from_words(&parts).is_err());
    }

    #[test]
    fn statfs_round_trip() {
        let s = StatFs {
            total_bytes: 250_000_000_000,
            free_bytes: 100_000_000_000,
        };
        let words = s.to_words();
        let parts: Vec<&str> = words.split(' ').collect();
        assert_eq!(StatFs::from_words(&parts).unwrap(), s);
    }

    proptest! {
        #[test]
        fn statbuf_round_trip_any(
            device in any::<u64>(),
            inode in any::<u64>(),
            kind in 0..3u8,
            mode in any::<u32>(),
            nlink in any::<u64>(),
            size in any::<u64>(),
            mtime in any::<u64>(),
        ) {
            let s = StatBuf {
                device,
                inode,
                file_type: match kind { 0 => FileType::File, 1 => FileType::Dir, _ => FileType::Other },
                mode,
                nlink,
                size,
                mtime,
            };
            let words = s.to_words();
            let parts: Vec<&str> = words.split(' ').collect();
            prop_assert_eq!(StatBuf::from_words(&parts).unwrap(), s);
        }
    }
}

//! CRC-64 (ECMA-182) used by the `CHECKSUM` RPC.
//!
//! GEMS's auditor verifies replica integrity by comparing server-side
//! checksums instead of pulling whole files across the network. The
//! original system used MD5; any collision-resistant-enough digest
//! serves the preservation workload, and CRC-64 keeps this crate
//! dependency-free.

const POLY: u64 = 0x42F0_E1EB_A9EA_3693;

/// Lazily built 256-entry lookup table.
fn table() -> &'static [u64; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u64; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = (i as u64) << 56;
            for _ in 0..8 {
                crc = if crc & (1 << 63) != 0 {
                    (crc << 1) ^ POLY
                } else {
                    crc << 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// Streaming CRC-64 state, for hashing a file chunk by chunk.
#[derive(Debug, Clone, Copy)]
pub struct Crc64 {
    state: u64,
}

impl Crc64 {
    /// A fresh hasher.
    pub fn new() -> Crc64 {
        Crc64 { state: 0 }
    }

    /// Feed bytes into the hash.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            let idx = ((self.state >> 56) as u8 ^ b) as usize;
            self.state = (self.state << 8) ^ t[idx];
        }
    }

    /// Final digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Crc64 {
    fn default() -> Crc64 {
        Crc64::new()
    }
}

/// One-shot CRC-64 of a byte slice.
pub fn crc64(data: &[u8]) -> u64 {
    let mut c = Crc64::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input_hashes_to_zero() {
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn known_vector() {
        // ECMA-182 check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x6C40_DF5F_0B49_7347);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let a = crc64(b"the quick brown fox");
        let b = crc64(b"the quick brown foy");
        assert_ne!(a, b);
    }

    proptest! {
        #[test]
        fn streaming_matches_one_shot(
            data in proptest::collection::vec(any::<u8>(), 0..1024),
            split in 0usize..1024,
        ) {
            let split = split.min(data.len());
            let mut c = Crc64::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            prop_assert_eq!(c.finish(), crc64(&data));
        }
    }
}

//! The durability seam: every point where the system commits state to
//! stable storage announces itself here before mutating anything.
//!
//! The paper's §5 failure-coherence argument is an *ordering* argument:
//! stub-then-data on create, data-then-stub on delete, so that a crash
//! between the two steps leaves a state users can survive (a dangling
//! stub answers "file not found") rather than one they cannot see
//! (unreferenced data). Arguments about orderings of durable writes
//! are only checkable if the durable writes are visible — this module
//! makes them visible.
//!
//! A [`Persist`] handle is threaded through the server handlers and the
//! client-side stub engine the same way [`Dialer`](crate::Dialer) and
//! [`Clock`](crate::Clock) are: production code carries a no-op handle
//! with zero overhead, while the simulation harness installs a
//! [`CrashPoint`] that journals every durability point and — in crash
//! mode — refuses all further durability after a chosen prefix,
//! simulating a process killed at exactly that point. Enumerating every
//! prefix of a run's journal enumerates every crash state the run could
//! have left on disk.
//!
//! The contract for instrumented code: call [`Persist::reached`]
//! **before** performing the mutation, and propagate an error without
//! mutating. A crashed process performs no further writes; code that
//! mutated first would let "dead" processes keep writing.

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One kind of durability point: a mutation about to reach stable
/// storage, at the granularity the crash-injection harness kills at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DurabilityPoint {
    /// A file is about to be created (a new directory entry).
    Create,
    /// File bytes are about to be written in place.
    Pwrite,
    /// An explicit flush of file bytes to stable storage.
    Fsync,
    /// A file is about to change length.
    Truncate,
    /// A directory entry is about to be atomically renamed.
    Rename,
    /// A directory entry is about to be removed.
    Unlink,
    /// A directory's entry list is about to be flushed.
    DirSync,
    /// Protocol step: a stub is about to become durable in the tree
    /// (create protocol step 2).
    StubWrite,
    /// Protocol step: a stub is about to leave the tree (delete
    /// protocol step 2, or explicit-failure cleanup of step 3).
    StubUnlink,
    /// Protocol step: a data file is about to be created on a file
    /// server (create protocol step 3).
    DataCreate,
    /// Protocol step: a data file is about to be removed from a file
    /// server (delete protocol step 1).
    DataUnlink,
}

impl DurabilityPoint {
    /// Stable lowercase name, used in journals and repro output.
    pub fn as_str(self) -> &'static str {
        match self {
            DurabilityPoint::Create => "create",
            DurabilityPoint::Pwrite => "pwrite",
            DurabilityPoint::Fsync => "fsync",
            DurabilityPoint::Truncate => "truncate",
            DurabilityPoint::Rename => "rename",
            DurabilityPoint::Unlink => "unlink",
            DurabilityPoint::DirSync => "dirsync",
            DurabilityPoint::StubWrite => "stub-write",
            DurabilityPoint::StubUnlink => "stub-unlink",
            DurabilityPoint::DataCreate => "data-create",
            DurabilityPoint::DataUnlink => "data-unlink",
        }
    }
}

impl fmt::Display for DurabilityPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How much of a write reaches stable storage when its durability
/// point fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFate {
    /// The full buffer becomes durable; proceed normally.
    Full,
    /// The process dies *mid-write*: exactly this strict prefix of the
    /// buffer reaches stable storage (a torn sector). The caller must
    /// persist the prefix and then fail with [`crash_error`] without
    /// mutating anything else — the rest of the buffer was lost with
    /// the process.
    Torn(usize),
}

/// An observer of durability points.
///
/// Implementations must be cheap: the hook sits on the hot write path.
/// Returning an error means "the process died here" — the caller must
/// not perform the mutation and must propagate the error.
pub trait Persistence: Send + Sync {
    /// A durability point is about to be committed for `path`.
    fn reached(&self, point: DurabilityPoint, path: &str) -> io::Result<()>;

    /// Like [`Persistence::reached`], for a write of `len` bytes whose
    /// durability can be *partial*: a crash injector may answer
    /// [`WriteFate::Torn`], instructing the caller to persist only a
    /// prefix before dying. The default forwards to `reached` — plain
    /// observers never tear writes.
    fn reached_write(
        &self,
        point: DurabilityPoint,
        path: &str,
        _len: usize,
    ) -> io::Result<WriteFate> {
        self.reached(point, path).map(|()| WriteFate::Full)
    }
}

/// A cloneable handle to an optional [`Persistence`] observer.
///
/// The default ([`Persist::none`]) is a no-op whose `reached` inlines
/// to a branch on a `None` — production builds pay one predictable
/// branch per durability point and nothing else.
#[derive(Clone, Default)]
pub struct Persist(Option<Arc<dyn Persistence>>);

impl Persist {
    /// The production handle: observe nothing, never fail.
    pub fn none() -> Persist {
        Persist(None)
    }

    /// A handle around a shared observer.
    pub fn from_arc(p: Arc<dyn Persistence>) -> Persist {
        Persist(Some(p))
    }

    /// Whether an observer is installed. Instrumented code may use this
    /// to skip work (an extra `stat`, a formatted path) that only
    /// exists to feed the observer.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Announce a durability point. An `Err` means the simulated
    /// process died here: do not mutate, propagate.
    #[inline]
    pub fn reached(&self, point: DurabilityPoint, path: &str) -> io::Result<()> {
        match &self.0 {
            None => Ok(()),
            Some(p) => p.reached(point, path),
        }
    }

    /// Announce a write of `len` bytes that the observer may tear (see
    /// [`WriteFate`]). Callers that can persist a prefix — sector-level
    /// writers — use this instead of [`Persist::reached`].
    #[inline]
    pub fn reached_write(
        &self,
        point: DurabilityPoint,
        path: &str,
        len: usize,
    ) -> io::Result<WriteFate> {
        match &self.0 {
            None => Ok(WriteFate::Full),
            Some(p) => p.reached_write(point, path, len),
        }
    }
}

impl fmt::Debug for Persist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Persist")
            .field(&if self.0.is_some() { "observed" } else { "none" })
            .finish()
    }
}

/// Message carried by the error a [`CrashPoint`] returns once its
/// budget is exhausted. Client-side callers can recognize it with
/// [`is_crash`]; across the wire it degrades to a generic I/O error,
/// which is exactly what a killed server looks like to its peer.
pub const CRASH_MSG: &str = "simulated crash: durability halted";

/// The error a dead simulated process returns from every durability
/// point.
pub fn crash_error() -> io::Error {
    io::Error::other(CRASH_MSG)
}

/// Whether an error is the injected crash (only reliable on the side
/// of the wire that hosts the injector).
pub fn is_crash(e: &io::Error) -> bool {
    e.get_ref()
        .map(|inner| inner.to_string().contains(CRASH_MSG))
        .unwrap_or(false)
        || e.to_string().contains(CRASH_MSG)
}

/// One recorded durability point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// What kind of point.
    pub point: DurabilityPoint,
    /// The path (protocol path, host path, or `fd<N>`) it applied to.
    pub path: String,
}

/// An append-only record of durability points: the raw material the
/// crash scheduler enumerates prefixes of.
#[derive(Default)]
pub struct Journal {
    entries: Mutex<Vec<JournalEntry>>,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Journal {
        Journal::default()
    }

    /// Snapshot of all recorded entries, in order.
    pub fn entries(&self) -> Vec<JournalEntry> {
        self.entries.lock().expect("journal lock").clone()
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("journal lock").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forget everything recorded so far.
    pub fn clear(&self) {
        self.entries.lock().expect("journal lock").clear();
    }

    fn push(&self, point: DurabilityPoint, path: &str) {
        self.entries
            .lock()
            .expect("journal lock")
            .push(JournalEntry {
                point,
                path: path.to_string(),
            });
    }
}

impl Persistence for Journal {
    fn reached(&self, point: DurabilityPoint, path: &str) -> io::Result<()> {
        self.push(point, path);
        Ok(())
    }
}

/// The crash injector: journal durability points while armed, and in
/// crash mode refuse every point past a budget — the simulated process
/// is dead and performs no further writes.
///
/// One `CrashPoint` is shared by every instrumented layer of a
/// simulated deployment (server handlers, the metadata filesystem, the
/// stub protocol), so its budget indexes a single global order of
/// durability points. Driving the same seeded workload with budget
/// `k` for every `k` below the full run's journal length enumerates
/// every state a crash could have left on disk.
#[derive(Default)]
pub struct CrashPoint {
    /// Points allowed before the process "dies"; `u64::MAX` = survive.
    budget: AtomicU64,
    /// Points announced since the last [`CrashPoint::arm`].
    count: AtomicU64,
    /// Whether the budget has been exceeded at least once.
    fired: AtomicBool,
    /// Whether points are currently counted and journaled at all.
    armed: AtomicBool,
    /// Partial-sector mode: when the budget lands on a tearable write,
    /// the firing call answers [`WriteFate::Torn`] instead of a plain
    /// crash, leaving a seeded strict prefix of the buffer on disk.
    torn: AtomicBool,
    /// Seed for the torn-prefix draw.
    torn_seed: AtomicU64,
    journal: Journal,
}

impl CrashPoint {
    /// A disarmed injector (everything passes, nothing is recorded)
    /// ready to be shared.
    pub fn new() -> Arc<CrashPoint> {
        Arc::new(CrashPoint::default())
    }

    /// Start counting: clear the journal and allow `budget` points
    /// before dying (`None` = journal everything, never die).
    pub fn arm(&self, budget: Option<u64>) {
        self.journal.clear();
        self.count.store(0, Ordering::SeqCst);
        self.fired.store(false, Ordering::SeqCst);
        self.torn.store(false, Ordering::SeqCst);
        self.budget
            .store(budget.unwrap_or(u64::MAX), Ordering::SeqCst);
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Like [`CrashPoint::arm`], in partial-sector mode: if the budget
    /// lands on a tearable write, the process dies *mid-write*, leaving
    /// a strict prefix of the buffer (drawn deterministically from
    /// `seed` and the point's index) on stable storage. A budget
    /// landing on a non-write point behaves exactly as under `arm`.
    pub fn arm_torn(&self, budget: Option<u64>, seed: u64) {
        self.arm(budget);
        self.torn_seed.store(seed, Ordering::SeqCst);
        self.torn.store(true, Ordering::SeqCst);
    }

    /// Stop counting; every point passes silently (setup, restart,
    /// and verification traffic must not consume budget).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Whether the budget was exceeded since the last arm.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    /// Durability points successfully committed since the last arm.
    pub fn points(&self) -> u64 {
        self.count
            .load(Ordering::SeqCst)
            .min(self.journal.len() as u64)
    }

    /// The journal of committed points since the last arm.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }
}

impl Persistence for CrashPoint {
    fn reached(&self, point: DurabilityPoint, path: &str) -> io::Result<()> {
        if !self.armed.load(Ordering::SeqCst) {
            return Ok(());
        }
        let budget = self.budget.load(Ordering::SeqCst);
        let n = self.count.fetch_add(1, Ordering::SeqCst);
        if n >= budget {
            self.fired.store(true, Ordering::SeqCst);
            return Err(crash_error());
        }
        self.journal.push(point, path);
        Ok(())
    }

    fn reached_write(
        &self,
        point: DurabilityPoint,
        path: &str,
        len: usize,
    ) -> io::Result<WriteFate> {
        if !self.armed.load(Ordering::SeqCst) {
            return Ok(WriteFate::Full);
        }
        let budget = self.budget.load(Ordering::SeqCst);
        let n = self.count.fetch_add(1, Ordering::SeqCst);
        if n >= budget {
            // Only the *firing* call tears (later points come from a
            // process that is already dead and writes nothing).
            let first = !self.fired.swap(true, Ordering::SeqCst);
            if first && self.torn.load(Ordering::SeqCst) && len > 0 {
                let seed = self.torn_seed.load(Ordering::SeqCst);
                let k = (splitmix64(seed ^ n) % len as u64) as usize;
                return Ok(WriteFate::Torn(k));
            }
            return Err(crash_error());
        }
        self.journal.push(point, path);
        Ok(WriteFate::Full)
    }
}

/// SplitMix64 — one multiply-xor-shift round, enough to decorrelate
/// per-point torn-prefix draws without an RNG dependency.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_always_passes() {
        let p = Persist::none();
        assert!(!p.is_enabled());
        for _ in 0..10 {
            p.reached(DurabilityPoint::Pwrite, "/x").unwrap();
        }
    }

    #[test]
    fn journal_records_in_order() {
        let j = Journal::new();
        j.reached(DurabilityPoint::StubWrite, "/a").unwrap();
        j.reached(DurabilityPoint::DataCreate, "/vol/a1").unwrap();
        let e = j.entries();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].point, DurabilityPoint::StubWrite);
        assert_eq!(e[1].path, "/vol/a1");
    }

    #[test]
    fn crash_point_dies_at_budget_and_stays_dead() {
        let c = CrashPoint::new();
        c.arm(Some(2));
        c.reached(DurabilityPoint::Create, "/a").unwrap();
        c.reached(DurabilityPoint::Pwrite, "/a").unwrap();
        assert!(!c.fired());
        let err = c.reached(DurabilityPoint::Fsync, "/a").unwrap_err();
        assert!(is_crash(&err), "unexpected error {err}");
        assert!(c.fired());
        // Dead is dead: later points fail too, and are not journaled.
        assert!(c.reached(DurabilityPoint::Unlink, "/b").is_err());
        assert_eq!(c.journal().len(), 2);
        assert_eq!(c.points(), 2);
    }

    #[test]
    fn torn_mode_tears_only_the_firing_write() {
        let c = CrashPoint::new();
        c.arm_torn(Some(1), 42);
        assert_eq!(
            c.reached_write(DurabilityPoint::Pwrite, "/a", 100).unwrap(),
            WriteFate::Full
        );
        let WriteFate::Torn(k) = c
            .reached_write(DurabilityPoint::StubWrite, "/b", 64)
            .unwrap()
        else {
            panic!("firing write in torn mode must tear");
        };
        assert!(k < 64, "torn prefix must be strict");
        // Dead is dead: later writes fail outright, untorn.
        assert!(c.reached_write(DurabilityPoint::Pwrite, "/c", 10).is_err());
        assert!(c.reached(DurabilityPoint::Unlink, "/d").is_err());
        // Same budget and seed draw the same prefix.
        c.arm_torn(Some(1), 42);
        c.reached_write(DurabilityPoint::Pwrite, "/a", 100).unwrap();
        assert_eq!(
            c.reached_write(DurabilityPoint::StubWrite, "/b", 64)
                .unwrap(),
            WriteFate::Torn(k)
        );
        // Plain arm never tears, and zero-length writes cannot tear.
        c.arm(Some(0));
        assert!(c.reached_write(DurabilityPoint::Pwrite, "/e", 10).is_err());
        c.arm_torn(Some(0), 7);
        assert!(c.reached_write(DurabilityPoint::Pwrite, "/f", 0).is_err());
    }

    #[test]
    fn disarmed_injector_neither_counts_nor_fails() {
        let c = CrashPoint::new();
        c.arm(Some(0));
        assert!(c.reached(DurabilityPoint::Create, "/a").is_err());
        c.disarm();
        assert!(c.reached(DurabilityPoint::Create, "/a").is_ok());
        c.arm(None);
        for _ in 0..100 {
            c.reached(DurabilityPoint::Pwrite, "/x").unwrap();
        }
        assert!(!c.fired());
        assert_eq!(c.journal().len(), 100);
    }
}

//! Open flags.
//!
//! A compact bitset mirroring the Unix `open(2)` flags the protocol
//! needs. The numeric encoding is part of the wire format.

/// Flags passed to the `OPEN` RPC.
///
/// The adapter's synchronous-write switch is implemented exactly as the
/// paper describes: it transparently ORs [`OpenFlags::SYNC`] into every
/// open — "another benefit of using recursive abstractions".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct OpenFlags(u32);

impl OpenFlags {
    /// Open for reading.
    pub const READ: OpenFlags = OpenFlags(1 << 0);
    /// Open for writing.
    pub const WRITE: OpenFlags = OpenFlags(1 << 1);
    /// Create the file if it does not exist.
    pub const CREATE: OpenFlags = OpenFlags(1 << 2);
    /// Truncate to zero length on open.
    pub const TRUNCATE: OpenFlags = OpenFlags(1 << 3);
    /// With `CREATE`: fail if the file already exists. This is the
    /// "exclusive open" the DSFS create protocol relies on to detect
    /// stub-name collisions.
    pub const EXCLUSIVE: OpenFlags = OpenFlags(1 << 4);
    /// Append on every write.
    pub const APPEND: OpenFlags = OpenFlags(1 << 5);
    /// Flush to stable storage before each write returns.
    pub const SYNC: OpenFlags = OpenFlags(1 << 6);

    /// The empty flag set.
    pub fn empty() -> OpenFlags {
        OpenFlags(0)
    }

    /// Read/write convenience combination.
    pub fn read_write() -> OpenFlags {
        OpenFlags::READ | OpenFlags::WRITE
    }

    /// Whether every bit of `other` is set in `self`.
    pub fn contains(self, other: OpenFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// The raw wire encoding.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Decode a wire value, rejecting unknown bits.
    pub fn from_bits(bits: u32) -> Option<OpenFlags> {
        if bits & !0x7f == 0 {
            Some(OpenFlags(bits))
        } else {
            None
        }
    }

    /// True if the flags request any form of mutation.
    pub fn writes(self) -> bool {
        self.contains(OpenFlags::WRITE)
            || self.contains(OpenFlags::CREATE)
            || self.contains(OpenFlags::TRUNCATE)
            || self.contains(OpenFlags::APPEND)
    }
}

impl std::ops::BitOr for OpenFlags {
    type Output = OpenFlags;
    fn bitor(self, rhs: OpenFlags) -> OpenFlags {
        OpenFlags(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for OpenFlags {
    fn bitor_assign(&mut self, rhs: OpenFlags) {
        self.0 |= rhs.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip() {
        let f = OpenFlags::READ | OpenFlags::CREATE | OpenFlags::SYNC;
        assert_eq!(OpenFlags::from_bits(f.bits()), Some(f));
    }

    #[test]
    fn unknown_bits_rejected() {
        assert_eq!(OpenFlags::from_bits(1 << 20), None);
    }

    #[test]
    fn writes_classification() {
        assert!(!OpenFlags::READ.writes());
        assert!(OpenFlags::WRITE.writes());
        assert!(OpenFlags::CREATE.writes());
        assert!((OpenFlags::READ | OpenFlags::APPEND).writes());
    }

    #[test]
    fn contains_checks_all_bits() {
        let rw = OpenFlags::read_write();
        assert!(rw.contains(OpenFlags::READ));
        assert!(rw.contains(OpenFlags::WRITE));
        assert!(!rw.contains(OpenFlags::READ | OpenFlags::SYNC));
    }
}

//! Request pipelining over one Chirp stream.
//!
//! Chirp replies carry no tags: the stream is strictly FIFO, so the
//! n-th reply always answers the n-th request. That means a client may
//! overlap round trips — write several requests, flush once, read the
//! replies in order — without any change to the server's one-RPC-at-a-
//! time semantics per message. [`PipelinedConn`] is that discipline as
//! a type: a bounded window of in-flight requests, each queued with the
//! [`ReplyShape`] its answer is framed with, settled strictly in order.
//!
//! # Failure semantics
//!
//! Error classification over a pipeline is *total*: every queued
//! request gets exactly one verdict.
//!
//! - A well-formed negative status line is a **settled** protocol
//!   verdict for the oldest in-flight request (error replies carry no
//!   body, so the stream stays framed and the pipeline continues).
//! - A transport failure — EOF, timeout, a garbled status line — means
//!   the framing is lost, so no later line can be attributed to any
//!   request. The failing request settles with the transport error and
//!   every request queued behind it settles as
//!   [`ChirpError::Disconnected`]: never answered, safe to retry on a
//!   fresh connection. Replies read *before* the failure remain
//!   settled; a retry layer must not replay them.

use std::collections::VecDeque;
use std::io::{BufRead, Write};

use crate::error::{ChirpError, ChirpResult};
use crate::message::Request;
use crate::wire::{self, StatusLine};

/// Default number of requests a pipelined client keeps in flight.
pub const DEFAULT_PIPELINE_DEPTH: usize = 8;

/// How a queued request's reply is framed on the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyShape {
    /// A status line only; the value and result words are the answer
    /// (`OPEN`, `CLOSE`, `PWRITE`, `STAT`, ...).
    Status,
    /// A status line whose non-negative value names the length of a
    /// raw payload that follows (`PREAD`, `GETDIR`, `GETDIRSTAT`,
    /// `STATMULTI`, ...).
    Body,
}

/// One settled successful reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// The decoded status line of a [`ReplyShape::Status`] request.
    Status(StatusLine),
    /// The status line and payload of a [`ReplyShape::Body`] request.
    Body(StatusLine, Vec<u8>),
}

impl Reply {
    /// The status line of either shape.
    pub fn status(&self) -> &StatusLine {
        match self {
            Reply::Status(st) | Reply::Body(st, _) => st,
        }
    }

    /// The payload, for [`Reply::Body`]; empty for a bare status.
    pub fn into_body(self) -> Vec<u8> {
        match self {
            Reply::Status(_) => Vec::new(),
            Reply::Body(_, body) => body,
        }
    }
}

/// A bounded FIFO window of in-flight requests over one stream.
///
/// Borrows the buffered halves of an existing connection; dropping the
/// pipeline returns the stream, which stays usable exactly when
/// [`PipelinedConn::is_dead`] is false and nothing is left in flight.
pub struct PipelinedConn<'a, R: BufRead, W: Write> {
    reader: &'a mut R,
    writer: &'a mut W,
    depth: usize,
    /// Reply shapes of requests written but not yet settled, FIFO.
    queue: VecDeque<ReplyShape>,
    /// First transport failure seen; fails everything after it fast.
    dead: Option<ChirpError>,
    /// Requests written since the last flush.
    unflushed: bool,
}

impl<'a, R: BufRead, W: Write> PipelinedConn<'a, R, W> {
    /// A pipeline of at most `depth` (clamped to at least 1) in-flight
    /// requests over `reader`/`writer`.
    pub fn new(reader: &'a mut R, writer: &'a mut W, depth: usize) -> PipelinedConn<'a, R, W> {
        PipelinedConn {
            reader,
            writer,
            depth: depth.max(1),
            queue: VecDeque::new(),
            dead: None,
            unflushed: false,
        }
    }

    /// The window size.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Requests written but not yet settled.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// True while another request fits in the window.
    pub fn has_room(&self) -> bool {
        self.queue.len() < self.depth
    }

    /// True once a transport failure has poisoned the stream.
    pub fn is_dead(&self) -> bool {
        self.dead.is_some()
    }

    fn fail(&mut self, e: ChirpError) -> ChirpError {
        if self.dead.is_none() {
            self.dead = Some(e);
        }
        e
    }

    /// Queue one request (and its raw payload, which must match
    /// [`Request::payload_len`]). The caller must leave room:
    /// settle with [`PipelinedConn::recv`] until [`has_room`] before
    /// sending into a full window; a full-window send is a usage error
    /// reported as `InvalidRequest`, not a wire event.
    ///
    /// [`has_room`]: PipelinedConn::has_room
    pub fn send(
        &mut self,
        req: &Request,
        payload: Option<&[u8]>,
        shape: ReplyShape,
    ) -> ChirpResult<()> {
        if let Some(e) = self.dead {
            return Err(e);
        }
        if !self.has_room() {
            return Err(ChirpError::InvalidRequest);
        }
        debug_assert_eq!(
            payload.map_or(0, |p| p.len() as u64),
            req.payload_len(),
            "payload must match the length named on the request line"
        );
        let line = req.encode();
        let res = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|_| payload.map_or(Ok(()), |p| self.writer.write_all(p)));
        if let Err(e) = res {
            // A partial write loses framing: nothing sent after this
            // point can be attributed, so the stream is dead.
            return Err(self.fail(ChirpError::from_io(&e)));
        }
        self.unflushed = true;
        self.queue.push_back(shape);
        Ok(())
    }

    /// Push all queued request bytes to the wire.
    pub fn flush(&mut self) -> ChirpResult<()> {
        if let Some(e) = self.dead {
            return Err(e);
        }
        if !self.unflushed {
            return Ok(());
        }
        match self.writer.flush() {
            Ok(()) => {
                self.unflushed = false;
                Ok(())
            }
            Err(e) => Err(self.fail(ChirpError::from_io(&e))),
        }
    }

    /// Settle the oldest in-flight request (flushing first if needed).
    ///
    /// `Ok` is its reply; `Err` is either its settled protocol verdict
    /// (pipeline still live) or a transport failure (pipeline dead;
    /// every later `recv` answers `Disconnected`). Calling with nothing
    /// in flight is a usage error reported as `InvalidRequest`.
    pub fn recv(&mut self) -> ChirpResult<Reply> {
        let shape = match self.queue.pop_front() {
            Some(s) => s,
            None => return Err(ChirpError::InvalidRequest),
        };
        if self.dead.is_some() {
            // Queued behind a transport failure: never answered, so
            // retriable — never a verdict borrowed from a later line.
            return Err(ChirpError::Disconnected);
        }
        if self.unflushed {
            self.flush()?;
        }
        let st = match wire::read_status(self.reader) {
            Ok(st) => st,
            Err(e) => {
                if e.is_retryable() || e == ChirpError::Disconnected {
                    // EOF, timeout, or a garbled line: framing lost.
                    // (`Busy` rides along: the server answers it while
                    // closing the stream, matching the unpipelined
                    // client's poisoning rule.)
                    return Err(self.fail(e));
                }
                // A well-formed negative status: a settled verdict.
                // Error replies carry no body, so the stream is still
                // framed and the pipeline continues.
                return Err(e);
            }
        };
        match shape {
            ReplyShape::Status => Ok(Reply::Status(st)),
            ReplyShape::Body => match wire::read_payload(self.reader, st.value as u64) {
                Ok(body) => Ok(Reply::Body(st, body)),
                Err(e) => {
                    // The body is unread (oversized) or half-read:
                    // either way the framing is lost.
                    self.fail(ChirpError::Disconnected);
                    Err(e)
                }
            },
        }
    }

    /// Settle everything still in flight, in order. Total: one verdict
    /// per outstanding request, settled replies and protocol errors
    /// as-is, everything behind a transport failure as `Disconnected`.
    pub fn settle_all(&mut self) -> Vec<ChirpResult<Reply>> {
        let mut out = Vec::with_capacity(self.queue.len());
        while !self.queue.is_empty() {
            out.push(self.recv());
        }
        out
    }
}

impl<R: BufRead, W: Write> std::fmt::Debug for PipelinedConn<'_, R, W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelinedConn")
            .field("depth", &self.depth)
            .field("in_flight", &self.queue.len())
            .field("dead", &self.dead)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn pread(fd: i32, length: u64, offset: u64) -> Request {
        Request::Pread { fd, length, offset }
    }

    #[test]
    fn replies_settle_in_request_order() {
        // Replies for: CLOSE ok, PREAD 3 bytes, STAT not found.
        let mut replies = Vec::new();
        wire::write_status(&mut replies, 0).unwrap();
        wire::write_status(&mut replies, 3).unwrap();
        replies.extend_from_slice(b"abc");
        wire::write_error(&mut replies, ChirpError::NotFound).unwrap();
        let mut reader = BufReader::new(&replies[..]);
        let mut writer = Vec::new();
        let mut pipe = PipelinedConn::new(&mut reader, &mut writer, 4);
        pipe.send(&Request::Close { fd: 1 }, None, ReplyShape::Status)
            .unwrap();
        pipe.send(&pread(1, 3, 0), None, ReplyShape::Body).unwrap();
        pipe.send(
            &Request::Stat { path: "/x".into() },
            None,
            ReplyShape::Status,
        )
        .unwrap();
        assert_eq!(pipe.in_flight(), 3);
        assert_eq!(
            pipe.recv().unwrap(),
            Reply::Status(StatusLine {
                value: 0,
                words: vec![]
            })
        );
        assert_eq!(
            pipe.recv().unwrap(),
            Reply::Body(
                StatusLine {
                    value: 3,
                    words: vec![]
                },
                b"abc".to_vec()
            )
        );
        // A settled protocol error does not kill the pipe.
        assert_eq!(pipe.recv().unwrap_err(), ChirpError::NotFound);
        assert!(!pipe.is_dead());
        assert_eq!(pipe.in_flight(), 0);
        // All three requests hit the wire in order.
        let sent = String::from_utf8(writer).unwrap();
        assert_eq!(sent, "CLOSE 1\nPREAD 1 3 0\nSTAT /x\n");
    }

    #[test]
    fn window_is_bounded() {
        let empty = b"";
        let mut reader = BufReader::new(&empty[..]);
        let mut writer = Vec::new();
        let mut pipe = PipelinedConn::new(&mut reader, &mut writer, 2);
        pipe.send(&Request::Whoami, None, ReplyShape::Status)
            .unwrap();
        pipe.send(&Request::Whoami, None, ReplyShape::Status)
            .unwrap();
        assert!(!pipe.has_room());
        assert_eq!(
            pipe.send(&Request::Whoami, None, ReplyShape::Status)
                .unwrap_err(),
            ChirpError::InvalidRequest
        );
    }

    #[test]
    fn transport_failure_settles_everything_behind_it() {
        // One good reply, then the stream dies mid-pipeline.
        let mut replies = Vec::new();
        wire::write_status(&mut replies, 7).unwrap();
        let mut reader = BufReader::new(&replies[..]);
        let mut writer = Vec::new();
        let mut pipe = PipelinedConn::new(&mut reader, &mut writer, 4);
        for _ in 0..3 {
            pipe.send(&Request::Whoami, None, ReplyShape::Status)
                .unwrap();
        }
        let verdicts = pipe.settle_all();
        assert_eq!(verdicts.len(), 3);
        assert_eq!(verdicts[0].as_ref().unwrap().status().value, 7);
        // EOF for the second; the third was queued behind it.
        assert_eq!(*verdicts[1].as_ref().unwrap_err(), ChirpError::Disconnected);
        assert_eq!(*verdicts[2].as_ref().unwrap_err(), ChirpError::Disconnected);
        assert!(pipe.is_dead());
        // A dead pipe refuses new work with the original failure.
        assert_eq!(
            pipe.send(&Request::Whoami, None, ReplyShape::Status)
                .unwrap_err(),
            ChirpError::Disconnected
        );
    }

    #[test]
    fn garbled_status_line_is_never_a_later_verdict() {
        // Reply 1 ok; reply 2 garbled; a well-formed "-2" follows that
        // must NOT be taken as request 3's verdict.
        let mut replies = Vec::new();
        wire::write_status(&mut replies, 0).unwrap();
        replies.extend_from_slice(b"\xff\xfe garbage\n");
        wire::write_error(&mut replies, ChirpError::NotFound).unwrap();
        let mut reader = BufReader::new(&replies[..]);
        let mut writer = Vec::new();
        let mut pipe = PipelinedConn::new(&mut reader, &mut writer, 4);
        for _ in 0..3 {
            pipe.send(&Request::Whoami, None, ReplyShape::Status)
                .unwrap();
        }
        assert!(pipe.recv().is_ok());
        assert_eq!(pipe.recv().unwrap_err(), ChirpError::Disconnected);
        assert_eq!(pipe.recv().unwrap_err(), ChirpError::Disconnected);
        assert!(pipe.is_dead());
    }

    #[test]
    fn payloads_ride_between_request_lines() {
        let empty = b"";
        let mut reader = BufReader::new(&empty[..]);
        let mut writer = Vec::new();
        let mut pipe = PipelinedConn::new(&mut reader, &mut writer, 4);
        pipe.send(
            &Request::Pwrite {
                fd: 2,
                length: 4,
                offset: 8,
            },
            Some(b"data"),
            ReplyShape::Status,
        )
        .unwrap();
        pipe.send(&Request::Fsync { fd: 2 }, None, ReplyShape::Status)
            .unwrap();
        pipe.flush().unwrap();
        assert_eq!(&writer[..], b"PWRITE 2 4 8\ndataFSYNC 2\n");
    }

    #[test]
    fn recv_with_nothing_in_flight_is_a_usage_error() {
        let empty = b"";
        let mut reader = BufReader::new(&empty[..]);
        let mut writer = Vec::new();
        let mut pipe = PipelinedConn::new(&mut reader, &mut writer, 1);
        assert_eq!(pipe.recv().unwrap_err(), ChirpError::InvalidRequest);
        assert!(!pipe.is_dead());
    }
}

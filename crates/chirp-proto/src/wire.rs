//! Framing helpers shared by the client and the server.
//!
//! Everything here works on plain `Read`/`Write` streams so the same
//! code serves TCP sockets in production and in-memory pipes in tests.

use std::io::{self, BufRead, Read, Write};

use crate::error::ChirpError;
use crate::MAX_LINE;

/// Read one `\n`-terminated line, enforcing [`MAX_LINE`].
///
/// Returns `Ok(None)` on a clean EOF at a line boundary (the peer hung
/// up between requests), `Err` on EOF mid-line or oversized lines.
pub fn read_line<R: BufRead>(reader: &mut R) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(io::ErrorKind::UnexpectedEof.into())
            };
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                line.extend_from_slice(&buf[..pos]);
                reader.consume(pos + 1);
                if line.len() > MAX_LINE {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "line too long"));
                }
                let text = String::from_utf8(line)
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 line"))?;
                return Ok(Some(text));
            }
            None => {
                let n = buf.len();
                line.extend_from_slice(buf);
                reader.consume(n);
                if line.len() > MAX_LINE {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "line too long"));
                }
            }
        }
    }
}

/// Write a bare status line: `code\n`.
pub fn write_status<W: Write>(writer: &mut W, code: i64) -> io::Result<()> {
    writeln!(writer, "{code}")
}

/// Write a status line with trailing result words: `code words...\n`.
pub fn write_status_words<W: Write>(writer: &mut W, code: i64, words: &str) -> io::Result<()> {
    writeln!(writer, "{code} {words}")
}

/// Write an error status line.
pub fn write_error<W: Write>(writer: &mut W, err: ChirpError) -> io::Result<()> {
    write_status(writer, err.code())
}

/// A decoded response status line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusLine {
    /// The non-negative result value.
    pub value: i64,
    /// Result words after the status code, still escaped.
    pub words: Vec<String>,
}

/// Read and decode a response status line; protocol errors become
/// `Err(ChirpError)`, transport errors become `Err(Disconnected)` or
/// `Err(Timeout)`.
///
/// A line that cannot be decoded as a status — non-UTF-8 bytes, a
/// first token that is not a number — means the stream framing is
/// lost: the bytes were damaged in flight or the peer is not speaking
/// Chirp. That is a *transport* failure, not a server answer, so it
/// surfaces as [`ChirpError::Disconnected`] (retriable on a fresh
/// connection) rather than the fatal `InvalidRequest` that
/// [`parse_status`] reports for malformed text. Well-formed negative
/// status codes still decode to their protocol error unchanged.
pub fn read_status<R: BufRead>(reader: &mut R) -> Result<StatusLine, ChirpError> {
    let line = match read_line(reader) {
        Ok(line) => line.ok_or(ChirpError::Disconnected)?,
        // Garbage on the stream (non-UTF-8, oversized line) is framing
        // loss, not a protocol verdict.
        Err(e) if e.kind() == io::ErrorKind::InvalidData => return Err(ChirpError::Disconnected),
        Err(e) => return Err(ChirpError::from_io(&e)),
    };
    // A server sending `-10` answered InvalidRequest (fatal, kept);
    // a first token that does not parse as a number at all is noise.
    if line
        .split(' ')
        .find(|w| !w.is_empty())
        .is_none_or(|w| w.parse::<i64>().is_err())
    {
        return Err(ChirpError::Disconnected);
    }
    parse_status(&line)
}

/// Decode a status line that has already been read.
pub fn parse_status(line: &str) -> Result<StatusLine, ChirpError> {
    let mut words = line.split(' ').filter(|w| !w.is_empty());
    let code: i64 = words
        .next()
        .and_then(|w| w.parse().ok())
        .ok_or(ChirpError::InvalidRequest)?;
    if code < 0 {
        return Err(ChirpError::from_code(code));
    }
    Ok(StatusLine {
        value: code,
        words: words.map(str::to_string).collect(),
    })
}

/// Copy exactly `len` bytes from `reader` to `writer` through a bounded
/// buffer, so multi-megabyte `putfile`/`getfile` bodies never occupy
/// more than one buffer of memory.
pub fn copy_exact<R: Read, W: Write>(reader: &mut R, writer: &mut W, len: u64) -> io::Result<()> {
    let mut buf = [0u8; 64 * 1024];
    let mut remaining = len;
    while remaining > 0 {
        let want = buf.len().min(remaining as usize);
        let got = reader.read(&mut buf[..want])?;
        if got == 0 {
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        writer.write_all(&buf[..got])?;
        remaining -= got as u64;
    }
    Ok(())
}

/// Write every byte of every buffer, preferring a single vectored
/// write per round trip to the OS. The scatter-gather reply path uses
/// this to send cached pages without assembling them into one
/// contiguous allocation first.
///
/// Handles partial progress the hard way: a `write_vectored` may stop
/// mid-buffer, so the slice list is rebuilt from the first unwritten
/// byte each round.
pub fn write_all_vectored<W: Write>(writer: &mut W, bufs: &[&[u8]]) -> io::Result<()> {
    let mut bufs: Vec<&[u8]> = bufs.iter().filter(|b| !b.is_empty()).copied().collect();
    while !bufs.is_empty() {
        let slices: Vec<io::IoSlice> = bufs.iter().map(|b| io::IoSlice::new(b)).collect();
        let mut n = writer.write_vectored(&slices)?;
        if n == 0 {
            return Err(io::ErrorKind::WriteZero.into());
        }
        let mut consumed = 0;
        for b in &mut bufs {
            if n >= b.len() {
                n -= b.len();
                consumed += 1;
            } else {
                *b = &b[n..];
                break;
            }
        }
        bufs.drain(..consumed);
    }
    Ok(())
}

/// Read exactly `len` bytes into a fresh buffer, enforcing
/// [`crate::MAX_PAYLOAD`].
pub fn read_payload<R: Read>(reader: &mut R, len: u64) -> Result<Vec<u8>, ChirpError> {
    if len > crate::MAX_PAYLOAD as u64 {
        return Err(ChirpError::TooBig);
    }
    let mut buf = vec![0u8; len as usize];
    reader
        .read_exact(&mut buf)
        .map_err(|e| ChirpError::from_io(&e))?;
    Ok(buf)
}

/// Discard exactly `len` bytes from `reader` (used by a server that must
/// drain the payload of a request it is rejecting, to keep the stream
/// framed).
pub fn discard_exact<R: Read>(reader: &mut R, len: u64) -> io::Result<()> {
    let mut sink = io::sink();
    copy_exact(reader, &mut sink, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn read_line_splits_on_newline() {
        let mut r = BufReader::new(&b"hello world\nsecond\n"[..]);
        assert_eq!(read_line(&mut r).unwrap().unwrap(), "hello world");
        assert_eq!(read_line(&mut r).unwrap().unwrap(), "second");
        assert!(read_line(&mut r).unwrap().is_none());
    }

    #[test]
    fn read_line_rejects_eof_mid_line() {
        let mut r = BufReader::new(&b"partial"[..]);
        assert!(read_line(&mut r).is_err());
    }

    #[test]
    fn read_line_enforces_max() {
        let big = vec![b'x'; MAX_LINE + 10];
        let mut r = BufReader::new(&big[..]);
        assert!(read_line(&mut r).is_err());
    }

    #[test]
    fn status_round_trip() {
        let mut buf = Vec::new();
        write_status_words(&mut buf, 0, "1 2 f 420 1 99 0").unwrap();
        let mut r = BufReader::new(&buf[..]);
        let st = read_status(&mut r).unwrap();
        assert_eq!(st.value, 0);
        assert_eq!(st.words.len(), 7);
    }

    #[test]
    fn negative_status_becomes_error() {
        let mut buf = Vec::new();
        write_error(&mut buf, ChirpError::NotFound).unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(read_status(&mut r).unwrap_err(), ChirpError::NotFound);
    }

    #[test]
    fn eof_becomes_disconnected() {
        let mut r = BufReader::new(&b""[..]);
        assert_eq!(read_status(&mut r).unwrap_err(), ChirpError::Disconnected);
    }

    #[test]
    fn garbled_status_line_is_a_transport_error() {
        // Corrupted-in-flight bytes: framing is lost, so the client
        // must treat the stream as dead (retriable), not report a
        // fatal protocol error.
        for garbage in [&b"\x80\xb5\xb0 5\n"[..], b"xyz 1\n", b"   \n"] {
            let mut r = BufReader::new(garbage);
            assert_eq!(
                read_status(&mut r).unwrap_err(),
                ChirpError::Disconnected,
                "{garbage:?}"
            );
        }
        // A well-formed protocol error code is NOT remapped.
        let mut r = BufReader::new(&b"-10\n"[..]);
        assert_eq!(read_status(&mut r).unwrap_err(), ChirpError::InvalidRequest);
    }

    #[test]
    fn copy_exact_moves_the_right_bytes() {
        let src = (0..200_000u32).map(|i| i as u8).collect::<Vec<_>>();
        let mut out = Vec::new();
        copy_exact(&mut &src[..], &mut out, 150_000).unwrap();
        assert_eq!(out, src[..150_000]);
    }

    #[test]
    fn copy_exact_detects_short_source() {
        let src = [0u8; 10];
        let mut out = Vec::new();
        assert!(copy_exact(&mut &src[..], &mut out, 20).is_err());
    }

    #[test]
    fn write_all_vectored_is_identity() {
        let bufs: Vec<Vec<u8>> = vec![vec![1; 3], vec![], vec![2; 5], vec![3; 1]];
        let refs: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
        let mut out = Vec::new();
        write_all_vectored(&mut out, &refs).unwrap();
        assert_eq!(out, [vec![1; 3], vec![2; 5], vec![3; 1]].concat());
        let mut empty = Vec::new();
        write_all_vectored(&mut empty, &[]).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn write_all_vectored_survives_partial_writes() {
        // A writer that takes at most 2 bytes per call, exercising the
        // mid-buffer resumption path.
        struct Dribble(Vec<u8>);
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                let n = buf.len().min(2);
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let a: Vec<u8> = (0..7).collect();
        let b: Vec<u8> = (7..10).collect();
        let mut w = Dribble(Vec::new());
        write_all_vectored(&mut w, &[&a, &b]).unwrap();
        assert_eq!(w.0, (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn read_payload_enforces_cap() {
        let mut r = BufReader::new(&b""[..]);
        assert_eq!(
            read_payload(&mut r, crate::MAX_PAYLOAD as u64 + 1).unwrap_err(),
            ChirpError::TooBig
        );
    }

    #[test]
    fn discard_exact_leaves_stream_framed() {
        let mut r = BufReader::new(&b"0123456789rest\n"[..]);
        discard_exact(&mut r, 10).unwrap();
        assert_eq!(read_line(&mut r).unwrap().unwrap(), "rest");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn status_words_round_trip(
                value in 0i64..1_000_000,
                words in proptest::collection::vec("[!-~]{1,12}", 0..6),
            ) {
                let mut buf = Vec::new();
                let joined = words.join(" ");
                if joined.is_empty() {
                    write_status(&mut buf, value).unwrap();
                } else {
                    write_status_words(&mut buf, value, &joined).unwrap();
                }
                let mut r = BufReader::new(&buf[..]);
                let st = read_status(&mut r).unwrap();
                prop_assert_eq!(st.value, value);
                prop_assert_eq!(st.words, words);
            }

            #[test]
            fn copy_exact_is_identity(
                data in proptest::collection::vec(any::<u8>(), 0..100_000),
            ) {
                let mut out = Vec::new();
                copy_exact(&mut &data[..], &mut out, data.len() as u64).unwrap();
                prop_assert_eq!(out, data);
            }

            #[test]
            fn parse_status_never_panics(line in "\\PC{0,64}") {
                let _ = parse_status(&line);
            }

            #[test]
            fn interleaved_lines_and_payloads_stay_framed(
                payload in proptest::collection::vec(any::<u8>(), 0..500),
            ) {
                // line, payload, line — the stream discipline every
                // data-carrying RPC relies on.
                let mut buf = Vec::new();
                write_status(&mut buf, payload.len() as i64).unwrap();
                buf.extend_from_slice(&payload);
                write_status(&mut buf, 0).unwrap();
                let mut r = BufReader::new(&buf[..]);
                let st = read_status(&mut r).unwrap();
                let body = read_payload(&mut r, st.value as u64).unwrap();
                prop_assert_eq!(body, payload);
                prop_assert_eq!(read_status(&mut r).unwrap().value, 0);
            }
        }
    }
}

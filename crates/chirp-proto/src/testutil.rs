//! Small test-support utilities shared by the workspace's test suites,
//! examples, and benchmarks.
//!
//! Lives in the base crate so every other crate can reach it without a
//! dependency cycle. Not part of the protocol API surface.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A self-cleaning unique temporary directory.
///
/// The workspace avoids external dev-dependencies for this; uniqueness
/// comes from the process id plus a process-wide counter.
#[derive(Debug)]
pub struct TempDir(PathBuf);

static COUNTER: AtomicU64 = AtomicU64::new(0);

impl TempDir {
    /// Create a fresh directory under the system temp dir.
    pub fn new() -> TempDir {
        TempDir::new_in(std::env::temp_dir())
    }

    /// Create a fresh directory under `base`. The simulation harness
    /// uses this to place server roots on a RAM-backed filesystem,
    /// where the system temp dir would put disk latency inside every
    /// simulated RPC.
    pub fn new_in(base: impl Into<PathBuf>) -> TempDir {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = base
            .into()
            .join(format!("tss-test-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.0
    }

    /// Create (and return the path of) a subdirectory.
    pub fn subdir(&self, name: &str) -> PathBuf {
        let p = self.0.join(name);
        std::fs::create_dir_all(&p).expect("create subdir");
        p
    }
}

impl Default for TempDir {
    fn default() -> TempDir {
        TempDir::new()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tempdirs_are_unique_and_cleaned() {
        let a = TempDir::new();
        let b = TempDir::new();
        assert_ne!(a.path(), b.path());
        let kept = a.path().to_path_buf();
        std::fs::write(a.path().join("f"), b"x").unwrap();
        drop(a);
        assert!(!kept.exists());
    }
}

//! Protocol error codes.
//!
//! Chirp responses carry a single signed status value. Non-negative
//! values are results (a file descriptor, a byte count, zero for plain
//! success); negative values are one of the error codes below. The
//! mapping to and from `std::io::ErrorKind` lets the abstractions in
//! `tss-core` surface remote failures through ordinary `io::Error`s.

use std::fmt;
use std::io;

/// Result alias used throughout the protocol crates.
pub type ChirpResult<T> = Result<T, ChirpError>;

/// What a recovery layer may do about an error: try again on a fresh
/// connection, or surface it immediately. Every [`ChirpError`] maps to
/// exactly one class via [`ChirpError::classify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// A transport-level failure (lost connection, timeout, transient
    /// server busy): the same request may succeed if retried.
    Retriable,
    /// A definitive answer (ACL denial, missing file, bad request,
    /// server-side I/O fault): retrying cannot change the outcome.
    Fatal,
}

/// An error reported by a Chirp server or detected by the client.
///
/// The discriminant values are the on-wire codes; they must never be
/// renumbered once deployed, only extended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(i64)]
pub enum ChirpError {
    /// The client has not completed authentication.
    NotAuthenticated = -1,
    /// The authenticated subject lacks the required ACL right.
    NotAuthorized = -2,
    /// The named file or directory does not exist.
    NotFound = -3,
    /// The target already exists (exclusive create, mkdir).
    AlreadyExists = -4,
    /// The operation requires a file but the target is a directory.
    IsADirectory = -5,
    /// The operation requires a directory but the target is a file.
    NotADirectory = -6,
    /// rmdir on a non-empty directory.
    NotEmpty = -7,
    /// The file descriptor is not open on this connection.
    BadFd = -8,
    /// The connection's descriptor table is full.
    TooManyOpen = -9,
    /// The request could not be parsed or had invalid arguments.
    InvalidRequest = -10,
    /// The server's storage is full.
    NoSpace = -11,
    /// A payload exceeded [`crate::MAX_PAYLOAD`].
    TooBig = -12,
    /// The server is shutting down or refused the operation.
    Busy = -13,
    /// A server-side I/O error not covered by a more specific code.
    Io = -14,
    /// The TCP connection failed or was closed mid-operation.
    ///
    /// Never sent on the wire; synthesized client-side.
    Disconnected = -15,
    /// A client-side timeout expired. Never sent on the wire.
    Timeout = -16,
    /// Authentication was attempted but every offered method failed.
    AuthFailed = -17,
    /// The operation is recognized but not supported by this server.
    NotSupported = -18,
    /// The file handle refers to a file that was replaced or removed
    /// while the adapter was reconnecting ("stale file handle").
    ///
    /// Never sent on the wire; synthesized by the adapter.
    Stale = -19,
}

impl ChirpError {
    /// Every variant, for exhaustive table tests (the classification
    /// and code round-trip properties quantify over this).
    pub const ALL: &'static [ChirpError] = &[
        ChirpError::NotAuthenticated,
        ChirpError::NotAuthorized,
        ChirpError::NotFound,
        ChirpError::AlreadyExists,
        ChirpError::IsADirectory,
        ChirpError::NotADirectory,
        ChirpError::NotEmpty,
        ChirpError::BadFd,
        ChirpError::TooManyOpen,
        ChirpError::InvalidRequest,
        ChirpError::NoSpace,
        ChirpError::TooBig,
        ChirpError::Busy,
        ChirpError::Io,
        ChirpError::Disconnected,
        ChirpError::Timeout,
        ChirpError::AuthFailed,
        ChirpError::NotSupported,
        ChirpError::Stale,
    ];

    /// The on-wire status code for this error.
    pub fn code(self) -> i64 {
        self as i64
    }

    /// Decode an on-wire status code. Unknown negative codes map to
    /// [`ChirpError::Io`] so that old clients survive new servers.
    pub fn from_code(code: i64) -> ChirpError {
        match code {
            -1 => ChirpError::NotAuthenticated,
            -2 => ChirpError::NotAuthorized,
            -3 => ChirpError::NotFound,
            -4 => ChirpError::AlreadyExists,
            -5 => ChirpError::IsADirectory,
            -6 => ChirpError::NotADirectory,
            -7 => ChirpError::NotEmpty,
            -8 => ChirpError::BadFd,
            -9 => ChirpError::TooManyOpen,
            -10 => ChirpError::InvalidRequest,
            -11 => ChirpError::NoSpace,
            -12 => ChirpError::TooBig,
            -13 => ChirpError::Busy,
            -15 => ChirpError::Disconnected,
            -16 => ChirpError::Timeout,
            -17 => ChirpError::AuthFailed,
            -18 => ChirpError::NotSupported,
            -19 => ChirpError::Stale,
            _ => ChirpError::Io,
        }
    }

    /// The total classification every error falls into: either the
    /// transport (or a transiently overloaded server) failed and the
    /// same request may succeed on a fresh connection, or the server
    /// gave a definitive protocol answer that retrying cannot change.
    ///
    /// ACL denials (`NotAuthenticated`/`NotAuthorized`/`AuthFailed`)
    /// are deliberately fatal: retrying an authorization failure only
    /// hammers the server and delays the real error. Exactly one arm
    /// matches each variant — the property test in `retry.rs` holds
    /// this table total.
    pub fn classify(self) -> ErrorClass {
        match self {
            // The connection died, a client-side timer fired, or the
            // server refused transiently — a reconnect may fix it.
            ChirpError::Disconnected | ChirpError::Timeout | ChirpError::Busy => {
                ErrorClass::Retriable
            }
            // Definitive protocol answers and client-side verdicts.
            ChirpError::NotAuthenticated
            | ChirpError::NotAuthorized
            | ChirpError::NotFound
            | ChirpError::AlreadyExists
            | ChirpError::IsADirectory
            | ChirpError::NotADirectory
            | ChirpError::NotEmpty
            | ChirpError::BadFd
            | ChirpError::TooManyOpen
            | ChirpError::InvalidRequest
            | ChirpError::NoSpace
            | ChirpError::TooBig
            | ChirpError::Io
            | ChirpError::AuthFailed
            | ChirpError::NotSupported
            | ChirpError::Stale => ErrorClass::Fatal,
        }
    }

    /// Whether the adapter should attempt reconnection and retry after
    /// this error (see §6 of the paper: recovery is an adapter policy,
    /// not a server one). Shorthand for
    /// `classify() == ErrorClass::Retriable`.
    pub fn is_retryable(self) -> bool {
        self.classify() == ErrorClass::Retriable
    }

    /// Map a local I/O failure into the closest protocol error, used by
    /// the server when a jailed filesystem operation fails.
    pub fn from_io(err: &io::Error) -> ChirpError {
        match err.kind() {
            io::ErrorKind::NotFound => ChirpError::NotFound,
            io::ErrorKind::PermissionDenied => ChirpError::NotAuthorized,
            io::ErrorKind::AlreadyExists => ChirpError::AlreadyExists,
            io::ErrorKind::TimedOut => ChirpError::Timeout,
            io::ErrorKind::WouldBlock => ChirpError::Timeout,
            io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::NotConnected
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof => ChirpError::Disconnected,
            io::ErrorKind::IsADirectory => ChirpError::IsADirectory,
            io::ErrorKind::NotADirectory => ChirpError::NotADirectory,
            io::ErrorKind::DirectoryNotEmpty => ChirpError::NotEmpty,
            io::ErrorKind::StorageFull => ChirpError::NoSpace,
            io::ErrorKind::InvalidInput => ChirpError::InvalidRequest,
            io::ErrorKind::Unsupported => ChirpError::NotSupported,
            _ => ChirpError::Io,
        }
    }

    /// The `io::ErrorKind` this error surfaces as through the
    /// `FileSystem` trait.
    pub fn io_kind(self) -> io::ErrorKind {
        match self {
            ChirpError::NotAuthenticated | ChirpError::NotAuthorized | ChirpError::AuthFailed => {
                io::ErrorKind::PermissionDenied
            }
            ChirpError::NotFound | ChirpError::Stale => io::ErrorKind::NotFound,
            ChirpError::AlreadyExists => io::ErrorKind::AlreadyExists,
            ChirpError::IsADirectory => io::ErrorKind::IsADirectory,
            ChirpError::NotADirectory => io::ErrorKind::NotADirectory,
            ChirpError::NotEmpty => io::ErrorKind::DirectoryNotEmpty,
            ChirpError::BadFd | ChirpError::InvalidRequest | ChirpError::TooBig => {
                io::ErrorKind::InvalidInput
            }
            ChirpError::TooManyOpen | ChirpError::Busy => io::ErrorKind::ResourceBusy,
            ChirpError::NoSpace => io::ErrorKind::StorageFull,
            ChirpError::Disconnected => io::ErrorKind::ConnectionAborted,
            ChirpError::Timeout => io::ErrorKind::TimedOut,
            ChirpError::NotSupported => io::ErrorKind::Unsupported,
            ChirpError::Io => io::ErrorKind::Other,
        }
    }
}

impl fmt::Display for ChirpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            ChirpError::NotAuthenticated => "not authenticated",
            ChirpError::NotAuthorized => "not authorized",
            ChirpError::NotFound => "file not found",
            ChirpError::AlreadyExists => "already exists",
            ChirpError::IsADirectory => "is a directory",
            ChirpError::NotADirectory => "not a directory",
            ChirpError::NotEmpty => "directory not empty",
            ChirpError::BadFd => "bad file descriptor",
            ChirpError::TooManyOpen => "too many open files",
            ChirpError::InvalidRequest => "invalid request",
            ChirpError::NoSpace => "no space on device",
            ChirpError::TooBig => "payload too large",
            ChirpError::Busy => "server busy",
            ChirpError::Io => "i/o error",
            ChirpError::Disconnected => "connection lost",
            ChirpError::Timeout => "operation timed out",
            ChirpError::AuthFailed => "authentication failed",
            ChirpError::NotSupported => "operation not supported",
            ChirpError::Stale => "stale file handle",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ChirpError {}

impl From<ChirpError> for io::Error {
    fn from(err: ChirpError) -> io::Error {
        io::Error::new(err.io_kind(), err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: &[ChirpError] = ChirpError::ALL;

    #[test]
    fn codes_round_trip() {
        for &e in ALL {
            assert_eq!(ChirpError::from_code(e.code()), e, "{e:?}");
        }
    }

    #[test]
    fn codes_are_negative_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for &e in ALL {
            assert!(e.code() < 0, "{e:?} must be negative");
            assert!(seen.insert(e.code()), "{e:?} code collides");
        }
    }

    #[test]
    fn unknown_code_maps_to_io() {
        assert_eq!(ChirpError::from_code(-9999), ChirpError::Io);
        assert_eq!(ChirpError::from_code(-14), ChirpError::Io);
    }

    #[test]
    fn io_round_trip_preserves_common_kinds() {
        for kind in [
            io::ErrorKind::NotFound,
            io::ErrorKind::PermissionDenied,
            io::ErrorKind::AlreadyExists,
        ] {
            let chirp = ChirpError::from_io(&io::Error::from(kind));
            assert_eq!(chirp.io_kind(), kind);
        }
    }

    #[test]
    fn retryable_classification() {
        assert!(ChirpError::Disconnected.is_retryable());
        assert!(ChirpError::Timeout.is_retryable());
        assert!(!ChirpError::NotFound.is_retryable());
        assert!(!ChirpError::NotAuthorized.is_retryable());
    }

    #[test]
    fn classification_is_total_and_consistent() {
        for &e in ALL {
            // Exactly one class per error, and `is_retryable` is
            // literally the Retriable arm of it.
            let class = e.classify();
            assert!(matches!(class, ErrorClass::Retriable | ErrorClass::Fatal));
            assert_eq!(e.is_retryable(), class == ErrorClass::Retriable, "{e:?}");
        }
    }

    #[test]
    fn acl_and_protocol_errors_are_fatal() {
        for e in [
            ChirpError::NotAuthenticated,
            ChirpError::NotAuthorized,
            ChirpError::AuthFailed,
            ChirpError::NotFound,
            ChirpError::InvalidRequest,
            ChirpError::Stale,
        ] {
            assert_eq!(e.classify(), ErrorClass::Fatal, "{e:?}");
        }
    }

    #[test]
    fn display_is_nonempty() {
        for &e in ALL {
            assert!(!e.to_string().is_empty());
        }
    }
}

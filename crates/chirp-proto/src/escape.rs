//! Word escaping for protocol lines.
//!
//! Request and response lines are sequences of space-separated words.
//! Arbitrary bytes (paths may contain spaces, newlines, or non-UTF-8)
//! are carried with a percent-encoding: every byte that would break
//! tokenization (space, newline, carriage return, `%`, or a control
//! byte) is written as `%XX`. The empty word is encoded as `%-` so a
//! line never contains a zero-width token.

/// Escape a word for inclusion in a protocol line.
pub fn escape(word: &[u8]) -> String {
    if word.is_empty() {
        return "%-".to_string();
    }
    let mut out = String::with_capacity(word.len());
    for &b in word {
        if needs_escape(b) {
            out.push('%');
            out.push(hex_digit(b >> 4));
            out.push(hex_digit(b & 0xf));
        } else {
            out.push(b as char);
        }
    }
    out
}

/// Decode a word produced by [`escape`]. Returns `None` on malformed
/// escape sequences.
pub fn unescape(word: &str) -> Option<Vec<u8>> {
    if word == "%-" {
        return Some(Vec::new());
    }
    let bytes = word.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hi = from_hex(*bytes.get(i + 1)?)?;
            let lo = from_hex(*bytes.get(i + 2)?)?;
            out.push((hi << 4) | lo);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    Some(out)
}

/// Split a line into raw (still-escaped) words.
pub fn split_words(line: &str) -> Vec<&str> {
    line.split(' ').filter(|w| !w.is_empty()).collect()
}

fn needs_escape(b: u8) -> bool {
    b <= b' ' || b == b'%' || b == 0x7f || b >= 0x80
}

fn hex_digit(nibble: u8) -> char {
    char::from_digit(nibble as u32, 16).expect("nibble in range")
}

fn from_hex(b: u8) -> Option<u8> {
    (b as char).to_digit(16).map(|d| d as u8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn plain_words_pass_through() {
        assert_eq!(escape(b"/data/file.txt"), "/data/file.txt");
        assert_eq!(unescape("/data/file.txt").unwrap(), b"/data/file.txt");
    }

    #[test]
    fn spaces_and_newlines_are_escaped() {
        assert_eq!(escape(b"a b"), "a%20b");
        assert_eq!(escape(b"a\nb"), "a%0ab");
        assert_eq!(unescape("a%20b").unwrap(), b"a b");
    }

    #[test]
    fn empty_word_has_a_representation() {
        let enc = escape(b"");
        assert!(!enc.is_empty());
        assert_eq!(unescape(&enc).unwrap(), b"");
    }

    #[test]
    fn percent_is_escaped() {
        let enc = escape(b"100%");
        assert!(!enc.contains("% "));
        assert_eq!(unescape(&enc).unwrap(), b"100%");
    }

    #[test]
    fn malformed_escapes_rejected() {
        assert!(unescape("%").is_none());
        assert!(unescape("%2").is_none());
        assert!(unescape("%zz").is_none());
    }

    #[test]
    fn split_ignores_repeated_spaces() {
        assert_eq!(split_words("a  b   c"), vec!["a", "b", "c"]);
        assert_eq!(split_words(""), Vec::<&str>::new());
    }

    proptest! {
        #[test]
        fn round_trip_arbitrary_bytes(word in proptest::collection::vec(any::<u8>(), 0..256)) {
            let enc = escape(&word);
            // Encoded form must tokenize as exactly one word.
            prop_assert!(!enc.contains(' '));
            prop_assert!(!enc.contains('\n'));
            prop_assert!(!enc.is_empty());
            prop_assert_eq!(unescape(&enc).unwrap(), word);
        }

        #[test]
        fn encoded_form_is_ascii(word in proptest::collection::vec(any::<u8>(), 0..256)) {
            prop_assert!(escape(&word).is_ascii());
        }
    }
}

//! The transport abstraction: byte streams a Chirp session runs over.
//!
//! Every layer of the system — server accept loop, client connection,
//! pool, fault injection — speaks to its peer through the [`Transport`]
//! trait instead of a concrete [`TcpStream`]. Production uses the TCP
//! implementations in this module; the simulation harness swaps in
//! [`MemNet`], an in-process network of duplex byte pipes with
//! fabricated addresses, so a whole multi-server instance runs with no
//! ports, no sleeps, and seeded interleaving.
//!
//! Three roles:
//!
//! * [`Transport`] — one established, bidirectional byte stream. Like
//!   `TcpStream` it is cloneable (`try_clone`) so a session can split
//!   into buffered reader and writer halves, carries optional read and
//!   write timeouts, and can be shut down from either half.
//! * [`Listener`] — a bound accept point producing transports.
//! * [`Dialer`] — a cheap, cloneable factory connecting to an endpoint
//!   named by a `host:port` string. Layers that need to *re*connect
//!   (retry loops, pools, third-party transfer) hold a `Dialer` rather
//!   than calling [`TcpStream::connect`] themselves.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::clock::Clock;
use crate::ready::{Token, Watcher};

/// One established bidirectional byte stream between two parties.
///
/// The contract mirrors [`TcpStream`]: reads and writes may be split
/// across cheap clones of the same underlying stream, timeouts apply
/// to every subsequent blocking read/write, and [`shutdown`] severs
/// both directions for all clones at once.
///
/// [`shutdown`]: Transport::shutdown
pub trait Transport: Read + Write + Send + fmt::Debug {
    /// A second handle on the same stream (for splitting into buffered
    /// reader and writer halves).
    fn try_clone(&self) -> io::Result<Box<dyn Transport>>;
    /// Timeout applied to every subsequent blocking read.
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
    /// The currently configured read timeout.
    fn read_timeout(&self) -> io::Result<Option<Duration>>;
    /// Timeout applied to every subsequent blocking write.
    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
    /// The address of the remote party.
    fn peer_addr(&self) -> io::Result<SocketAddr>;
    /// The address of the local end.
    fn local_addr(&self) -> io::Result<SocketAddr>;
    /// Sever both directions, for every clone of this stream. Blocked
    /// and future reads observe end-of-stream or an error.
    fn shutdown(&self) -> io::Result<()>;

    // ---- readiness extension (see [`crate::ready`]) -----------------
    //
    // Default implementations make every existing transport (including
    // fault-injection wrappers) "blocking only": a reactor that finds
    // neither a pollable fd nor watcher support falls back to serving
    // the connection on a dedicated thread.

    /// Switch the stream between blocking and nonblocking mode. In
    /// nonblocking mode reads and writes that would wait return
    /// [`io::ErrorKind::WouldBlock`] instead. Unsupported by default.
    fn set_nonblocking(&self, _nonblocking: bool) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "transport has no nonblocking mode",
        ))
    }

    /// The raw file descriptor an OS poller can watch, if the stream
    /// is backed by one.
    fn readiness_fd(&self) -> Option<i32> {
        None
    }

    /// Register a readiness watcher (in-process transports). Returns
    /// `false` when the transport does not support watchers. On
    /// success the watcher is notified once immediately with the
    /// stream's current readiness and then on every change.
    fn register_ready(&self, _token: Token, _watcher: Watcher) -> bool {
        false
    }

    /// Remove a previously registered watcher, if any.
    fn deregister_ready(&self) {}
}

/// A bound accept point producing [`Transport`]s.
pub trait Listener: Send + Sync {
    /// Block until a connection arrives; returns the stream and the
    /// peer's address.
    fn accept(&self) -> io::Result<(Box<dyn Transport>, SocketAddr)>;
    /// The bound local address (useful with ephemeral ports).
    fn local_addr(&self) -> io::Result<SocketAddr>;
    /// Unblock a pending [`accept`](Listener::accept) so a shutdown
    /// flag can be observed; the woken accept returns an error or a
    /// throwaway connection.
    fn wake(&self);
}

/// Object-safe connection factory behind [`Dialer`].
pub trait Dial: Send + Sync {
    /// Connect to `endpoint` (a `host:port` string), bounding the
    /// attempt by `timeout`.
    fn dial(&self, endpoint: &str, timeout: Duration) -> io::Result<Box<dyn Transport>>;
}

/// A cheap, cloneable handle on a [`Dial`] implementation.
///
/// The default dialer opens real TCP connections; the simulation
/// harness substitutes [`MemNet::dialer`] (or a fault-injecting
/// wrapper) without any layer above noticing.
#[derive(Clone)]
pub struct Dialer(Arc<dyn Dial>);

impl Dialer {
    /// The production dialer: resolve and connect over TCP.
    pub fn tcp() -> Dialer {
        Dialer(Arc::new(TcpDialer))
    }

    /// Wrap a custom [`Dial`] implementation.
    pub fn from_arc(dial: Arc<dyn Dial>) -> Dialer {
        Dialer(dial)
    }

    /// Connect to `endpoint`, bounding the attempt by `timeout`.
    pub fn dial(&self, endpoint: &str, timeout: Duration) -> io::Result<Box<dyn Transport>> {
        self.0.dial(endpoint, timeout)
    }
}

impl Default for Dialer {
    fn default() -> Dialer {
        Dialer::tcp()
    }
}

impl fmt::Debug for Dialer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Dialer(..)")
    }
}

// ---- TCP implementations -----------------------------------------------

impl Transport for TcpStream {
    fn try_clone(&self) -> io::Result<Box<dyn Transport>> {
        TcpStream::try_clone(self).map(|s| Box::new(s) as Box<dyn Transport>)
    }
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }
    fn read_timeout(&self) -> io::Result<Option<Duration>> {
        TcpStream::read_timeout(self)
    }
    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, timeout)
    }
    fn peer_addr(&self) -> io::Result<SocketAddr> {
        TcpStream::peer_addr(self)
    }
    fn local_addr(&self) -> io::Result<SocketAddr> {
        TcpStream::local_addr(self)
    }
    fn shutdown(&self) -> io::Result<()> {
        TcpStream::shutdown(self, Shutdown::Both)
    }
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        TcpStream::set_nonblocking(self, nonblocking)
    }
    fn readiness_fd(&self) -> Option<i32> {
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            Some(self.as_raw_fd())
        }
        #[cfg(not(unix))]
        {
            None
        }
    }
}

impl Listener for TcpListener {
    fn accept(&self) -> io::Result<(Box<dyn Transport>, SocketAddr)> {
        let (stream, peer) = TcpListener::accept(self)?;
        // Control lines and small data share the stream; without
        // nodelay every short reply waits out Nagle.
        stream.set_nodelay(true).ok();
        Ok((Box::new(stream), peer))
    }
    fn local_addr(&self) -> io::Result<SocketAddr> {
        TcpListener::local_addr(self)
    }
    fn wake(&self) {
        // The classic self-connect: gives a blocked accept() one
        // throwaway connection to return with.
        if let Ok(addr) = TcpListener::local_addr(self) {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
        }
    }
}

/// The production [`Dial`]: resolve `endpoint` and open a TCP
/// connection with nodelay set.
struct TcpDialer;

impl Dial for TcpDialer {
    fn dial(&self, endpoint: &str, timeout: Duration) -> io::Result<Box<dyn Transport>> {
        let addr = endpoint
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable endpoint"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(Box::new(stream))
    }
}

// ---- the in-memory network ---------------------------------------------

/// How long a simulated read may wait in *real* time for its peer
/// thread to produce data before the harness calls it deadlocked.
/// Generous: legitimate waits are microseconds (the peer is another
/// in-process thread); only a genuine hang reaches this.
const MEM_DEADLOCK_CAP: Duration = Duration::from_secs(30);

/// An in-process network: listeners with fabricated addresses, duplex
/// byte-pipe streams, and a [`Dialer`] connecting by `host:port`
/// string exactly like TCP.
///
/// Listener addresses are allocated from `10.77.x.y:9094`, which
/// parse and print like any socket address, so endpoint strings built
/// from them flow through pools, catalogs, and configs unchanged.
#[derive(Clone)]
pub struct MemNet {
    inner: Arc<MemNetInner>,
    clock: Clock,
}

struct MemNetInner {
    listeners: Mutex<HashMap<SocketAddr, Arc<AcceptQueue>>>,
    next_host: Mutex<u32>,
    next_client_port: Mutex<u16>,
    stream_capacity: Mutex<Option<usize>>,
}

struct AcceptQueue {
    state: Mutex<AcceptState>,
    cond: Condvar,
}

struct AcceptState {
    pending: VecDeque<(MemStream, SocketAddr)>,
    closed: bool,
    woken: bool,
}

impl MemNet {
    /// A fresh, empty network whose streams charge timeouts to
    /// `clock`.
    pub fn new(clock: Clock) -> MemNet {
        MemNet {
            inner: Arc::new(MemNetInner {
                listeners: Mutex::new(HashMap::new()),
                next_host: Mutex::new(0),
                next_client_port: Mutex::new(40_000),
                stream_capacity: Mutex::new(None),
            }),
            clock,
        }
    }

    /// The clock this network charges timeouts to.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Bind a listener at the next fabricated address.
    pub fn listen(&self) -> MemListener {
        let addr = {
            let mut next = self.inner.next_host.lock().unwrap();
            *next += 1;
            let n = *next;
            SocketAddr::new(
                IpAddr::V4(Ipv4Addr::new(10, 77, (n >> 8) as u8, n as u8)),
                crate::DEFAULT_PORT,
            )
        };
        let queue = Arc::new(AcceptQueue {
            state: Mutex::new(AcceptState {
                pending: VecDeque::new(),
                closed: false,
                woken: false,
            }),
            cond: Condvar::new(),
        });
        self.inner
            .listeners
            .lock()
            .unwrap()
            .insert(addr, queue.clone());
        MemListener {
            net: self.inner.clone(),
            addr,
            queue,
        }
    }

    /// Bind a listener at a *specific* fabricated address — how a
    /// simulated process restarts at the endpoint its peers already
    /// know (a federated catalog shard rejoining, say). Fails with
    /// [`io::ErrorKind::AddrInUse`] if the address is still bound.
    pub fn listen_at(&self, addr: SocketAddr) -> io::Result<MemListener> {
        let mut listeners = self.inner.listeners.lock().unwrap();
        if listeners.contains_key(&addr) {
            return Err(io::ErrorKind::AddrInUse.into());
        }
        let queue = Arc::new(AcceptQueue {
            state: Mutex::new(AcceptState {
                pending: VecDeque::new(),
                closed: false,
                woken: false,
            }),
            cond: Condvar::new(),
        });
        listeners.insert(addr, queue.clone());
        Ok(MemListener {
            net: self.inner.clone(),
            addr,
            queue,
        })
    }

    /// A dialer connecting into this network.
    pub fn dialer(&self) -> Dialer {
        Dialer::from_arc(Arc::new(self.clone()))
    }

    /// Bound per-direction in-flight bytes on streams created by
    /// *future* dials (existing streams keep their capacity). `None`
    /// restores the unbounded default. This is how backpressure tests
    /// model a slow reader with a finite socket buffer.
    pub fn set_stream_capacity(&self, capacity: Option<usize>) {
        *self.inner.stream_capacity.lock().unwrap() = capacity;
    }

    /// Drop a listener's registration so new dials are refused, as if
    /// the host vanished. Established streams are unaffected; sever
    /// those via [`Transport::shutdown`] on their endpoints.
    pub fn unbind(&self, addr: SocketAddr) {
        if let Some(q) = self.inner.listeners.lock().unwrap().remove(&addr) {
            let mut st = q.state.lock().unwrap();
            st.closed = true;
            q.cond.notify_all();
        }
    }
}

impl fmt::Debug for MemNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("MemNet")
    }
}

impl Dial for MemNet {
    fn dial(&self, endpoint: &str, timeout: Duration) -> io::Result<Box<dyn Transport>> {
        let addr: SocketAddr = endpoint
            .parse()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable endpoint"))?;
        let queue = self
            .inner
            .listeners
            .lock()
            .unwrap()
            .get(&addr)
            .cloned()
            .ok_or_else(|| {
                // A refused connect costs the connect timeout's worth
                // of simulated time, like a TCP connect to a dead host.
                self.clock.sleep(timeout.min(Duration::from_millis(100)));
                io::Error::from(io::ErrorKind::ConnectionRefused)
            })?;
        let client_addr = {
            let mut port = self.inner.next_client_port.lock().unwrap();
            *port = port.wrapping_add(1).max(40_000);
            SocketAddr::new(IpAddr::V4(Ipv4Addr::new(10, 77, 255, 254)), *port)
        };
        let capacity = *self.inner.stream_capacity.lock().unwrap();
        let (client_end, server_end) =
            MemStream::pair_with_capacity(client_addr, addr, self.clock.clone(), capacity);
        let mut st = queue.state.lock().unwrap();
        if st.closed {
            return Err(io::ErrorKind::ConnectionRefused.into());
        }
        st.pending.push_back((server_end, client_addr));
        queue.cond.notify_all();
        Ok(Box::new(client_end))
    }
}

/// A bound in-memory accept point. Dropping it unbinds the address.
pub struct MemListener {
    net: Arc<MemNetInner>,
    addr: SocketAddr,
    queue: Arc<AcceptQueue>,
}

impl MemListener {
    /// The fabricated bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl fmt::Debug for MemListener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MemListener({})", self.addr)
    }
}

impl Listener for MemListener {
    fn accept(&self) -> io::Result<(Box<dyn Transport>, SocketAddr)> {
        let mut st = self.queue.state.lock().unwrap();
        loop {
            if let Some((stream, peer)) = st.pending.pop_front() {
                return Ok((Box::new(stream), peer));
            }
            if st.closed {
                return Err(io::ErrorKind::NotConnected.into());
            }
            if st.woken {
                st.woken = false;
                return Err(io::ErrorKind::Interrupted.into());
            }
            st = self.queue.cond.wait(st).unwrap();
        }
    }
    fn local_addr(&self) -> io::Result<SocketAddr> {
        Ok(self.addr)
    }
    fn wake(&self) {
        let mut st = self.queue.state.lock().unwrap();
        st.woken = true;
        self.queue.cond.notify_all();
    }
}

impl Drop for MemListener {
    fn drop(&mut self) {
        // Only unregister our own queue: after an unbind-then-rebind
        // cycle (a restarted process re-listening at its old address)
        // the map entry belongs to the new listener, not to us.
        let mut listeners = self.net.listeners.lock().unwrap();
        if listeners
            .get(&self.addr)
            .is_some_and(|q| Arc::ptr_eq(q, &self.queue))
        {
            listeners.remove(&self.addr);
        }
        drop(listeners);
        let mut st = self.queue.state.lock().unwrap();
        st.closed = true;
        self.queue.cond.notify_all();
    }
}

/// One direction of an in-memory stream: a byte queue (unbounded by
/// default, optionally capacity-bounded) with a writer-gone flag and
/// readiness watcher slots for the reactor seam.
struct Pipe {
    state: Mutex<PipeState>,
    cond: Condvar,
}

/// A registered readiness watcher on one side of a pipe.
#[derive(Clone)]
struct Watch {
    token: Token,
    watcher: Watcher,
}

#[derive(Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
    /// `Some(n)`: writers block (or `WouldBlock`) once `buf` holds `n`
    /// bytes — how tests model a peer with a finite socket buffer.
    capacity: Option<usize>,
    /// Watcher interested in this pipe becoming readable (its reader).
    reader: Option<Watch>,
    /// Watcher interested in this pipe accepting bytes (its writer).
    writer: Option<Watch>,
}

impl Pipe {
    fn new(capacity: Option<usize>) -> Arc<Pipe> {
        Arc::new(Pipe {
            state: Mutex::new(PipeState {
                capacity,
                ..PipeState::default()
            }),
            cond: Condvar::new(),
        })
    }

    fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        let reader = st.reader.clone();
        let writer = st.writer.clone();
        drop(st);
        self.cond.notify_all();
        // Close is both "readable" (EOF is delivered by a read) and
        // "writable" (a blocked writer must wake to observe the break).
        if let Some(w) = reader {
            w.watcher.notify(w.token, true, false);
        }
        if let Some(w) = writer {
            w.watcher.notify(w.token, false, true);
        }
    }
}

/// One endpoint of an in-memory duplex stream. Cloning shares the
/// endpoint (as [`TcpStream::try_clone`] does); when every clone of an
/// endpoint is gone both directions close and the peer observes
/// end-of-stream.
pub struct MemStream {
    end: Arc<StreamEnd>,
}

struct StreamEnd {
    read_pipe: Arc<Pipe>,
    write_pipe: Arc<Pipe>,
    local: SocketAddr,
    peer: SocketAddr,
    clock: Clock,
    read_timeout: Mutex<Option<Duration>>,
    nonblocking: AtomicBool,
}

impl Drop for StreamEnd {
    fn drop(&mut self) {
        self.read_pipe.close();
        self.write_pipe.close();
    }
}

impl MemStream {
    /// A connected pair of endpoints (used by [`MemNet`]; public so
    /// tests can fabricate a lone duplex stream without a network).
    pub fn pair(a_addr: SocketAddr, b_addr: SocketAddr, clock: Clock) -> (MemStream, MemStream) {
        MemStream::pair_with_capacity(a_addr, b_addr, clock, None)
    }

    /// Like [`MemStream::pair`], but each direction holds at most
    /// `capacity` in-flight bytes — the in-memory analogue of a finite
    /// socket buffer, used to exercise backpressure paths
    /// deterministically.
    pub fn pair_with_capacity(
        a_addr: SocketAddr,
        b_addr: SocketAddr,
        clock: Clock,
        capacity: Option<usize>,
    ) -> (MemStream, MemStream) {
        let a_to_b = Pipe::new(capacity);
        let b_to_a = Pipe::new(capacity);
        let a = MemStream {
            end: Arc::new(StreamEnd {
                read_pipe: b_to_a.clone(),
                write_pipe: a_to_b.clone(),
                local: a_addr,
                peer: b_addr,
                clock: clock.clone(),
                read_timeout: Mutex::new(None),
                nonblocking: AtomicBool::new(false),
            }),
        };
        let b = MemStream {
            end: Arc::new(StreamEnd {
                read_pipe: a_to_b,
                write_pipe: b_to_a,
                local: b_addr,
                peer: a_addr,
                clock,
                read_timeout: Mutex::new(None),
                nonblocking: AtomicBool::new(false),
            }),
        };
        (a, b)
    }
}

impl Read for MemStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let timeout = *self.end.read_timeout.lock().unwrap();
        // The wait budget is real time: a peer that is alive answers in
        // microseconds, so the timeout only matters when the peer has
        // genuinely stopped talking — and then expiring it mirrors what
        // SO_RCVTIMEO would do. Virtual clocks additionally get charged
        // the nominal timeout so simulated time advances like the real
        // wait would have.
        let budget = timeout.unwrap_or(MEM_DEADLOCK_CAP);
        let start = Instant::now();
        let mut st = self.end.read_pipe.state.lock().unwrap();
        loop {
            if !st.buf.is_empty() {
                let n = buf.len().min(st.buf.len());
                for slot in buf.iter_mut().take(n) {
                    *slot = st.buf.pop_front().expect("checked non-empty");
                }
                // Draining a bounded pipe frees writer room; tell a
                // registered writer-side watcher (and any blocked
                // writer thread) outside the lock.
                let writer = if st.capacity.is_some() {
                    st.writer.clone()
                } else {
                    None
                };
                drop(st);
                self.end.read_pipe.cond.notify_all();
                if let Some(w) = writer {
                    w.watcher.notify(w.token, false, true);
                }
                return Ok(n);
            }
            if st.closed {
                return Ok(0);
            }
            if self.end.nonblocking.load(Ordering::Relaxed) {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let elapsed = start.elapsed();
            if elapsed >= budget {
                if timeout.is_some() {
                    // The real wait is over; a virtual clock still owes
                    // the simulated timeline the nominal timeout.
                    if self.end.clock.is_virtual() {
                        self.end.clock.sleep(budget);
                    }
                    return Err(io::ErrorKind::TimedOut.into());
                }
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "in-memory read exceeded the deadlock cap",
                ));
            }
            let (next, _timed_out) = self
                .end
                .read_pipe
                .cond
                .wait_timeout(st, budget - elapsed)
                .unwrap();
            st = next;
        }
    }
}

impl Write for MemStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let start = Instant::now();
        let mut st = self.end.write_pipe.state.lock().unwrap();
        loop {
            if st.closed {
                return Err(io::ErrorKind::BrokenPipe.into());
            }
            let room = match st.capacity {
                Some(cap) => cap.saturating_sub(st.buf.len()),
                None => usize::MAX,
            };
            if room == 0 {
                if self.end.nonblocking.load(Ordering::Relaxed) {
                    return Err(io::ErrorKind::WouldBlock.into());
                }
                let elapsed = start.elapsed();
                if elapsed >= MEM_DEADLOCK_CAP {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "in-memory write exceeded the deadlock cap",
                    ));
                }
                let (next, _timed_out) = self
                    .end
                    .write_pipe
                    .cond
                    .wait_timeout(st, MEM_DEADLOCK_CAP - elapsed)
                    .unwrap();
                st = next;
                continue;
            }
            let n = buf.len().min(room);
            st.buf.extend(buf[..n].iter().copied());
            let reader = st.reader.clone();
            drop(st);
            self.end.write_pipe.cond.notify_all();
            if let Some(w) = reader {
                w.watcher.notify(w.token, true, false);
            }
            return Ok(n);
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Transport for MemStream {
    fn try_clone(&self) -> io::Result<Box<dyn Transport>> {
        Ok(Box::new(MemStream {
            end: self.end.clone(),
        }))
    }
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        *self.end.read_timeout.lock().unwrap() = timeout;
        Ok(())
    }
    fn read_timeout(&self) -> io::Result<Option<Duration>> {
        Ok(*self.end.read_timeout.lock().unwrap())
    }
    fn set_write_timeout(&self, _timeout: Option<Duration>) -> io::Result<()> {
        Ok(()) // writes to an unbounded pipe never block
    }
    fn peer_addr(&self) -> io::Result<SocketAddr> {
        Ok(self.end.peer)
    }
    fn local_addr(&self) -> io::Result<SocketAddr> {
        Ok(self.end.local)
    }
    fn shutdown(&self) -> io::Result<()> {
        self.end.read_pipe.close();
        self.end.write_pipe.close();
        Ok(())
    }
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        self.end.nonblocking.store(nonblocking, Ordering::Relaxed);
        Ok(())
    }
    fn register_ready(&self, token: Token, watcher: Watcher) -> bool {
        let watch = Watch { token, watcher };
        // Our read side watches the read pipe for bytes; our write side
        // watches the write pipe for room. Capture current readiness
        // under the locks, then notify outside them so a watcher that
        // re-enters the poller cannot deadlock against us.
        let readable = {
            let mut st = self.end.read_pipe.state.lock().unwrap();
            st.reader = Some(watch.clone());
            !st.buf.is_empty() || st.closed
        };
        let writable = {
            let mut st = self.end.write_pipe.state.lock().unwrap();
            st.writer = Some(watch.clone());
            st.closed
                || match st.capacity {
                    Some(cap) => st.buf.len() < cap,
                    None => true,
                }
        };
        // The initial notification seeds the reactor's ready-set with
        // the state that existed before registration (bytes may already
        // be queued by a fast client).
        watch.watcher.notify(watch.token, readable, writable);
        true
    }
    fn deregister_ready(&self) {
        self.end.read_pipe.state.lock().unwrap().reader = None;
        self.end.write_pipe.state.lock().unwrap().writer = None;
    }
}

impl fmt::Debug for MemStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MemStream({} -> {})", self.end.local, self.end.peer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_dial_accept_round_trip() {
        let net = MemNet::new(Clock::wall());
        let listener = net.listen();
        let endpoint = listener.addr().to_string();
        let dialer = net.dialer();
        let server = std::thread::spawn(move || {
            let (mut t, peer) = listener.accept().unwrap();
            let mut buf = [0u8; 5];
            t.read_exact(&mut buf).unwrap();
            assert_eq!(&buf, b"hello");
            t.write_all(b"world").unwrap();
            peer
        });
        let mut client = dialer.dial(&endpoint, Duration::from_secs(1)).unwrap();
        client.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"world");
        let peer = server.join().unwrap();
        assert_eq!(peer, client.local_addr().unwrap());
    }

    #[test]
    fn dial_unknown_endpoint_is_refused() {
        let net = MemNet::new(Clock::fresh_virtual());
        let err = net
            .dialer()
            .dial("10.77.9.9:9094", Duration::from_secs(1))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn dropping_an_endpoint_gives_the_peer_eof() {
        let net = MemNet::new(Clock::wall());
        let listener = net.listen();
        let endpoint = listener.addr().to_string();
        let client = net
            .dialer()
            .dial(&endpoint, Duration::from_secs(1))
            .unwrap();
        let (mut served, _) = listener.accept().unwrap();
        drop(client);
        let mut buf = [0u8; 1];
        assert_eq!(served.read(&mut buf).unwrap(), 0, "clean EOF");
        assert_eq!(
            served.write_all(b"x").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
    }

    #[test]
    fn clones_share_the_stream_and_shutdown_severs_all() {
        let clock = Clock::fresh_virtual();
        let (a, mut b) = MemStream::pair(
            "10.77.0.1:1".parse().unwrap(),
            "10.77.0.2:2".parse().unwrap(),
            clock,
        );
        let mut a2 = Transport::try_clone(&a).unwrap();
        a2.write_all(b"via clone").unwrap();
        let mut buf = [0u8; 9];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"via clone");
        Transport::shutdown(&a).unwrap();
        assert_eq!(b.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn read_timeout_expires_and_charges_virtual_time() {
        let clock = Clock::fresh_virtual();
        let (mut a, _b) = MemStream::pair(
            "10.77.0.1:1".parse().unwrap(),
            "10.77.0.2:2".parse().unwrap(),
            clock.clone(),
        );
        Transport::set_read_timeout(&a, Some(Duration::from_millis(10))).unwrap();
        let t0 = clock.now();
        let err = a.read(&mut [0u8; 1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(clock.elapsed_since(t0) >= Duration::from_millis(10));
    }

    #[test]
    fn unbind_refuses_new_dials() {
        let net = MemNet::new(Clock::fresh_virtual());
        let listener = net.listen();
        let addr = listener.addr();
        net.unbind(addr);
        let err = net
            .dialer()
            .dial(&addr.to_string(), Duration::from_secs(1))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn wake_unblocks_accept() {
        let net = MemNet::new(Clock::wall());
        let listener = Arc::new(net.listen());
        let l2 = listener.clone();
        let t = std::thread::spawn(move || l2.accept().map(|_| ()));
        std::thread::sleep(Duration::from_millis(20));
        listener.wake();
        assert!(t.join().unwrap().is_err());
    }

    #[test]
    fn tcp_dialer_refuses_dead_port() {
        // Bind then drop to find a port that is (very likely) closed.
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        drop(l);
        let err = Dialer::tcp()
            .dial(&addr.to_string(), Duration::from_millis(500))
            .unwrap_err();
        assert!(
            err.kind() == io::ErrorKind::ConnectionRefused || err.kind() == io::ErrorKind::TimedOut
        );
    }
}

//! Request messages and their line codec.
//!
//! A request is a single line `VERB arg arg ...\n`; arguments that are
//! free text (paths, subjects, credentials) are escaped with
//! [`crate::escape`]. Requests that carry data (`PWRITE`, `PUTFILE`)
//! name the payload length on the line and ship the raw bytes
//! immediately after it.

use crate::error::ChirpError;
use crate::escape::{escape, split_words, unescape};
use crate::flags::OpenFlags;

/// A single Chirp RPC request.
///
/// `PWRITE`/`PUTFILE` payloads are *not* part of this type: the framing
/// layer transfers them separately so a server can stream large bodies
/// straight to disk without an intermediate copy of the whole payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Authenticate with `method`, claiming identity `name`, proving it
    /// with `credential` (method-specific).
    Auth {
        /// Authentication method name (`hostname`, `unix`, or a key
        /// method label such as `globus`).
        method: String,
        /// Claimed identity within the method's namespace.
        name: String,
        /// Method-specific proof.
        credential: String,
    },
    /// Report the subject the server has assigned this connection.
    Whoami,
    /// Open `path`; returns a connection-scoped descriptor.
    Open {
        /// Server path.
        path: String,
        /// Open mode flags.
        flags: OpenFlags,
        /// Permission bits for newly created files.
        mode: u32,
    },
    /// Close a descriptor.
    Close {
        /// Descriptor from a previous `Open`.
        fd: i32,
    },
    /// Positional read; the response streams back up to `length` bytes.
    Pread {
        /// Descriptor.
        fd: i32,
        /// Maximum bytes to read.
        length: u64,
        /// Absolute file offset.
        offset: u64,
    },
    /// Positional write; `length` payload bytes follow the line.
    Pwrite {
        /// Descriptor.
        fd: i32,
        /// Payload length that follows.
        length: u64,
        /// Absolute file offset.
        offset: u64,
    },
    /// `fstat` on an open descriptor.
    Fstat {
        /// Descriptor.
        fd: i32,
    },
    /// Flush an open descriptor to stable storage.
    Fsync {
        /// Descriptor.
        fd: i32,
    },
    /// Truncate an open descriptor.
    Ftruncate {
        /// Descriptor.
        fd: i32,
        /// New size.
        size: u64,
    },
    /// `stat` by path.
    Stat {
        /// Server path.
        path: String,
    },
    /// Remove a file.
    Unlink {
        /// Server path.
        path: String,
    },
    /// Atomically rename within the server.
    Rename {
        /// Existing path.
        from: String,
        /// New path.
        to: String,
    },
    /// Create a directory. Subject to the reserve (`V`) right: in a
    /// directory where the caller holds only `V`, the new directory is
    /// initialized with an ACL granting the caller the rights listed in
    /// the parent's `V(...)` grant.
    Mkdir {
        /// Server path.
        path: String,
        /// Permission bits.
        mode: u32,
    },
    /// Remove an empty directory.
    Rmdir {
        /// Server path.
        path: String,
    },
    /// List a directory; the response streams escaped names separated
    /// by newlines.
    Getdir {
        /// Server path.
        path: String,
    },
    /// List a directory with attributes: one `name statwords` line per
    /// entry, saving a round trip per entry over `GETDIR` + `STAT`.
    Getlongdir {
        /// Server path.
        path: String,
    },
    /// List a directory with attributes in one exchange, the batched
    /// form used by the pipelined data path: one `name statwords` line
    /// per entry, so a listing costs exactly one round trip.
    GetdirStat {
        /// Server path.
        path: String,
    },
    /// `stat` a batch of paths in one exchange; the reply carries one
    /// line per path (stat words or a per-path error code), so one
    /// missing path never fails the batch.
    StatMulti {
        /// Server paths, in reply order.
        paths: Vec<String>,
    },
    /// Stream an entire file to the client.
    Getfile {
        /// Server path.
        path: String,
    },
    /// Stream an entire file from the client; `length` bytes follow.
    Putfile {
        /// Server path.
        path: String,
        /// Permission bits for the created file.
        mode: u32,
        /// Payload length that follows.
        length: u64,
    },
    /// Fetch the ACL of a directory as text.
    Getacl {
        /// Server path.
        path: String,
    },
    /// Add or replace one subject's entry in a directory ACL
    /// (requires the `A` right). An empty rights string deletes the
    /// entry.
    Setacl {
        /// Server path.
        path: String,
        /// Subject pattern, e.g. `hostname:*.cse.nd.edu`.
        subject: String,
        /// Rights string, e.g. `rwl` or `v(rwla)`.
        rights: String,
    },
    /// CRC-64 of a whole file, for integrity audits.
    Checksum {
        /// Server path.
        path: String,
    },
    /// Storage totals for the server root.
    Statfs,
    /// Truncate by path.
    Truncate {
        /// Server path.
        path: String,
        /// New size.
        size: u64,
    },
    /// Set the modification time of a path (used by replication to
    /// preserve timestamps).
    Utime {
        /// Server path.
        path: String,
        /// New mtime, seconds since the epoch.
        mtime: u64,
    },
    /// Third-party transfer: this server pushes `path` directly to
    /// another file server, so bulk replication never hauls data
    /// through the directing client. The serving side authenticates
    /// to the target with its own `hostname` identity.
    Thirdput {
        /// Local path to send.
        path: String,
        /// Target server endpoint, `host:port`.
        target: String,
        /// Path to create on the target.
        target_path: String,
    },
}

/// Canonical lowercase op names, one per [`Request`] variant plus
/// `"invalid"` for unparseable lines — the key space telemetry
/// registries pre-register their per-op counters over.
pub const OP_NAMES: &[&str] = &[
    "auth",
    "whoami",
    "open",
    "close",
    "pread",
    "pwrite",
    "fstat",
    "fsync",
    "ftruncate",
    "stat",
    "unlink",
    "rename",
    "mkdir",
    "rmdir",
    "getdir",
    "getlongdir",
    "getdirstat",
    "statmulti",
    "getfile",
    "putfile",
    "getacl",
    "setacl",
    "checksum",
    "statfs",
    "truncate",
    "utime",
    "thirdput",
    "invalid",
];

impl Request {
    /// Canonical lowercase name of this request's operation (an entry
    /// of [`OP_NAMES`]).
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Auth { .. } => "auth",
            Request::Whoami => "whoami",
            Request::Open { .. } => "open",
            Request::Close { .. } => "close",
            Request::Pread { .. } => "pread",
            Request::Pwrite { .. } => "pwrite",
            Request::Fstat { .. } => "fstat",
            Request::Fsync { .. } => "fsync",
            Request::Ftruncate { .. } => "ftruncate",
            Request::Stat { .. } => "stat",
            Request::Unlink { .. } => "unlink",
            Request::Rename { .. } => "rename",
            Request::Mkdir { .. } => "mkdir",
            Request::Rmdir { .. } => "rmdir",
            Request::Getdir { .. } => "getdir",
            Request::Getlongdir { .. } => "getlongdir",
            Request::GetdirStat { .. } => "getdirstat",
            Request::StatMulti { .. } => "statmulti",
            Request::Getfile { .. } => "getfile",
            Request::Putfile { .. } => "putfile",
            Request::Getacl { .. } => "getacl",
            Request::Setacl { .. } => "setacl",
            Request::Checksum { .. } => "checksum",
            Request::Statfs => "statfs",
            Request::Truncate { .. } => "truncate",
            Request::Utime { .. } => "utime",
            Request::Thirdput { .. } => "thirdput",
        }
    }

    /// Number of payload bytes that follow this request line.
    pub fn payload_len(&self) -> u64 {
        match self {
            Request::Pwrite { length, .. } | Request::Putfile { length, .. } => *length,
            _ => 0,
        }
    }

    /// True for requests that mutate server state; used by tests to
    /// assert read-only subjects are confined.
    pub fn is_mutation(&self) -> bool {
        matches!(
            self,
            Request::Pwrite { .. }
                | Request::Putfile { .. }
                | Request::Unlink { .. }
                | Request::Rename { .. }
                | Request::Mkdir { .. }
                | Request::Rmdir { .. }
                | Request::Setacl { .. }
                | Request::Truncate { .. }
                | Request::Ftruncate { .. }
                | Request::Utime { .. }
        ) || matches!(self, Request::Open { flags, .. } if flags.writes())
    }

    /// Encode this request as one protocol line (including the trailing
    /// newline).
    pub fn encode(&self) -> String {
        let e = |s: &str| escape(s.as_bytes());
        match self {
            Request::Auth {
                method,
                name,
                credential,
            } => format!("AUTH {} {} {}\n", e(method), e(name), e(credential)),
            Request::Whoami => "WHOAMI\n".to_string(),
            Request::Open { path, flags, mode } => {
                format!("OPEN {} {} {}\n", e(path), flags.bits(), mode)
            }
            Request::Close { fd } => format!("CLOSE {fd}\n"),
            Request::Pread { fd, length, offset } => format!("PREAD {fd} {length} {offset}\n"),
            Request::Pwrite { fd, length, offset } => format!("PWRITE {fd} {length} {offset}\n"),
            Request::Fstat { fd } => format!("FSTAT {fd}\n"),
            Request::Fsync { fd } => format!("FSYNC {fd}\n"),
            Request::Ftruncate { fd, size } => format!("FTRUNCATE {fd} {size}\n"),
            Request::Stat { path } => format!("STAT {}\n", e(path)),
            Request::Unlink { path } => format!("UNLINK {}\n", e(path)),
            Request::Rename { from, to } => format!("RENAME {} {}\n", e(from), e(to)),
            Request::Mkdir { path, mode } => format!("MKDIR {} {}\n", e(path), mode),
            Request::Rmdir { path } => format!("RMDIR {}\n", e(path)),
            Request::Getdir { path } => format!("GETDIR {}\n", e(path)),
            Request::Getlongdir { path } => format!("GETLONGDIR {}\n", e(path)),
            Request::GetdirStat { path } => format!("GETDIRSTAT {}\n", e(path)),
            Request::StatMulti { paths } => {
                let mut line = String::from("STATMULTI");
                for p in paths {
                    line.push(' ');
                    line.push_str(&e(p));
                }
                line.push('\n');
                line
            }
            Request::Getfile { path } => format!("GETFILE {}\n", e(path)),
            Request::Putfile { path, mode, length } => {
                format!("PUTFILE {} {} {}\n", e(path), mode, length)
            }
            Request::Getacl { path } => format!("GETACL {}\n", e(path)),
            Request::Setacl {
                path,
                subject,
                rights,
            } => format!("SETACL {} {} {}\n", e(path), e(subject), e(rights)),
            Request::Checksum { path } => format!("CHECKSUM {}\n", e(path)),
            Request::Statfs => "STATFS\n".to_string(),
            Request::Truncate { path, size } => format!("TRUNCATE {} {}\n", e(path), size),
            Request::Utime { path, mtime } => format!("UTIME {} {}\n", e(path), mtime),
            Request::Thirdput {
                path,
                target,
                target_path,
            } => format!("THIRDPUT {} {} {}\n", e(path), e(target), e(target_path)),
        }
    }

    /// Parse one request line (without the trailing newline).
    pub fn parse(line: &str) -> Result<Request, ChirpError> {
        let words = split_words(line);
        let (&verb, args) = words.split_first().ok_or(ChirpError::InvalidRequest)?;
        let text = |i: usize| -> Result<String, ChirpError> {
            let raw = args.get(i).ok_or(ChirpError::InvalidRequest)?;
            let bytes = unescape(raw).ok_or(ChirpError::InvalidRequest)?;
            String::from_utf8(bytes).map_err(|_| ChirpError::InvalidRequest)
        };
        let num = |i: usize| -> Result<u64, ChirpError> {
            args.get(i)
                .and_then(|w| w.parse::<u64>().ok())
                .ok_or(ChirpError::InvalidRequest)
        };
        let fd_arg = |i: usize| -> Result<i32, ChirpError> {
            args.get(i)
                .and_then(|w| w.parse::<i32>().ok())
                .ok_or(ChirpError::InvalidRequest)
        };
        let arity = |n: usize| -> Result<(), ChirpError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(ChirpError::InvalidRequest)
            }
        };
        let req = match verb {
            "AUTH" => {
                arity(3)?;
                Request::Auth {
                    method: text(0)?,
                    name: text(1)?,
                    credential: text(2)?,
                }
            }
            "WHOAMI" => {
                arity(0)?;
                Request::Whoami
            }
            "OPEN" => {
                arity(3)?;
                Request::Open {
                    path: text(0)?,
                    flags: OpenFlags::from_bits(num(1)? as u32)
                        .ok_or(ChirpError::InvalidRequest)?,
                    mode: num(2)? as u32,
                }
            }
            "CLOSE" => {
                arity(1)?;
                Request::Close { fd: fd_arg(0)? }
            }
            "PREAD" => {
                arity(3)?;
                Request::Pread {
                    fd: fd_arg(0)?,
                    length: num(1)?,
                    offset: num(2)?,
                }
            }
            "PWRITE" => {
                arity(3)?;
                Request::Pwrite {
                    fd: fd_arg(0)?,
                    length: num(1)?,
                    offset: num(2)?,
                }
            }
            "FSTAT" => {
                arity(1)?;
                Request::Fstat { fd: fd_arg(0)? }
            }
            "FSYNC" => {
                arity(1)?;
                Request::Fsync { fd: fd_arg(0)? }
            }
            "FTRUNCATE" => {
                arity(2)?;
                Request::Ftruncate {
                    fd: fd_arg(0)?,
                    size: num(1)?,
                }
            }
            "STAT" => {
                arity(1)?;
                Request::Stat { path: text(0)? }
            }
            "UNLINK" => {
                arity(1)?;
                Request::Unlink { path: text(0)? }
            }
            "RENAME" => {
                arity(2)?;
                Request::Rename {
                    from: text(0)?,
                    to: text(1)?,
                }
            }
            "MKDIR" => {
                arity(2)?;
                Request::Mkdir {
                    path: text(0)?,
                    mode: num(1)? as u32,
                }
            }
            "RMDIR" => {
                arity(1)?;
                Request::Rmdir { path: text(0)? }
            }
            "GETDIR" => {
                arity(1)?;
                Request::Getdir { path: text(0)? }
            }
            "GETLONGDIR" => {
                arity(1)?;
                Request::Getlongdir { path: text(0)? }
            }
            "GETDIRSTAT" => {
                arity(1)?;
                Request::GetdirStat { path: text(0)? }
            }
            "STATMULTI" => {
                // Variable arity: one escaped path per word, at least
                // one (an empty batch has no meaningful reply framing).
                if args.is_empty() {
                    return Err(ChirpError::InvalidRequest);
                }
                let paths = (0..args.len())
                    .map(text)
                    .collect::<Result<Vec<String>, ChirpError>>()?;
                Request::StatMulti { paths }
            }
            "GETFILE" => {
                arity(1)?;
                Request::Getfile { path: text(0)? }
            }
            "PUTFILE" => {
                arity(3)?;
                Request::Putfile {
                    path: text(0)?,
                    mode: num(1)? as u32,
                    length: num(2)?,
                }
            }
            "GETACL" => {
                arity(1)?;
                Request::Getacl { path: text(0)? }
            }
            "SETACL" => {
                arity(3)?;
                Request::Setacl {
                    path: text(0)?,
                    subject: text(1)?,
                    rights: text(2)?,
                }
            }
            "CHECKSUM" => {
                arity(1)?;
                Request::Checksum { path: text(0)? }
            }
            "STATFS" => {
                arity(0)?;
                Request::Statfs
            }
            "TRUNCATE" => {
                arity(2)?;
                Request::Truncate {
                    path: text(0)?,
                    size: num(1)?,
                }
            }
            "UTIME" => {
                arity(2)?;
                Request::Utime {
                    path: text(0)?,
                    mtime: num(1)?,
                }
            }
            "THIRDPUT" => {
                arity(3)?;
                Request::Thirdput {
                    path: text(0)?,
                    target: text(1)?,
                    target_path: text(2)?,
                }
            }
            _ => return Err(ChirpError::InvalidRequest),
        };
        Ok(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(req: Request) {
        let line = req.encode();
        assert!(line.ends_with('\n'));
        let parsed = Request::parse(line.trim_end_matches('\n')).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn every_variant_round_trips() {
        round_trip(Request::Auth {
            method: "ticket".into(),
            name: "/O=NotreDame/CN=alice".into(),
            credential: "deadbeef".into(),
        });
        round_trip(Request::Whoami);
        round_trip(Request::Open {
            path: "/data/run 5/out.bin".into(),
            flags: OpenFlags::READ | OpenFlags::CREATE,
            mode: 0o644,
        });
        round_trip(Request::Close { fd: 7 });
        round_trip(Request::Pread {
            fd: 1,
            length: 8192,
            offset: 65536,
        });
        round_trip(Request::Pwrite {
            fd: 1,
            length: 8192,
            offset: 0,
        });
        round_trip(Request::Fstat { fd: 3 });
        round_trip(Request::Fsync { fd: 3 });
        round_trip(Request::Ftruncate { fd: 3, size: 100 });
        round_trip(Request::Stat {
            path: "/paper.txt".into(),
        });
        round_trip(Request::Unlink {
            path: "/tmp/x".into(),
        });
        round_trip(Request::Rename {
            from: "/a".into(),
            to: "/b".into(),
        });
        round_trip(Request::Mkdir {
            path: "/backup".into(),
            mode: 0o755,
        });
        round_trip(Request::Rmdir {
            path: "/backup".into(),
        });
        round_trip(Request::Getdir { path: "/".into() });
        round_trip(Request::Getlongdir {
            path: "/data".into(),
        });
        round_trip(Request::GetdirStat {
            path: "/data".into(),
        });
        round_trip(Request::StatMulti {
            paths: vec!["/a".into(), "/dir with space/b".into(), "/c".into()],
        });
        round_trip(Request::Getfile {
            path: "/big.dat".into(),
        });
        round_trip(Request::Putfile {
            path: "/big.dat".into(),
            mode: 0o600,
            length: 1 << 20,
        });
        round_trip(Request::Getacl { path: "/".into() });
        round_trip(Request::Setacl {
            path: "/".into(),
            subject: "hostname:*.cse.nd.edu".into(),
            rights: "v(rwla)".into(),
        });
        round_trip(Request::Checksum {
            path: "/big.dat".into(),
        });
        round_trip(Request::Statfs);
        round_trip(Request::Truncate {
            path: "/f".into(),
            size: 0,
        });
        round_trip(Request::Utime {
            path: "/f".into(),
            mtime: 1_120_000_000,
        });
        round_trip(Request::Thirdput {
            path: "/big.dat".into(),
            target: "host2:9094".into(),
            target_path: "/mirror/big.dat".into(),
        });
    }

    #[test]
    fn payload_len_only_for_data_carrying_requests() {
        assert_eq!(
            Request::Pwrite {
                fd: 0,
                length: 42,
                offset: 0
            }
            .payload_len(),
            42
        );
        assert_eq!(
            Request::Putfile {
                path: "/x".into(),
                mode: 0,
                length: 9
            }
            .payload_len(),
            9
        );
        assert_eq!(Request::Whoami.payload_len(), 0);
        assert_eq!(Request::Statfs.payload_len(), 0);
    }

    #[test]
    fn mutation_classification() {
        assert!(Request::Unlink { path: "/x".into() }.is_mutation());
        assert!(Request::Open {
            path: "/x".into(),
            flags: OpenFlags::WRITE,
            mode: 0
        }
        .is_mutation());
        assert!(!Request::Open {
            path: "/x".into(),
            flags: OpenFlags::READ,
            mode: 0
        }
        .is_mutation());
        assert!(!Request::Stat { path: "/x".into() }.is_mutation());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Request::parse("").is_err());
        assert!(Request::parse("FROB /x").is_err());
        assert!(Request::parse("OPEN /x").is_err());
        assert!(Request::parse("OPEN /x notanumber 0").is_err());
        assert!(Request::parse("CLOSE").is_err());
        assert!(Request::parse("WHOAMI extra").is_err());
        // A STATMULTI with no paths has no reply framing; reject it.
        assert!(Request::parse("STATMULTI").is_err());
    }

    #[test]
    fn parse_rejects_unknown_open_flag_bits() {
        assert!(Request::parse("OPEN /x 1048576 0").is_err());
    }

    #[test]
    fn op_names_match_the_wire_verbs() {
        // Every request's op_name is its wire verb, lowercased, and is
        // listed in OP_NAMES so registries can pre-register counters.
        for r in [
            Request::Whoami,
            Request::Statfs,
            Request::Close { fd: 1 },
            Request::Stat { path: "/x".into() },
            Request::GetdirStat { path: "/x".into() },
            Request::StatMulti {
                paths: vec!["/x".into()],
            },
            Request::Putfile {
                path: "/x".into(),
                mode: 0o644,
                length: 3,
            },
        ] {
            let verb = r.encode();
            let verb = verb.split_whitespace().next().unwrap().to_lowercase();
            assert_eq!(r.op_name(), verb);
            assert!(OP_NAMES.contains(&r.op_name()));
        }
        assert!(OP_NAMES.contains(&"invalid"));
    }

    proptest! {
        #[test]
        fn arbitrary_paths_round_trip(path in "[\\PC]{1,64}") {
            round_trip(Request::Stat { path: path.clone() });
            round_trip(Request::Rename { from: path.clone(), to: format!("{path}.new") });
        }

        #[test]
        fn parse_never_panics(line in "\\PC{0,128}") {
            let _ = Request::parse(&line);
        }
    }
}

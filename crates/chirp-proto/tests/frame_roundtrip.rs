//! Property corpus: hostile pathnames through complete RPC frames.
//!
//! The per-module proptests pin down `escape` and `wire` in isolation;
//! this suite drives the layers *composed*, the way a real connection
//! does: request line → payload bytes → status line → reply payload,
//! all on one stream. The generators are biased toward exactly the
//! bytes that break naive line protocols — newlines, spaces, carriage
//! returns, `%`, NUL, DEL, and high bytes like `0xFF` — planted inside
//! pathnames, subjects, and rename pairs.

use std::io::{BufReader, Write};

use proptest::prelude::*;

use chirp_proto::escape::{escape, split_words, unescape};
use chirp_proto::wire::{read_line, read_payload, read_status, write_status, write_status_words};
use chirp_proto::{OpenFlags, Request};

/// The bytes that break naive line protocols, drawn with the same
/// weight as the whole rest of the byte space combined.
const HOSTILE: &[u8] = &[b'\n', b'\r', b' ', b'%', b'\t', 0x00, 0x7f, 0xff];

fn hostile_byte() -> impl Strategy<Value = u8> {
    prop_oneof![
        (0usize..HOSTILE.len()).prop_map(|i| HOSTILE[i]),
        any::<u8>(),
    ]
}

/// Pathname strategy biased toward framing-hostile characters. Each
/// byte becomes the code point of the same value, so `0xFF` appears as
/// `ÿ` — which keeps `0xFF`-byte coverage in the UTF-8 world `Request`
/// paths live in (it encodes as `0xc3 0xbf` on the wire).
fn hostile_path() -> impl Strategy<Value = String> {
    proptest::collection::vec(hostile_byte(), 1..48)
        .prop_map(|bs| bs.into_iter().map(|b| b as char).collect())
}

/// Raw-bytes strategy with the same bias, for the layer below
/// `Request` where words are arbitrary byte strings (including lone
/// `0xFF` with no UTF-8 wrapper).
fn hostile_word() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(hostile_byte(), 0..64)
}

proptest! {
    // A request naming a hostile path, followed by its payload,
    // followed by a second request, all on one stream: each frame
    // decodes to exactly what was sent and the boundaries hold. A
    // single unescaped newline in the path would shear the frame.
    #[test]
    fn putfile_frame_with_hostile_path_stays_framed(
        path in hostile_path(),
        payload in proptest::collection::vec(any::<u8>(), 0..300),
        next_path in hostile_path(),
    ) {
        let put = Request::Putfile {
            path: path.clone(),
            mode: 0o644,
            length: payload.len() as u64,
        };
        let stat = Request::Stat { path: next_path.clone() };

        let mut stream = Vec::new();
        stream.write_all(put.encode().as_bytes()).unwrap();
        stream.write_all(&payload).unwrap();
        stream.write_all(stat.encode().as_bytes()).unwrap();

        let mut r = BufReader::new(&stream[..]);
        let line = read_line(&mut r).unwrap().unwrap();
        let decoded = Request::parse(&line).unwrap();
        prop_assert_eq!(&decoded, &put);
        let body = read_payload(&mut r, decoded.payload_len()).unwrap();
        prop_assert_eq!(body, payload);
        let line = read_line(&mut r).unwrap().unwrap();
        prop_assert_eq!(Request::parse(&line).unwrap(), stat);
        prop_assert!(read_line(&mut r).unwrap().is_none(), "stream fully consumed");
    }

    // Path-carrying requests round-trip hostile names through encode →
    // wire → parse. RENAME carries two, so a separator leak in either
    // word would change the arity and fail the parse.
    #[test]
    fn path_requests_round_trip_hostile_names(
        a in hostile_path(),
        b in hostile_path(),
        flags_ix in 0usize..4,
    ) {
        let flags = [
            OpenFlags::READ,
            OpenFlags::WRITE | OpenFlags::CREATE,
            OpenFlags::read_write() | OpenFlags::CREATE | OpenFlags::TRUNCATE,
            OpenFlags::READ | OpenFlags::WRITE,
        ][flags_ix];
        for req in [
            Request::Open { path: a.clone(), flags, mode: 0o600 },
            Request::Stat { path: a.clone() },
            Request::Unlink { path: a.clone() },
            Request::Rename { from: a.clone(), to: b.clone() },
            Request::Getdir { path: b.clone() },
            Request::Setacl { path: a.clone(), subject: b.clone(), rights: "rwl".into() },
            Request::Thirdput { path: a.clone(), target: b.clone(), target_path: a.clone() },
        ] {
            let line = req.encode();
            prop_assert_eq!(line.matches('\n').count(), 1, "one frame, one newline");
            prop_assert_eq!(Request::parse(line.trim_end_matches('\n')).unwrap(), req);
        }
    }

    // Below `Request`: arbitrary byte words (lone `0xFF` included)
    // escaped into a reply line, shipped through the writer, and
    // recovered via the same read path the client uses for replies
    // that carry names (GETDIR, WHOAMI).
    #[test]
    fn reply_words_carry_arbitrary_bytes(
        value in 0i64..1_000_000,
        words in proptest::collection::vec(hostile_word(), 1..5),
    ) {
        let joined = words.iter().map(|w| escape(w)).collect::<Vec<_>>().join(" ");
        let mut buf = Vec::new();
        write_status_words(&mut buf, value, &joined).unwrap();

        let mut r = BufReader::new(&buf[..]);
        let st = read_status(&mut r).unwrap();
        prop_assert_eq!(st.value, value);
        let decoded: Vec<Vec<u8>> = st
            .words
            .iter()
            .map(|w| unescape(w).expect("reply word decodes"))
            .collect();
        prop_assert_eq!(decoded, words);
    }

    // The GETDIR body discipline: escaped names separated by newlines
    // after a status line. Names full of spaces/newlines/0xFF must
    // come back intact and in order.
    #[test]
    fn directory_listing_body_round_trips(
        names in proptest::collection::vec(hostile_word(), 0..8),
    ) {
        let mut body = Vec::new();
        for n in &names {
            writeln!(body, "{}", escape(n)).unwrap();
        }
        let mut stream = Vec::new();
        write_status(&mut stream, body.len() as i64).unwrap();
        stream.extend_from_slice(&body);

        let mut r = BufReader::new(&stream[..]);
        let st = read_status(&mut r).unwrap();
        let body = read_payload(&mut r, st.value as u64).unwrap();
        let text = String::from_utf8(body).expect("escaped listing is ASCII");
        let decoded: Vec<Vec<u8>> = text
            .lines()
            .map(|l| {
                let ws = split_words(l);
                prop_assert_eq!(ws.len(), 1, "escaped name is one word");
                Ok(unescape(ws[0]).expect("listing name decodes"))
            })
            .collect::<Result<_, _>>()?;
        prop_assert_eq!(decoded, names);
    }

    // Tokenizer safety at the byte level: no matter the input word,
    // its escaped form contains no separator, survives `split_words`
    // as a single token, and decodes to the original bytes.
    #[test]
    fn escaped_words_tokenize_as_single_words(word in hostile_word()) {
        let enc = escape(&word);
        let line = format!("VERB {enc} trailing");
        let ws = split_words(&line);
        prop_assert_eq!(ws.len(), 3);
        prop_assert_eq!(unescape(ws[1]).unwrap(), word);
    }
}

/// The specific bytes the issue calls out, pinned as plain tests so
/// coverage never depends on what the property generators happen to
/// draw.
#[test]
fn issue_corpus_newline_space_ff() {
    let cases: &[&[u8]] = &[
        b"/data/run 5/out.bin",
        b"/evil\nname",
        b"/cr\rlf\n",
        b"\xff",
        b"/f\xff\xffile",
        b"100%",
        b"",
        b" ",
        b"\n",
        b"/\xff \n%\r\x00\x7f",
    ];
    for &word in cases {
        let enc = escape(word);
        assert!(enc.is_ascii());
        assert!(!enc.contains(' ') && !enc.contains('\n') && !enc.contains('\r'));
        assert_eq!(unescape(&enc).unwrap(), word, "corpus word {word:?}");
    }

    // And the UTF-8 versions through a complete request frame.
    for path in ["/data/run 5/out.bin", "/evil\nname", "/f\u{ff}ile", "%"] {
        let req = Request::Stat { path: path.into() };
        let line = req.encode();
        let mut r = BufReader::new(line.as_bytes());
        let got = read_line(&mut r).unwrap().unwrap();
        assert_eq!(Request::parse(&got).unwrap(), req);
    }
}

//! Property corpus for the pipelined data path.
//!
//! `frame_roundtrip.rs` pins single frames; this suite pins *queues* of
//! them: arbitrary mixes of requests — with and without raw payloads,
//! naming framing-hostile paths — written through [`PipelinedConn`]
//! must decode server-side to exactly the op sequence that was queued,
//! and replies must settle strictly in send order no matter how sends
//! and receives interleave within the window. The failure half of the
//! contract is a property too: a garbled status line anywhere in the
//! reply stream settles the request it answers as a transport loss and
//! everything queued behind it as [`ChirpError::Disconnected`] — a
//! well-formed line *after* the garble must never surface as a later
//! request's verdict.

use std::io::BufReader;

use proptest::prelude::*;

use chirp_proto::wire::{self, read_line, read_payload, StatusLine};
use chirp_proto::{ChirpError, OpenFlags, PipelinedConn, Reply, ReplyShape, Request};

/// The bytes that break naive line protocols, drawn with the same
/// weight as the whole rest of the byte space combined.
const HOSTILE: &[u8] = &[b'\n', b'\r', b' ', b'%', b'\t', 0x00, 0x7f, 0xff];

fn hostile_byte() -> impl Strategy<Value = u8> {
    prop_oneof![
        (0usize..HOSTILE.len()).prop_map(|i| HOSTILE[i]),
        any::<u8>(),
    ]
}

fn hostile_path() -> impl Strategy<Value = String> {
    proptest::collection::vec(hostile_byte(), 1..32)
        .prop_map(|bs| bs.into_iter().map(|b| b as char).collect())
}

/// One queued request: what goes on the wire and how its reply is
/// framed.
#[derive(Debug, Clone)]
enum Queued {
    Open(String),
    Stat(String),
    Pread { fd: i32, len: u64, off: u64 },
    Pwrite { fd: i32, data: Vec<u8>, off: u64 },
    Putfile { path: String, data: Vec<u8> },
    GetdirStat(String),
    StatMulti(Vec<String>),
}

impl Queued {
    fn request(&self) -> Request {
        match self {
            Queued::Open(path) => Request::Open {
                path: path.clone(),
                flags: OpenFlags::read_write() | OpenFlags::CREATE,
                mode: 0o644,
            },
            Queued::Stat(path) => Request::Stat { path: path.clone() },
            Queued::Pread { fd, len, off } => Request::Pread {
                fd: *fd,
                length: *len,
                offset: *off,
            },
            Queued::Pwrite { fd, data, off } => Request::Pwrite {
                fd: *fd,
                length: data.len() as u64,
                offset: *off,
            },
            Queued::Putfile { path, data } => Request::Putfile {
                path: path.clone(),
                mode: 0o644,
                length: data.len() as u64,
            },
            Queued::GetdirStat(path) => Request::GetdirStat { path: path.clone() },
            Queued::StatMulti(paths) => Request::StatMulti {
                paths: paths.clone(),
            },
        }
    }

    fn payload(&self) -> Option<&[u8]> {
        match self {
            Queued::Pwrite { data, .. } | Queued::Putfile { data, .. } => Some(data),
            _ => None,
        }
    }

    fn shape(&self) -> ReplyShape {
        match self {
            Queued::Pread { .. } | Queued::GetdirStat(_) | Queued::StatMulti(_) => ReplyShape::Body,
            _ => ReplyShape::Status,
        }
    }
}

fn queued() -> impl Strategy<Value = Queued> {
    prop_oneof![
        hostile_path().prop_map(Queued::Open),
        hostile_path().prop_map(Queued::Stat),
        (0i32..8, 0u64..256, 0u64..256).prop_map(|(fd, len, off)| Queued::Pread { fd, len, off }),
        (
            0i32..8,
            proptest::collection::vec(any::<u8>(), 0..128),
            0u64..256
        )
            .prop_map(|(fd, data, off)| Queued::Pwrite { fd, data, off }),
        (
            hostile_path(),
            proptest::collection::vec(any::<u8>(), 0..128)
        )
            .prop_map(|(path, data)| Queued::Putfile { path, data }),
        hostile_path().prop_map(Queued::GetdirStat),
        proptest::collection::vec(hostile_path(), 1..4).prop_map(Queued::StatMulti),
    ]
}

/// A reply the "server" side stages for one queued request, and the
/// verdict the client must settle for it.
#[derive(Debug, Clone)]
enum Staged {
    /// A non-negative status (with a body for [`ReplyShape::Body`]).
    Ok(Vec<u8>),
    /// A well-formed negative status: a settled protocol verdict that
    /// keeps the pipeline alive.
    ProtocolErr(ChirpError),
}

fn staged() -> impl Strategy<Value = Staged> {
    prop_oneof![
        proptest::collection::vec(hostile_byte(), 0..64).prop_map(Staged::Ok),
        (0usize..4).prop_map(|i| Staged::ProtocolErr(
            [
                ChirpError::NotFound,
                ChirpError::NotAuthorized,
                ChirpError::BadFd,
                ChirpError::IsADirectory,
            ][i]
        )),
    ]
}

/// Encode `staged` replies for `specs` into one reply stream and the
/// verdict list the client must observe, in order.
fn stage_replies(specs: &[Queued], staged: &[Staged]) -> (Vec<u8>, Vec<Result<Reply, ChirpError>>) {
    let mut stream = Vec::new();
    let mut expected = Vec::new();
    for (spec, st) in specs.iter().zip(staged) {
        match st {
            Staged::ProtocolErr(e) => {
                wire::write_error(&mut stream, *e).unwrap();
                expected.push(Err(*e));
            }
            Staged::Ok(body) => match spec.shape() {
                ReplyShape::Status => {
                    let value = body.len() as i64;
                    wire::write_status(&mut stream, value).unwrap();
                    expected.push(Ok(Reply::Status(StatusLine {
                        value,
                        words: vec![],
                    })));
                }
                ReplyShape::Body => {
                    wire::write_status(&mut stream, body.len() as i64).unwrap();
                    stream.extend_from_slice(body);
                    expected.push(Ok(Reply::Body(
                        StatusLine {
                            value: body.len() as i64,
                            words: vec![],
                        },
                        body.clone(),
                    )));
                }
            },
        }
    }
    (stream, expected)
}

/// Bytes that must never parse as a status line: either a non-numeric
/// first token, or raw non-UTF-8 noise.
fn garble() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        "[a-zA-Z%]{1,12}".prop_map(|junk| format!("{junk} 5\n").into_bytes()),
        (0u8..2).prop_map(|_| b"\xff\xfe mid-stream noise\n".to_vec()),
        // Immediate EOF: the stream just ends.
        (0u8..2).prop_map(|_| Vec::new()),
    ]
}

proptest! {
    // Client side of the framing contract: an arbitrary queue of
    // requests — hostile paths, raw payloads riding between request
    // lines — written through the pipeline decodes, with the plain
    // server-side read loop, to exactly the op sequence that was
    // queued. One leaked newline or one mis-sized payload length and
    // a later frame shears.
    #[test]
    fn queued_requests_decode_to_the_same_op_sequence(
        specs in proptest::collection::vec(queued(), 1..10),
    ) {
        let empty = b"";
        let mut reader = BufReader::new(&empty[..]);
        let mut writer = Vec::new();
        let mut pipe = PipelinedConn::new(&mut reader, &mut writer, specs.len());
        for spec in &specs {
            pipe.send(&spec.request(), spec.payload(), spec.shape()).unwrap();
        }
        pipe.flush().unwrap();
        prop_assert_eq!(pipe.in_flight(), specs.len());
        drop(pipe);

        let mut server = BufReader::new(&writer[..]);
        for spec in &specs {
            let line = read_line(&mut server).unwrap().expect("a queued frame");
            let decoded = Request::parse(&line).unwrap();
            prop_assert_eq!(&decoded, &spec.request());
            let body = read_payload(&mut server, decoded.payload_len()).unwrap();
            prop_assert_eq!(body.as_slice(), spec.payload().unwrap_or(&[]));
        }
        prop_assert!(read_line(&mut server).unwrap().is_none(), "stream fully consumed");
    }

    // FIFO settlement under arbitrary send/recv interleavings: however
    // the schedule slices the window, the k-th settled verdict is the
    // k-th staged reply — values, bodies, and protocol errors alike.
    #[test]
    fn replies_settle_fifo_under_arbitrary_interleavings(
        pairs in proptest::collection::vec((queued(), staged()), 1..10),
        schedule in proptest::collection::vec(any::<bool>(), 0..24),
        depth in 1usize..5,
    ) {
        let (specs, staged): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
        let (stream, expected) = stage_replies(&specs, &staged);
        let mut reader = BufReader::new(&stream[..]);
        let mut writer = Vec::new();
        let mut pipe = PipelinedConn::new(&mut reader, &mut writer, depth);

        let mut next_send = 0;
        let mut verdicts: Vec<Result<Reply, ChirpError>> = Vec::new();
        // `true` = try to send the next request, `false` = settle one;
        // either falls back to the other move at a window edge.
        for send_next in schedule {
            let can_send = next_send < specs.len() && pipe.has_room();
            let can_recv = pipe.in_flight() > 0;
            if (send_next || !can_recv) && can_send {
                let spec = &specs[next_send];
                pipe.send(&spec.request(), spec.payload(), spec.shape()).unwrap();
                next_send += 1;
            } else if can_recv {
                verdicts.push(pipe.recv());
            }
        }
        while next_send < specs.len() {
            if pipe.has_room() {
                let spec = &specs[next_send];
                pipe.send(&spec.request(), spec.payload(), spec.shape()).unwrap();
                next_send += 1;
            } else {
                verdicts.push(pipe.recv());
            }
        }
        verdicts.extend(pipe.settle_all());

        prop_assert!(!pipe.is_dead());
        prop_assert_eq!(verdicts.len(), expected.len());
        for (i, (got, want)) in verdicts.iter().zip(&expected).enumerate() {
            prop_assert_eq!(got, want, "verdict {i} out of order");
        }
    }

    // Total error classification: a garbled status line (or EOF) at
    // position `g` settles request `g` as a transport loss and every
    // request behind it as `Disconnected` — even when perfectly
    // well-formed status lines follow the garble. A later request must
    // never inherit one of those as its verdict.
    #[test]
    fn garbled_status_mid_pipeline_never_becomes_a_later_verdict(
        pairs in proptest::collection::vec((queued(), staged()), 1..8),
        extra in proptest::collection::vec(queued(), 1..5),
        noise in garble(),
        g_pick in 0usize..8,
    ) {
        let (specs, staged): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
        let g = g_pick % specs.len();
        // Stage good replies only for the first `g` requests...
        let (mut stream, expected) = stage_replies(&specs[..g], &staged[..g]);
        // ...then the garble, then lines that would be valid verdicts
        // (a success and a protocol error) if framing were ignored.
        stream.extend_from_slice(&noise);
        if !noise.is_empty() {
            wire::write_status(&mut stream, 0).unwrap();
            wire::write_error(&mut stream, ChirpError::NotFound).unwrap();
        }

        let all: Vec<Queued> = specs.into_iter().chain(extra).collect();
        let mut reader = BufReader::new(&stream[..]);
        let mut writer = Vec::new();
        let mut pipe = PipelinedConn::new(&mut reader, &mut writer, all.len());
        for spec in &all {
            pipe.send(&spec.request(), spec.payload(), spec.shape()).unwrap();
        }
        let verdicts = pipe.settle_all();

        prop_assert_eq!(verdicts.len(), all.len(), "classification is total");
        for (i, (got, want)) in verdicts.iter().zip(&expected).enumerate() {
            prop_assert_eq!(got, want, "settled verdict {i} changed");
        }
        for (i, v) in verdicts.iter().enumerate().skip(g) {
            prop_assert_eq!(
                v.as_ref().unwrap_err(),
                &ChirpError::Disconnected,
                "request {i} took a verdict from beyond the garble"
            );
        }
        prop_assert!(pipe.is_dead());
        prop_assert_eq!(
            pipe.send(&Request::Whoami, None, ReplyShape::Status).unwrap_err(),
            ChirpError::Disconnected,
            "a dead pipe must refuse new work"
        );
    }
}

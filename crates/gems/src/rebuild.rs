//! Database recovery by rescanning the file servers.
//!
//! §5: "In the DSDB, the database could even be recovered
//! automatically by rescanning the existing file data." Every replica
//! is stored with a sidecar (`<data>.meta`) carrying the record's
//! name, checksum, target, and attributes; rebuilding walks every pool
//! volume, verifies each replica against its sidecar's checksum, and
//! reassembles the records.

use std::collections::HashMap;
use std::io;

use crate::record::{FileRecord, Replica};
use crate::system::{sidecar_path, Gems};

/// What a rebuild pass reconstructed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RebuildReport {
    /// Records written into the database.
    pub records: u64,
    /// Verified replicas attached across all records.
    pub replicas: u64,
    /// Replicas skipped because data was missing or failed its
    /// sidecar's checksum.
    pub rejected: u64,
}

/// Rescan every pool server and reconstruct the database.
///
/// Existing records with the same names are replaced (rebuild is for a
/// lost or empty database). Replicas whose contents do not match their
/// sidecar's checksum are rejected, so a stale or tampered copy cannot
/// poison the rebuilt index.
pub fn rebuild(gems: &Gems) -> io::Result<RebuildReport> {
    let mut report = RebuildReport::default();
    // name -> (record core, replicas)
    let mut assembled: HashMap<String, FileRecord> = HashMap::new();
    for server in gems.config.pool.clone() {
        let cfs = gems.conn_for(&server.endpoint, &server.auth);
        let names = match tss_core::fs::FileSystem::readdir(cfs.as_ref(), &server.volume) {
            Ok(n) => n,
            Err(_) => continue, // unreachable server: rebuild from the rest
        };
        for name in names {
            let Some(_) = name.strip_suffix(".meta") else {
                continue;
            };
            let meta_path = format!("{}/{name}", server.volume);
            let data_path = meta_path.trim_end_matches(".meta").to_string();
            debug_assert_eq!(sidecar_path(&data_path), meta_path);
            let Ok(body) = cfs.getfile(&meta_path) else {
                report.rejected += 1;
                continue;
            };
            let Some(core) = std::str::from_utf8(&body).ok().and_then(FileRecord::parse) else {
                report.rejected += 1;
                continue;
            };
            // Verify the data really matches the claimed checksum
            // before advertising it.
            if cfs.checksum(&data_path).ok() != Some(core.checksum) {
                report.rejected += 1;
                continue;
            }
            let entry = assembled
                .entry(core.name.clone())
                .or_insert_with(|| core.clone());
            if entry.checksum != core.checksum {
                // Conflicting generations of the same name: keep the
                // one seen first, reject the other copy.
                report.rejected += 1;
                continue;
            }
            entry.replicas.push(Replica {
                endpoint: server.endpoint.clone(),
                path: data_path,
            });
            report.replicas += 1;
        }
    }
    for rec in assembled.values() {
        gems.db.lock().put(rec)?;
        report.records += 1;
    }
    Ok(report)
}

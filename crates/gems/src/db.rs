//! The GEMS database server and client.
//!
//! A small record store over TCP: insert/replace, fetch, delete, list,
//! and attribute queries with wildcard patterns. Records are persisted
//! as one snapshot file per record under a spool directory, so a
//! restarted database recovers its index — and, as §5 notes, even a
//! lost database can be rebuilt by rescanning the file servers, since
//! every replica lives in a distinguishable directory.

use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use chirp_proto::escape::{escape, unescape};
use chirp_proto::wire;
use chirp_proto::ChirpError;
use parking_lot::RwLock;

use crate::record::FileRecord;

/// Wildcard match shared with the ACL engine's semantics: `*` matches
/// any run of characters.
fn wildcard(pattern: &str, text: &str) -> bool {
    // Local copy to keep crate dependencies acyclic.
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

struct Store {
    records: RwLock<BTreeMap<String, FileRecord>>,
    spool: Option<PathBuf>,
}

impl Store {
    fn load(spool: Option<PathBuf>) -> std::io::Result<Store> {
        let mut records = BTreeMap::new();
        if let Some(dir) = &spool {
            std::fs::create_dir_all(dir)?;
            for entry in std::fs::read_dir(dir)? {
                let entry = entry?;
                if let Ok(text) = std::fs::read_to_string(entry.path()) {
                    if let Some(rec) = FileRecord::parse(&text) {
                        records.insert(rec.name.clone(), rec);
                    }
                }
            }
        }
        Ok(Store {
            records: RwLock::new(records),
            spool,
        })
    }

    fn spool_path(&self, name: &str) -> Option<PathBuf> {
        self.spool
            .as_ref()
            .map(|d| d.join(format!("{:016x}.rec", chirp_proto::crc64(name.as_bytes()))))
    }

    fn put(&self, rec: FileRecord) -> std::io::Result<()> {
        if let Some(p) = self.spool_path(&rec.name) {
            std::fs::write(p, rec.render())?;
        }
        self.records.write().insert(rec.name.clone(), rec);
        Ok(())
    }

    fn delete(&self, name: &str) -> bool {
        if let Some(p) = self.spool_path(name) {
            let _ = std::fs::remove_file(p);
        }
        self.records.write().remove(name).is_some()
    }
}

/// A running GEMS database server.
pub struct DbServer {
    store: Arc<Store>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl DbServer {
    /// Start an in-memory database on a loopback ephemeral port.
    pub fn start_ephemeral() -> std::io::Result<DbServer> {
        DbServer::start("127.0.0.1:0".parse().expect("literal"), None)
    }

    /// Start a database, optionally persisting records under `spool`.
    pub fn start(bind: SocketAddr, spool: Option<PathBuf>) -> std::io::Result<DbServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let store = Arc::new(Store::load(spool)?);
        let shutdown = Arc::new(AtomicBool::new(false));
        let (st, sh) = (store.clone(), shutdown.clone());
        let accept = std::thread::Builder::new()
            .name("gems-db".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if sh.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(stream) = conn else { continue };
                    let st = st.clone();
                    let _ = std::thread::Builder::new()
                        .name("gems-db-conn".into())
                        .spawn(move || {
                            let _ = serve(stream, &st);
                        });
                }
            })?;
        Ok(DbServer {
            store,
            addr,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of records currently stored.
    pub fn len(&self) -> usize {
        self.store.records.read().len()
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stop the service.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for DbServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve(stream: TcpStream, store: &Store) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let Some(line) = wire::read_line(&mut reader)? else {
            return Ok(());
        };
        let words: Vec<&str> = line.split(' ').filter(|w| !w.is_empty()).collect();
        match words.as_slice() {
            ["PUT", len] => {
                let Ok(len) = len.parse::<u64>() else {
                    wire::write_error(&mut writer, ChirpError::InvalidRequest)?;
                    writer.flush()?;
                    continue;
                };
                let body = match wire::read_payload(&mut reader, len) {
                    Ok(b) => b,
                    Err(e) => {
                        wire::write_error(&mut writer, e)?;
                        writer.flush()?;
                        return Ok(());
                    }
                };
                let parsed = std::str::from_utf8(&body).ok().and_then(FileRecord::parse);
                match parsed {
                    Some(rec) => {
                        store.put(rec)?;
                        wire::write_status(&mut writer, 0)?;
                    }
                    None => wire::write_error(&mut writer, ChirpError::InvalidRequest)?,
                }
            }
            ["GET", name] => {
                let name = unescape(name)
                    .and_then(|b| String::from_utf8(b).ok())
                    .unwrap_or_default();
                match store.records.read().get(&name) {
                    Some(rec) => {
                        let body = rec.render();
                        wire::write_status(&mut writer, body.len() as i64)?;
                        writer.write_all(body.as_bytes())?;
                    }
                    None => wire::write_error(&mut writer, ChirpError::NotFound)?,
                }
            }
            ["DEL", name] => {
                let name = unescape(name)
                    .and_then(|b| String::from_utf8(b).ok())
                    .unwrap_or_default();
                if store.delete(&name) {
                    wire::write_status(&mut writer, 0)?;
                } else {
                    wire::write_error(&mut writer, ChirpError::NotFound)?;
                }
            }
            ["LIST"] => {
                let names: Vec<String> = store
                    .records
                    .read()
                    .keys()
                    .map(|n| escape(n.as_bytes()))
                    .collect();
                let body = names.join("\n");
                wire::write_status(&mut writer, body.len() as i64)?;
                writer.write_all(body.as_bytes())?;
            }
            ["QUERYALL", len] => {
                // Conjunctive query: the payload carries one
                // `key pattern` pair per line; a record matches when
                // every constraint matches.
                let Ok(len) = len.parse::<u64>() else {
                    wire::write_error(&mut writer, ChirpError::InvalidRequest)?;
                    writer.flush()?;
                    continue;
                };
                let body = match wire::read_payload(&mut reader, len) {
                    Ok(b) => b,
                    Err(e) => {
                        wire::write_error(&mut writer, e)?;
                        writer.flush()?;
                        return Ok(());
                    }
                };
                let text = String::from_utf8_lossy(&body);
                let mut constraints: Vec<(String, String)> = Vec::new();
                let mut malformed = false;
                for line in text.lines() {
                    let mut w = line.split(' ');
                    let (Some(k), Some(p)) = (w.next(), w.next()) else {
                        malformed = true;
                        break;
                    };
                    let k = unescape(k).and_then(|b| String::from_utf8(b).ok());
                    let p = unescape(p).and_then(|b| String::from_utf8(b).ok());
                    match (k, p) {
                        (Some(k), Some(p)) => constraints.push((k, p)),
                        _ => {
                            malformed = true;
                            break;
                        }
                    }
                }
                if malformed {
                    wire::write_error(&mut writer, ChirpError::InvalidRequest)?;
                    writer.flush()?;
                    continue;
                }
                let names: Vec<String> = store
                    .records
                    .read()
                    .values()
                    .filter(|r| {
                        constraints.iter().all(|(k, p)| match k.as_str() {
                            "name" => wildcard(p, &r.name),
                            k => r.attrs.get(k).is_some_and(|v| wildcard(p, v)),
                        })
                    })
                    .map(|r| escape(r.name.as_bytes()))
                    .collect();
                let body = names.join("\n");
                wire::write_status(&mut writer, body.len() as i64)?;
                writer.write_all(body.as_bytes())?;
            }
            ["QUERY", key, pattern] => {
                let key = unescape(key)
                    .and_then(|b| String::from_utf8(b).ok())
                    .unwrap_or_default();
                let pattern = unescape(pattern)
                    .and_then(|b| String::from_utf8(b).ok())
                    .unwrap_or_default();
                let names: Vec<String> = store
                    .records
                    .read()
                    .values()
                    .filter(|r| match key.as_str() {
                        "name" => wildcard(&pattern, &r.name),
                        k => r.attrs.get(k).is_some_and(|v| wildcard(&pattern, v)),
                    })
                    .map(|r| escape(r.name.as_bytes()))
                    .collect();
                let body = names.join("\n");
                wire::write_status(&mut writer, body.len() as i64)?;
                writer.write_all(body.as_bytes())?;
            }
            _ => wire::write_error(&mut writer, ChirpError::InvalidRequest)?,
        }
        writer.flush()?;
    }
}

/// A blocking client for the GEMS database.
pub struct DbClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl DbClient {
    /// Connect to a database server.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<DbClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::from(std::io::ErrorKind::InvalidInput))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(DbClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Insert or replace a record.
    pub fn put(&mut self, rec: &FileRecord) -> std::io::Result<()> {
        let body = rec.render();
        write!(self.writer, "PUT {}\n{}", body.len(), body)?;
        self.writer.flush()?;
        wire::read_status(&mut self.reader)?;
        Ok(())
    }

    /// Fetch a record by name.
    pub fn get(&mut self, name: &str) -> std::io::Result<FileRecord> {
        writeln!(self.writer, "GET {}", escape(name.as_bytes()))?;
        self.writer.flush()?;
        let st = wire::read_status(&mut self.reader)?;
        let body = wire::read_payload(&mut self.reader, st.value as u64)?;
        std::str::from_utf8(&body)
            .ok()
            .and_then(FileRecord::parse)
            .ok_or_else(|| std::io::Error::from(std::io::ErrorKind::InvalidData))
    }

    /// Delete a record.
    pub fn delete(&mut self, name: &str) -> std::io::Result<()> {
        writeln!(self.writer, "DEL {}", escape(name.as_bytes()))?;
        self.writer.flush()?;
        wire::read_status(&mut self.reader)?;
        Ok(())
    }

    /// List all record names.
    pub fn list(&mut self) -> std::io::Result<Vec<String>> {
        writeln!(self.writer, "LIST")?;
        self.writer.flush()?;
        self.read_names()
    }

    /// Names of records matching *every* `(key, pattern)` constraint
    /// (key `name` queries the logical name).
    pub fn query_all(&mut self, constraints: &[(&str, &str)]) -> std::io::Result<Vec<String>> {
        let mut body = String::new();
        for (k, p) in constraints {
            body.push_str(&format!(
                "{} {}\n",
                escape(k.as_bytes()),
                escape(p.as_bytes())
            ));
        }
        write!(self.writer, "QUERYALL {}\n{}", body.len(), body)?;
        self.writer.flush()?;
        self.read_names()
    }

    /// Names of records whose attribute `key` matches the wildcard
    /// `pattern` (key `name` queries the logical name).
    pub fn query(&mut self, key: &str, pattern: &str) -> std::io::Result<Vec<String>> {
        writeln!(
            self.writer,
            "QUERY {} {}",
            escape(key.as_bytes()),
            escape(pattern.as_bytes())
        )?;
        self.writer.flush()?;
        self.read_names()
    }

    fn read_names(&mut self) -> std::io::Result<Vec<String>> {
        let st = wire::read_status(&mut self.reader)?;
        let body = wire::read_payload(&mut self.reader, st.value as u64)?;
        let text = String::from_utf8(body)
            .map_err(|_| std::io::Error::from(std::io::ErrorKind::InvalidData))?;
        Ok(text
            .split('\n')
            .filter(|s| !s.is_empty())
            .filter_map(|w| unescape(w).and_then(|b| String::from_utf8(b).ok()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_proto::testutil::TempDir;

    fn client(server: &DbServer) -> DbClient {
        DbClient::connect(server.addr(), Duration::from_secs(5)).unwrap()
    }

    fn rec(name: &str, project: &str) -> FileRecord {
        let mut r = FileRecord::new(name, 100, 0xabc, 2);
        r.attrs.insert("project".into(), project.into());
        r
    }

    #[test]
    fn put_get_delete() {
        let server = DbServer::start_ephemeral().unwrap();
        let mut c = client(&server);
        c.put(&rec("a", "p1")).unwrap();
        assert_eq!(c.get("a").unwrap().attrs["project"], "p1");
        c.delete("a").unwrap();
        assert!(c.get("a").is_err());
        assert!(c.delete("a").is_err());
    }

    #[test]
    fn put_replaces_by_name() {
        let server = DbServer::start_ephemeral().unwrap();
        let mut c = client(&server);
        c.put(&rec("a", "p1")).unwrap();
        c.put(&rec("a", "p2")).unwrap();
        assert_eq!(server.len(), 1);
        assert_eq!(c.get("a").unwrap().attrs["project"], "p2");
    }

    #[test]
    fn query_by_attribute_and_name() {
        let server = DbServer::start_ephemeral().unwrap();
        let mut c = client(&server);
        c.put(&rec("run1/out", "protomol")).unwrap();
        c.put(&rec("run2/out", "protomol")).unwrap();
        c.put(&rec("other", "babar")).unwrap();
        let mut hits = c.query("project", "proto*").unwrap();
        hits.sort();
        assert_eq!(hits, vec!["run1/out", "run2/out"]);
        assert_eq!(c.query("name", "run2*").unwrap(), vec!["run2/out"]);
        assert!(c.query("project", "nomatch").unwrap().is_empty());
        assert!(c.query("absentkey", "*").unwrap().is_empty());
    }

    #[test]
    fn conjunctive_query_requires_every_constraint() {
        let server = DbServer::start_ephemeral().unwrap();
        let mut c = client(&server);
        let mut r1 = rec("hot-bpti", "protomol");
        r1.attrs.insert("temperature".into(), "310K".into());
        let mut r2 = rec("cold-bpti", "protomol");
        r2.attrs.insert("temperature".into(), "290K".into());
        let mut r3 = rec("hot-other", "babar");
        r3.attrs.insert("temperature".into(), "310K".into());
        c.put(&r1).unwrap();
        c.put(&r2).unwrap();
        c.put(&r3).unwrap();
        let hits = c
            .query_all(&[("project", "protomol"), ("temperature", "310K")])
            .unwrap();
        assert_eq!(hits, vec!["hot-bpti"]);
        // Empty constraint list matches everything.
        assert_eq!(c.query_all(&[]).unwrap().len(), 3);
        // Name constraints compose with attribute constraints.
        let hits = c
            .query_all(&[("name", "*bpti"), ("project", "protomol")])
            .unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn persistence_across_restart() {
        let dir = TempDir::new();
        let spool = dir.path().join("spool");
        let addr;
        {
            let mut server =
                DbServer::start("127.0.0.1:0".parse().unwrap(), Some(spool.clone())).unwrap();
            addr = server.addr();
            let mut c = client(&server);
            c.put(&rec("survives", "p")).unwrap();
            server.shutdown();
        }
        let _ = addr;
        let server2 = DbServer::start("127.0.0.1:0".parse().unwrap(), Some(spool)).unwrap();
        let mut c = DbClient::connect(server2.addr(), Duration::from_secs(5)).unwrap();
        assert_eq!(c.get("survives").unwrap().attrs["project"], "p");
    }

    #[test]
    fn concurrent_clients() {
        let server = DbServer::start_ephemeral().unwrap();
        let addr = server.addr();
        let mut handles = Vec::new();
        for i in 0..4 {
            handles.push(std::thread::spawn(move || {
                let mut c = DbClient::connect(addr, Duration::from_secs(5)).unwrap();
                for j in 0..25 {
                    c.put(&rec(&format!("f{i}-{j}"), "p")).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.len(), 100);
    }
}

//! GEMS — Grid Enabled Molecular Simulations: the distributed shared
//! database (DSDB) abstraction of §5 and §9.
//!
//! Scientific data is often better served by a database than a
//! filesystem: simulation outputs must be indexed, searched, and
//! replicated. GEMS stores file data on ordinary Chirp file servers
//! and indexes it in a *database server* ([`db`]) that records, for
//! every file, its size, checksum, free-form attributes, and the
//! location of every replica. Clients query the database for matching
//! files and then access the data directly on the file servers with
//! the ordinary adapter machinery — the DSDB is just the DSFS with a
//! richer directory service.
//!
//! Two active components maintain the data (§9):
//!
//! * the **auditor** ([`auditor`]) periodically scans the database and
//!   verifies the location (stat) and integrity (server-side checksum)
//!   of every replica, pruning the ones that are damaged or missing;
//! * the **replicator** ([`replicator`]) examines the deficits the
//!   auditor exposed and repairs them by copying from the remaining
//!   replicas, up to each file's replica target.
//!
//! Together they reproduce the preservation behavior of Figure 9: data
//! is replicated up to a space budget, and induced failures are
//! discovered and healed. The paper-scale time series is simulated in
//! `simnet::gems`; this crate is the real thing at test scale.

#![warn(missing_docs)]

pub mod auditor;
pub mod daemons;
pub mod db;
pub mod rebuild;
pub mod record;
pub mod replicator;
pub mod system;

pub use auditor::{audit_once, AuditReport};
pub use daemons::GemsDaemons;
pub use db::{DbClient, DbServer};
pub use rebuild::{rebuild, RebuildReport};
pub use record::FileRecord;
pub use replicator::{replicate_once, ReplicationReport};
pub use system::{Gems, GemsConfig, GemsPool, Placer};

//! Background maintenance: the auditor and replicator as long-running
//! threads, as deployed at Notre Dame (§9) — "two active components
//! work in concert to maintain replicas."

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::system::Gems;

/// Handle to the running maintenance threads.
pub struct GemsDaemons {
    shutdown: Arc<AtomicBool>,
    cycles: Arc<AtomicU64>,
    repaired: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl GemsDaemons {
    /// Start the maintenance loop: every `period`, one audit pass
    /// followed by one repair pass. The first cycle runs immediately.
    pub fn spawn(gems: Arc<Gems>, period: Duration) -> GemsDaemons {
        let shutdown = Arc::new(AtomicBool::new(false));
        let cycles = Arc::new(AtomicU64::new(0));
        let repaired = Arc::new(AtomicU64::new(0));
        let (sh, cy, rp) = (shutdown.clone(), cycles.clone(), repaired.clone());
        let thread = std::thread::Builder::new()
            .name("gems-maintenance".into())
            .spawn(move || {
                let tick = Duration::from_millis(20);
                let mut since = period; // fire immediately
                loop {
                    if sh.load(Ordering::SeqCst) {
                        return;
                    }
                    if since >= period {
                        since = Duration::ZERO;
                        // Failures here must not kill the daemon: the
                        // whole point is surviving flaky storage.
                        let _ = crate::auditor::audit_once(&gems);
                        if let Ok(report) = crate::replicator::replicate_once(&gems, usize::MAX) {
                            rp.fetch_add(report.copied, Ordering::Relaxed);
                        }
                        cy.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::sleep(tick);
                    since += tick;
                }
            })
            .expect("spawn maintenance thread");
        GemsDaemons {
            shutdown,
            cycles,
            repaired,
            thread: Some(thread),
        }
    }

    /// Completed audit+repair cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Total replicas restored since start.
    pub fn repaired(&self) -> u64 {
        self.repaired.load(Ordering::Relaxed)
    }

    /// Block until at least `n` cycles have completed or `timeout`
    /// expires; true on success.
    pub fn wait_for_cycles(&self, n: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if self.cycles() >= n {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        false
    }

    /// Stop the maintenance loop.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for GemsDaemons {
    fn drop(&mut self) {
        self.shutdown();
    }
}

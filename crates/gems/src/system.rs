//! The assembled GEMS system: database + file server pool.

use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use chirp_client::AuthMethod;
use parking_lot::Mutex;
use tss_core::cfs::{Cfs, CfsConfig, RetryPolicy};
use tss_core::stubfs::DataServer;

use crate::db::DbClient;
use crate::record::{FileRecord, Replica};

/// One storage server in the GEMS pool (endpoint + volume + auth) —
/// the same shape a DSFS data pool uses.
pub type GemsPool = Vec<DataServer>;

/// The sidecar metadata file stored beside a replica's data.
pub fn sidecar_path(data_path: &str) -> String {
    format!("{data_path}.meta")
}

/// An external ranking of placement candidates.
///
/// The default GEMS placement probes each pool server's free space
/// with a `statfs` RPC at placement time. A `Placer` replaces that
/// with an externally informed ordering — the control plane's
/// placement engine ranks endpoints by live catalog metrics (load,
/// free space) without touching the servers at all.
pub trait Placer: Send + Sync + std::fmt::Debug {
    /// Order candidate endpoints best-first. Endpoints absent from
    /// the returned list are never picked; an empty return falls the
    /// caller back to its default policy.
    fn rank(&self, candidates: &[String]) -> Vec<String>;
}

/// Configuration of a GEMS client.
#[derive(Debug, Clone)]
pub struct GemsConfig {
    /// Database server address.
    pub db_addr: SocketAddr,
    /// Storage servers replicas may be placed on.
    pub pool: GemsPool,
    /// Default replica target for newly ingested files.
    pub default_target: u32,
    /// Network timeout.
    pub timeout: Duration,
    /// Recovery policy for storage connections.
    pub retry: RetryPolicy,
    /// Optional external placement ranking; `None` keeps the classic
    /// statfs max-free-space policy.
    pub placer: Option<Arc<dyn Placer>>,
}

impl GemsConfig {
    /// A config with library defaults.
    pub fn new(db_addr: SocketAddr, pool: GemsPool) -> GemsConfig {
        GemsConfig {
            db_addr,
            pool,
            default_target: 2,
            timeout: Duration::from_secs(10),
            retry: RetryPolicy::default(),
            placer: None,
        }
    }

    /// Rank placements with `placer` instead of probing free space.
    pub fn with_placer(mut self, placer: Arc<dyn Placer>) -> GemsConfig {
        self.placer = Some(placer);
        self
    }
}

/// A GEMS session: ingest, search, fetch, and maintain replicated
/// scientific data.
pub struct Gems {
    pub(crate) config: GemsConfig,
    pub(crate) db: Mutex<DbClient>,
    conns: Mutex<HashMap<String, Arc<Cfs>>>,
}

impl Gems {
    /// Connect to the database and prepare the pool volumes.
    pub fn connect(config: GemsConfig) -> io::Result<Gems> {
        let db = DbClient::connect(config.db_addr, config.timeout)?;
        let gems = Gems {
            config,
            db: Mutex::new(db),
            conns: Mutex::new(HashMap::new()),
        };
        for server in gems.config.pool.clone() {
            let cfs = gems.conn_for(&server.endpoint, &server.auth);
            match tss_core::fs::FileSystem::mkdir(cfs.as_ref(), &server.volume, 0o755) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {}
                Err(e) => return Err(e),
            }
        }
        Ok(gems)
    }

    /// Connection to a storage endpoint, cached per endpoint.
    pub(crate) fn conn_for(&self, endpoint: &str, auth: &[AuthMethod]) -> Arc<Cfs> {
        let mut conns = self.conns.lock();
        conns
            .entry(endpoint.to_string())
            .or_insert_with(|| {
                let mut cfg = CfsConfig::new(endpoint, auth.to_vec());
                cfg.timeout = self.config.timeout;
                cfg.retry = self.config.retry;
                Arc::new(Cfs::new(cfg))
            })
            .clone()
    }

    /// Connection for a replica: pool auth if the endpoint is pooled,
    /// else the first pool entry's auth.
    pub(crate) fn conn_for_replica(&self, replica: &Replica) -> Arc<Cfs> {
        let auth = self
            .config
            .pool
            .iter()
            .find(|s| s.endpoint == replica.endpoint)
            .or_else(|| self.config.pool.first())
            .map(|s| s.auth.clone())
            .unwrap_or_default();
        self.conn_for(&replica.endpoint, &auth)
    }

    /// Pick the pool server a new replica of `rec` should land on:
    /// the configured [`Placer`]'s top-ranked eligible endpoint when
    /// one is set, else the eligible server with the most free space
    /// (probed by `statfs`).
    pub(crate) fn place(&self, rec: &FileRecord) -> Option<&DataServer> {
        let eligible: Vec<&DataServer> = self
            .config
            .pool
            .iter()
            .filter(|s| !rec.replicas.iter().any(|r| r.endpoint == s.endpoint))
            .collect();
        if let Some(placer) = &self.config.placer {
            let names: Vec<String> = eligible.iter().map(|s| s.endpoint.clone()).collect();
            for pick in placer.rank(&names) {
                if let Some(server) = eligible.iter().find(|s| s.endpoint == pick) {
                    return Some(server);
                }
            }
            // An empty (or fully non-eligible) ranking falls back to
            // the probe below so ingest still succeeds.
        }
        eligible.into_iter().max_by_key(|s| {
            let cfs = self.conn_for(&s.endpoint, &s.auth);
            cfs.statfs().map(|st| st.free_bytes).unwrap_or(0)
        })
    }

    /// Store `data` under the logical `name` with searchable
    /// attributes; writes one replica and registers the record. The
    /// replicator brings it up to the target.
    pub fn ingest(
        &self,
        name: &str,
        attrs: &[(&str, &str)],
        data: &[u8],
    ) -> io::Result<FileRecord> {
        let checksum = chirp_proto::crc64(data);
        let mut rec = FileRecord::new(
            name,
            data.len() as u64,
            checksum,
            self.config.default_target,
        );
        for (k, v) in attrs {
            rec.attrs.insert(k.to_string(), v.to_string());
        }
        let server = self
            .place(&rec)
            .ok_or_else(|| io::Error::new(io::ErrorKind::Unsupported, "empty GEMS pool"))?
            .clone();
        let path = format!(
            "{}/{}",
            server.volume,
            tss_core::placement::unique_data_name()
        );
        let cfs = self.conn_for(&server.endpoint, &server.auth);
        cfs.putfile(&path, 0o644, data)?;
        // Sidecar metadata makes the database rebuildable by rescan.
        cfs.putfile(&sidecar_path(&path), 0o644, rec.render_sidecar().as_bytes())?;
        rec.replicas.push(Replica {
            endpoint: server.endpoint.clone(),
            path,
        });
        self.db.lock().put(&rec)?;
        Ok(rec)
    }

    /// Fetch a file's contents, trying replicas in order and verifying
    /// the checksum — the loss of any one device leaves the data
    /// reachable through the others (failure coherence).
    pub fn fetch(&self, name: &str) -> io::Result<Vec<u8>> {
        let rec = self.db.lock().get(name)?;
        let mut last: io::Error = io::ErrorKind::NotFound.into();
        for replica in &rec.replicas {
            let cfs = self.conn_for_replica(replica);
            match cfs.getfile(&replica.path) {
                Ok(data) if chirp_proto::crc64(&data) == rec.checksum => return Ok(data),
                Ok(_) => {
                    last = io::Error::new(io::ErrorKind::InvalidData, "replica checksum mismatch")
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// The storage pool this session places data on.
    pub fn pool(&self) -> &GemsPool {
        &self.config.pool
    }

    /// The record for a logical name.
    pub fn record(&self, name: &str) -> io::Result<FileRecord> {
        self.db.lock().get(name)
    }

    /// All logical names.
    pub fn list(&self) -> io::Result<Vec<String>> {
        self.db.lock().list()
    }

    /// Names whose attribute `key` matches the wildcard `pattern`.
    pub fn query(&self, key: &str, pattern: &str) -> io::Result<Vec<String>> {
        self.db.lock().query(key, pattern)
    }

    /// Names matching *every* `(key, pattern)` constraint.
    pub fn query_all(&self, constraints: &[(&str, &str)]) -> io::Result<Vec<String>> {
        self.db.lock().query_all(constraints)
    }

    /// Remove a file everywhere: every replica, then the record
    /// (data first, then metadata, as in the DSFS delete protocol).
    pub fn delete(&self, name: &str) -> io::Result<()> {
        let rec = self.db.lock().get(name)?;
        for replica in &rec.replicas {
            let cfs = self.conn_for_replica(replica);
            for path in [replica.path.clone(), sidecar_path(&replica.path)] {
                match tss_core::fs::FileSystem::unlink(cfs.as_ref(), &path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
            }
        }
        self.db.lock().delete(name)
    }

    /// Register an existing copy of `name`'s data at `endpoint:path`
    /// as a replica: verify the bytes match the record's checksum,
    /// drop the sidecar beside them, and record the location. This is
    /// how out-of-band distribution (the control plane's THIRDPUT
    /// trees) hands finished copies back to the database.
    pub fn register_replica(&self, name: &str, endpoint: &str, path: &str) -> io::Result<()> {
        let mut rec = self.db.lock().get(name)?;
        if rec
            .replicas
            .iter()
            .any(|r| r.endpoint == endpoint && r.path == path)
        {
            return Ok(());
        }
        let cfs = self.conn_for_replica(&Replica {
            endpoint: endpoint.to_string(),
            path: path.to_string(),
        });
        let data = cfs.getfile(path)?;
        if chirp_proto::crc64(&data) != rec.checksum {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "replica checksum mismatch",
            ));
        }
        cfs.putfile(&sidecar_path(path), 0o644, rec.render_sidecar().as_bytes())?;
        rec.replicas.push(Replica {
            endpoint: endpoint.to_string(),
            path: path.to_string(),
        });
        self.db.lock().put(&rec)
    }

    /// One full maintenance cycle: audit everything, then repair.
    pub fn maintain(&self) -> io::Result<(crate::AuditReport, crate::ReplicationReport)> {
        let audit = crate::auditor::audit_once(self)?;
        let repair = crate::replicator::replicate_once(self, usize::MAX)?;
        Ok((audit, repair))
    }
}

//! The replicator: examine the deficits the auditor exposed and repair
//! them by re-replicating from the remaining copies.

use std::io;

use crate::record::Replica;
use crate::system::Gems;

/// What one replication pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicationReport {
    /// Records that were below their replica target.
    pub deficient: u64,
    /// Replica copies successfully created.
    pub copied: u64,
    /// Records that could not be repaired (no live source, or no
    /// eligible destination server).
    pub unrepairable: u64,
}

/// Repair up to `max_copies` missing replicas across the database.
///
/// For each under-replicated record: pick a live source replica, place
/// a new copy on the pool server with the most free space that does
/// not already hold one, and update the record. The copy travels
/// server-to-server via the `THIRDPUT` RPC where possible, falling
/// back to a pull-push through this client; either way the new copy is
/// verified with the server-side checksum before it is advertised.
pub fn replicate_once(gems: &Gems, max_copies: usize) -> io::Result<ReplicationReport> {
    let names = gems.db.lock().list()?;
    let mut report = ReplicationReport::default();
    let mut budget = max_copies;
    for name in names {
        let Ok(mut rec) = gems.db.lock().get(&name) else {
            continue;
        };
        if rec.deficit() == 0 {
            continue;
        }
        report.deficient += 1;
        let mut progressed = false;
        while rec.deficit() > 0 && budget > 0 {
            let Some(source) = verified_source(gems, &rec) else {
                break;
            };
            // A destination not yet holding this file.
            let Some(server) = gems.place(&rec).cloned() else {
                break;
            };
            let path = format!(
                "{}/{}",
                server.volume,
                tss_core::placement::unique_data_name()
            );
            if !copy_replica(gems, &rec, source, &server, &path) {
                break;
            }
            // Verify the new copy before advertising it.
            let cfs = gems.conn_for(&server.endpoint, &server.auth);
            if cfs.checksum(&path).ok() != Some(rec.checksum) {
                let _ = tss_core::fs::FileSystem::unlink(cfs.as_ref(), &path);
                break;
            }
            // Sidecar beside the new copy keeps rescan-rebuild whole.
            let cfs = gems.conn_for(&server.endpoint, &server.auth);
            cfs.putfile(
                &crate::system::sidecar_path(&path),
                0o644,
                rec.render_sidecar().as_bytes(),
            )?;
            rec.replicas.push(Replica {
                endpoint: server.endpoint.clone(),
                path,
            });
            gems.db.lock().put(&rec)?;
            report.copied += 1;
            budget -= 1;
            progressed = true;
        }
        if !progressed && rec.deficit() > 0 {
            report.unrepairable += 1;
        }
        if budget == 0 {
            break;
        }
    }
    Ok(report)
}

/// Move one copy from `source` to `path` on `server`, preferring a
/// server-to-server `THIRDPUT` so the bulk data never visits the
/// replicator host; fall back to pull-push when the source server
/// cannot reach the target (e.g. it refuses hostname subjects).
fn copy_replica(
    gems: &Gems,
    rec: &crate::FileRecord,
    source: &Replica,
    server: &tss_core::stubfs::DataServer,
    path: &str,
) -> bool {
    let src = gems.conn_for_replica(source);
    if src.thirdput(&source.path, &server.endpoint, path).is_ok() {
        return true;
    }
    // Fallback: pull to this host, push to the target.
    let Ok(data) = src.getfile(&source.path) else {
        return false;
    };
    if chirp_proto::crc64(&data) != rec.checksum {
        return false;
    }
    let dst = gems.conn_for(&server.endpoint, &server.auth);
    dst.putfile(path, 0o644, &data).is_ok()
}

/// The first replica whose server-side checksum matches the record —
/// verified without moving data.
fn verified_source<'a>(gems: &Gems, rec: &'a crate::FileRecord) -> Option<&'a Replica> {
    rec.replicas.iter().find(|replica| {
        let cfs = gems.conn_for_replica(replica);
        cfs.checksum(&replica.path).ok() == Some(rec.checksum)
    })
}

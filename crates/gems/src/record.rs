//! Database records: one per logical file.

use std::collections::BTreeMap;

use chirp_proto::escape::{escape, unescape};

/// Where one replica of a file's data lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replica {
    /// File server endpoint, `host:port`.
    pub endpoint: String,
    /// Absolute server-side path of the data.
    pub path: String,
}

/// One logical file tracked by GEMS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileRecord {
    /// Unique logical name.
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// CRC-64 of the contents, checked by the auditor.
    pub checksum: u64,
    /// Desired number of replicas.
    pub replica_target: u32,
    /// Free-form searchable attributes (`project`, `temperature`,
    /// `molecule`, ...).
    pub attrs: BTreeMap<String, String>,
    /// Current known replicas.
    pub replicas: Vec<Replica>,
}

impl FileRecord {
    /// A fresh record with no replicas.
    pub fn new(name: &str, size: u64, checksum: u64, replica_target: u32) -> FileRecord {
        FileRecord {
            name: name.to_string(),
            size,
            checksum,
            replica_target,
            attrs: BTreeMap::new(),
            replicas: Vec::new(),
        }
    }

    /// How many replicas are missing relative to the target.
    pub fn deficit(&self) -> u32 {
        self.replica_target
            .saturating_sub(self.replicas.len() as u32)
    }

    /// Render without replica locations — the sidecar form stored
    /// next to each replica so a lost database can be rebuilt by
    /// rescanning the file servers (§5).
    pub fn render_sidecar(&self) -> String {
        let mut core = self.clone();
        core.replicas.clear();
        core.render()
    }

    /// Render to the line format stored and shipped by the database.
    pub fn render(&self) -> String {
        let e = |s: &str| escape(s.as_bytes());
        let mut out = String::new();
        out.push_str(&format!("name {}\n", e(&self.name)));
        out.push_str(&format!("size {}\n", self.size));
        out.push_str(&format!("checksum {:016x}\n", self.checksum));
        out.push_str(&format!("target {}\n", self.replica_target));
        for (k, v) in &self.attrs {
            out.push_str(&format!("attr {} {}\n", e(k), e(v)));
        }
        for r in &self.replicas {
            out.push_str(&format!("replica {} {}\n", r.endpoint, e(&r.path)));
        }
        out
    }

    /// Parse the line format back.
    pub fn parse(text: &str) -> Option<FileRecord> {
        let d = |s: &str| -> Option<String> { unescape(s).and_then(|b| String::from_utf8(b).ok()) };
        let mut name = None;
        let mut size = None;
        let mut checksum = None;
        let mut target = 2u32;
        let mut attrs = BTreeMap::new();
        let mut replicas = Vec::new();
        for line in text.lines() {
            let mut it = line.splitn(2, ' ');
            let key = it.next()?;
            let rest = it.next().unwrap_or("");
            match key {
                "name" => name = Some(d(rest)?),
                "size" => size = rest.parse().ok(),
                "checksum" => checksum = u64::from_str_radix(rest, 16).ok(),
                "target" => target = rest.parse().ok()?,
                "attr" => {
                    let mut kv = rest.splitn(2, ' ');
                    let k = d(kv.next()?)?;
                    let v = d(kv.next().unwrap_or(""))?;
                    attrs.insert(k, v);
                }
                "replica" => {
                    let mut kv = rest.splitn(2, ' ');
                    let endpoint = kv.next()?.to_string();
                    let path = d(kv.next()?)?;
                    replicas.push(Replica { endpoint, path });
                }
                _ => return None,
            }
        }
        Some(FileRecord {
            name: name?,
            size: size?,
            checksum: checksum?,
            replica_target: target,
            attrs,
            replicas,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> FileRecord {
        let mut r = FileRecord::new("run5/output 12.dcd", 1 << 20, 0xdeadbeef, 3);
        r.attrs.insert("project".into(), "protomol".into());
        r.attrs.insert("temperature".into(), "310K".into());
        r.replicas.push(Replica {
            endpoint: "host1:9094".into(),
            path: "/gems/data/file-1".into(),
        });
        r.replicas.push(Replica {
            endpoint: "host2:9094".into(),
            path: "/gems/data/file-2".into(),
        });
        r
    }

    #[test]
    fn render_parse_round_trip() {
        let r = sample();
        assert_eq!(FileRecord::parse(&r.render()).unwrap(), r);
    }

    #[test]
    fn deficit_math() {
        let mut r = sample();
        assert_eq!(r.deficit(), 1);
        r.replicas.clear();
        assert_eq!(r.deficit(), 3);
        r.replica_target = 0;
        assert_eq!(r.deficit(), 0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FileRecord::parse("").is_none());
        assert!(FileRecord::parse("name x\n").is_none());
        assert!(FileRecord::parse("bogus line\n").is_none());
    }

    proptest! {
        #[test]
        fn round_trip_any(
            name in "[ -~]{1,40}",
            size in any::<u64>(),
            checksum in any::<u64>(),
            target in 0u32..10,
            attr_val in "[ -~]{0,20}",
        ) {
            let mut r = FileRecord::new(&name, size, checksum, target);
            r.attrs.insert("k".into(), attr_val);
            prop_assert_eq!(FileRecord::parse(&r.render()).unwrap(), r);
        }
    }
}

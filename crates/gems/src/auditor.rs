//! The auditor: periodically verify the location and integrity of
//! every replica, and record the problems for the replicator to fix.

use std::io;

use crate::system::Gems;

/// What one audit pass found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Records examined.
    pub records: u64,
    /// Replicas verified intact.
    pub healthy: u64,
    /// Replicas whose data was missing (evicted, deleted, or on an
    /// unreachable server).
    pub missing: u64,
    /// Replicas present but failing the checksum.
    pub corrupt: u64,
}

/// Scan the whole database, verify every replica with a server-side
/// `stat` plus `CHECKSUM` RPC (no bulk data crosses the network), and
/// prune replicas that are damaged or removed. Returns what was found;
/// the pruned deficits are what [`crate::replicator::replicate_once`]
/// repairs.
pub fn audit_once(gems: &Gems) -> io::Result<AuditReport> {
    let names = gems.db.lock().list()?;
    let mut report = AuditReport::default();
    for name in names {
        // Fetch fresh state per record: the system keeps running while
        // we scan.
        let Ok(mut rec) = gems.db.lock().get(&name) else {
            continue; // deleted mid-scan
        };
        report.records += 1;
        let mut changed = false;
        rec.replicas.retain(|replica| {
            let cfs = gems.conn_for_replica(replica);
            let verdict =
                tss_core::fs::FileSystem::stat(cfs.as_ref(), &replica.path).and_then(|st| {
                    if st.size != rec.size {
                        return Ok(false);
                    }
                    Ok(cfs.checksum(&replica.path)? == rec.checksum)
                });
            match verdict {
                Ok(true) => {
                    report.healthy += 1;
                    true
                }
                Ok(false) => {
                    report.corrupt += 1;
                    // Evict the corrupt copy (and its sidecar) so
                    // nobody reads it and the space can be reused.
                    let _ = tss_core::fs::FileSystem::unlink(cfs.as_ref(), &replica.path);
                    let _ = tss_core::fs::FileSystem::unlink(
                        cfs.as_ref(),
                        &crate::system::sidecar_path(&replica.path),
                    );
                    changed = true;
                    false
                }
                Err(_) => {
                    report.missing += 1;
                    changed = true;
                    false
                }
            }
        });
        if changed {
            gems.db.lock().put(&rec)?;
        }
    }
    Ok(report)
}

//! `gems` — command line for the distributed shared database.
//!
//! ```text
//! gems --db HOST:PORT --pool HOST:PORT/VOL[,HOST:PORT/VOL...] COMMAND [ARGS]
//!
//! commands:
//!   ingest NAME LOCALFILE [k=v ...]   store a file with attributes
//!   get NAME LOCALFILE                fetch (checksum-verified)
//!   ls                                list all names
//!   query KEY PATTERN                 attribute search (wildcards)
//!   show NAME                         print a record
//!   rm NAME                           delete everywhere
//!   audit                             one auditor pass
//!   repair                            one replicator pass
//!   daemon SECS                       run maintenance every SECS
//! ```
//!
//! Authentication: `--hostname` (default) or `--key M:S:KEY`,
//! applied to every pool server. Database server: `gems::DbServer`
//! (e.g. started by another `gems daemon` deployment or a test rig).

use std::io::Read;
use std::sync::Arc;
use std::time::Duration;

use chirp_client::AuthMethod;
use gems::{Gems, GemsConfig};
use tss_core::stubfs::DataServer;

fn usage() -> ! {
    eprintln!(
        "usage: gems --db HOST:PORT --pool H:P/VOL[,H:P/VOL...] \\\n\
         \x20      [--target N] [--hostname|--key M:S:KEY] COMMAND [ARGS]\n\
         commands: ingest NAME FILE [k=v...] | get NAME FILE | ls |\n\
         \x20         query KEY PATTERN | show NAME | rm NAME |\n\
         \x20         audit | repair | rebuild | daemon SECS"
    );
    std::process::exit(2);
}

fn main() {
    if let Err(e) = run() {
        eprintln!("gems: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut db: Option<String> = None;
    let mut pool_spec: Option<String> = None;
    let mut target = 2u32;
    let mut auth: Vec<AuthMethod> = Vec::new();
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--db" => db = it.next(),
            "--pool" => pool_spec = it.next(),
            "--target" => {
                target = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--hostname" => auth.push(AuthMethod::Hostname),
            "--key" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let mut parts = spec.splitn(3, ':');
                let (Some(m), Some(s), Some(key)) = (parts.next(), parts.next(), parts.next())
                else {
                    usage()
                };
                auth.push(AuthMethod::key(m, s, key.as_bytes()));
            }
            "--help" | "-h" => usage(),
            _ => {
                rest.push(arg);
                rest.extend(it.by_ref());
            }
        }
    }
    let (Some(db), Some(pool_spec)) = (db, pool_spec) else {
        usage()
    };
    if auth.is_empty() {
        auth.push(AuthMethod::Hostname);
    }
    let pool: Vec<DataServer> = pool_spec
        .split(',')
        .map(|spec| {
            let (endpoint, volume) = spec.split_once('/').unwrap_or((spec, "gems"));
            DataServer::new(endpoint, &format!("/{volume}"), auth.clone())
        })
        .collect();
    let mut config = GemsConfig::new(db.parse()?, pool);
    config.default_target = target;
    let gems = Gems::connect(config)?;

    let Some(command) = rest.first().cloned() else {
        usage()
    };
    let args = &rest[1..];
    let arg = |i: usize| -> Result<&str, Box<dyn std::error::Error>> {
        args.get(i)
            .map(String::as_str)
            .ok_or_else(|| "missing argument".into())
    };
    match command.as_str() {
        "ingest" => {
            let name = arg(0)?;
            let mut data = Vec::new();
            std::fs::File::open(arg(1)?)?.read_to_end(&mut data)?;
            let attrs: Vec<(&str, &str)> = args[2..]
                .iter()
                .filter_map(|kv| kv.split_once('='))
                .collect();
            let rec = gems.ingest(name, &attrs, &data)?;
            println!("{} bytes, checksum {:016x}", rec.size, rec.checksum);
        }
        "get" => {
            let data = gems.fetch(arg(0)?)?;
            std::fs::write(arg(1)?, &data)?;
            println!("{} bytes", data.len());
        }
        "ls" => {
            for name in gems.list()? {
                println!("{name}");
            }
        }
        "query" => {
            for name in gems.query(arg(0)?, arg(1)?)? {
                println!("{name}");
            }
        }
        "show" => print!("{}", gems.record(arg(0)?)?.render()),
        "rm" => gems.delete(arg(0)?)?,
        "audit" => {
            let r = gems::audit_once(&gems)?;
            println!(
                "{} records: {} healthy, {} missing, {} corrupt",
                r.records, r.healthy, r.missing, r.corrupt
            );
        }
        "repair" => {
            let r = gems::replicate_once(&gems, usize::MAX)?;
            println!(
                "{} deficient, {} copied, {} unrepairable",
                r.deficient, r.copied, r.unrepairable
            );
        }
        "rebuild" => {
            let r = gems::rebuild(&gems)?;
            println!(
                "{} records reconstructed from {} replicas ({} rejected)",
                r.records, r.replicas, r.rejected
            );
        }
        "daemon" => {
            let period = Duration::from_secs(arg(0)?.parse()?);
            let daemons = gems::GemsDaemons::spawn(Arc::new(gems), period);
            println!("gems maintenance running every {period:?}");
            loop {
                std::thread::sleep(Duration::from_secs(60));
                println!(
                    "cycles {}, replicas restored {}",
                    daemons.cycles(),
                    daemons.repaired()
                );
            }
        }
        _ => return Err(format!("unknown command {command:?}").into()),
    }
    Ok(())
}

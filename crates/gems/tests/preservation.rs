//! The GEMS preservation workflow against live Chirp servers: ingest,
//! query, failure injection, audit, repair — Figure 9 at test scale.

use std::time::Duration;

use chirp_client::AuthMethod;
use chirp_proto::testutil::TempDir;
use chirp_server::acl::Acl;
use chirp_server::{FileServer, ServerConfig};
use gems::{DbServer, Gems, GemsConfig};
use tss_core::cfs::RetryPolicy;
use tss_core::stubfs::DataServer;

struct Fixture {
    _db: DbServer,
    _dirs: Vec<TempDir>,
    servers: Vec<FileServer>,
    gems: Gems,
}

fn fixture(nservers: usize, target: u32) -> Fixture {
    let db = DbServer::start_ephemeral().unwrap();
    let mut dirs = Vec::new();
    let mut servers = Vec::new();
    let mut pool = Vec::new();
    for _ in 0..nservers {
        let dir = TempDir::new();
        let server = FileServer::start(
            ServerConfig::localhost(dir.path(), "owner")
                .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap()),
        )
        .unwrap();
        pool.push(DataServer::new(
            &server.endpoint(),
            "/gems",
            vec![AuthMethod::Hostname],
        ));
        dirs.push(dir);
        servers.push(server);
    }
    let mut config = GemsConfig::new(db.addr(), pool);
    config.default_target = target;
    config.timeout = Duration::from_millis(1500);
    config.retry = RetryPolicy::none();
    let gems = Gems::connect(config).unwrap();
    Fixture {
        _db: db,
        _dirs: dirs,
        servers,
        gems,
    }
}

fn payload(i: u64) -> Vec<u8> {
    (0..4096u64)
        .map(|j| ((i * 131 + j * 7) % 251) as u8)
        .collect()
}

#[test]
fn ingest_then_fetch_round_trip() {
    let f = fixture(3, 2);
    let data = payload(1);
    let rec = f
        .gems
        .ingest("run1/traj.dcd", &[("project", "protomol")], &data)
        .unwrap();
    assert_eq!(rec.replicas.len(), 1, "ingest writes one copy");
    assert_eq!(rec.checksum, chirp_proto::crc64(&data));
    assert_eq!(f.gems.fetch("run1/traj.dcd").unwrap(), data);
}

#[test]
fn query_by_attribute() {
    let f = fixture(2, 1);
    for i in 0..5u64 {
        f.gems
            .ingest(
                &format!("run{i}/out"),
                &[
                    ("project", if i < 3 { "protomol" } else { "other" }),
                    ("temperature", "310K"),
                ],
                &payload(i),
            )
            .unwrap();
    }
    let mut hits = f.gems.query("project", "protomol").unwrap();
    hits.sort();
    assert_eq!(hits, vec!["run0/out", "run1/out", "run2/out"]);
    assert_eq!(f.gems.query("temperature", "*K").unwrap().len(), 5);
    assert_eq!(f.gems.list().unwrap().len(), 5);
}

#[test]
fn replicator_reaches_the_target() {
    let f = fixture(4, 3);
    for i in 0..6u64 {
        f.gems.ingest(&format!("f{i}"), &[], &payload(i)).unwrap();
    }
    let report = gems::replicate_once(&f.gems, usize::MAX).unwrap();
    assert_eq!(report.deficient, 6);
    assert_eq!(report.copied, 12, "each file gains two more replicas");
    assert_eq!(report.unrepairable, 0);
    for i in 0..6u64 {
        let rec = f.gems.record(&format!("f{i}")).unwrap();
        assert_eq!(rec.replicas.len(), 3);
        // Replicas land on distinct servers.
        let mut eps: Vec<&str> = rec.replicas.iter().map(|r| r.endpoint.as_str()).collect();
        eps.sort();
        eps.dedup();
        assert_eq!(eps.len(), 3);
    }
    // Second pass is a no-op.
    let again = gems::replicate_once(&f.gems, usize::MAX).unwrap();
    assert_eq!(again.copied, 0);
    assert_eq!(again.deficient, 0);
}

#[test]
fn audit_detects_forcible_deletion_and_replicator_repairs() {
    // The §9 scenario: the owner of a server forcibly deletes data
    // placed by GEMS; the auditor notices and the replicator restores
    // the desired state.
    let f = fixture(3, 2);
    for i in 0..4u64 {
        f.gems.ingest(&format!("f{i}"), &[], &payload(i)).unwrap();
    }
    gems::replicate_once(&f.gems, usize::MAX).unwrap();

    // Wipe all GEMS data on server 0, as its owner is free to do.
    let victim = f._dirs[0].path().join("gems");
    let mut deleted = 0u64;
    for entry in std::fs::read_dir(&victim).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name != ".__acl" {
            std::fs::remove_file(entry.path()).unwrap();
            // Sidecar metadata files are not replicas.
            if !name.ends_with(".meta") {
                deleted += 1;
            }
        }
    }
    assert!(deleted > 0, "server 0 held some replicas");

    let audit = gems::audit_once(&f.gems).unwrap();
    assert_eq!(audit.records, 4);
    assert_eq!(audit.missing, deleted);
    assert_eq!(audit.corrupt, 0);

    // Every file still fetchable (failure coherence), then repaired.
    for i in 0..4u64 {
        assert_eq!(f.gems.fetch(&format!("f{i}")).unwrap(), payload(i));
    }
    let repair = gems::replicate_once(&f.gems, usize::MAX).unwrap();
    assert_eq!(repair.copied, deleted);
    let audit2 = gems::audit_once(&f.gems).unwrap();
    assert_eq!(audit2.missing, 0);
    assert_eq!(audit2.healthy, 8);
}

#[test]
fn audit_detects_corruption_by_checksum() {
    let f = fixture(2, 2);
    f.gems.ingest("precious", &[], &payload(9)).unwrap();
    gems::replicate_once(&f.gems, usize::MAX).unwrap();

    // Corrupt one replica in place (same size, different bytes).
    let rec = f.gems.record("precious").unwrap();
    let victim = &rec.replicas[0];
    let server_idx = f
        .servers
        .iter()
        .position(|s| s.endpoint() == victim.endpoint)
        .unwrap();
    let host_path = f._dirs[server_idx]
        .path()
        .join(victim.path.trim_start_matches('/'));
    let mut bytes = std::fs::read(&host_path).unwrap();
    bytes[0] ^= 0xff;
    std::fs::write(&host_path, &bytes).unwrap();

    let audit = gems::audit_once(&f.gems).unwrap();
    assert_eq!(audit.corrupt, 1);
    assert_eq!(audit.healthy, 1);
    // The corrupt copy is evicted from the server.
    assert!(!host_path.exists());
    // Fetch still returns the good bytes.
    assert_eq!(f.gems.fetch("precious").unwrap(), payload(9));
    // And repair restores two verified replicas.
    gems::replicate_once(&f.gems, usize::MAX).unwrap();
    let audit2 = gems::audit_once(&f.gems).unwrap();
    assert_eq!(audit2.healthy, 2);
}

#[test]
fn audit_prunes_replicas_on_a_dead_server() {
    let mut f = fixture(3, 2);
    f.gems.ingest("x", &[], &payload(3)).unwrap();
    gems::replicate_once(&f.gems, usize::MAX).unwrap();
    let rec = f.gems.record("x").unwrap();
    let dead_ep = rec.replicas[0].endpoint.clone();
    let idx = f
        .servers
        .iter()
        .position(|s| s.endpoint() == dead_ep)
        .unwrap();
    f.servers[idx].shutdown();

    let audit = gems::audit_once(&f.gems).unwrap();
    assert_eq!(audit.missing, 1);
    let rec = f.gems.record("x").unwrap();
    assert_eq!(rec.replicas.len(), 1);
    assert!(rec.replicas.iter().all(|r| r.endpoint != dead_ep));
    // Repair places the replacement on the remaining live server.
    let repair = gems::replicate_once(&f.gems, usize::MAX).unwrap();
    assert_eq!(repair.copied, 1);
    assert_eq!(f.gems.fetch("x").unwrap(), payload(3));
}

#[test]
fn maintain_runs_a_full_cycle() {
    let f = fixture(3, 3);
    f.gems.ingest("a", &[], &payload(1)).unwrap();
    let (audit, repair) = f.gems.maintain().unwrap();
    assert_eq!(audit.records, 1);
    assert_eq!(repair.copied, 2);
    assert_eq!(f.gems.record("a").unwrap().replicas.len(), 3);
}

#[test]
fn delete_removes_data_then_record() {
    let f = fixture(2, 2);
    f.gems.ingest("victim", &[], &payload(5)).unwrap();
    gems::replicate_once(&f.gems, usize::MAX).unwrap();
    f.gems.delete("victim").unwrap();
    assert!(f.gems.record("victim").is_err());
    // No orphaned data on any server.
    for dir in &f._dirs {
        let vol = dir.path().join("gems");
        let data_files = std::fs::read_dir(&vol)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name() != ".__acl")
            .count();
        assert_eq!(data_files, 0);
    }
}

#[test]
fn unrepairable_when_pool_exhausted() {
    // Target 3 replicas but only 2 servers: the replicator reports the
    // shortfall instead of stacking copies on one disk.
    let f = fixture(2, 3);
    f.gems.ingest("f", &[], &payload(2)).unwrap();
    let report = gems::replicate_once(&f.gems, usize::MAX).unwrap();
    assert_eq!(report.copied, 1);
    assert_eq!(report.unrepairable, 0, "progress was made");
    let again = gems::replicate_once(&f.gems, usize::MAX).unwrap();
    assert_eq!(again.copied, 0);
    assert_eq!(again.unrepairable, 1);
    let rec = f.gems.record("f").unwrap();
    assert_eq!(rec.replicas.len(), 2, "never two copies on one server");
}

#[test]
fn daemons_repair_without_manual_intervention() {
    let f = fixture(3, 2);
    for i in 0..3u64 {
        f.gems.ingest(&format!("d{i}"), &[], &payload(i)).unwrap();
    }
    let g = std::sync::Arc::new(f.gems);
    let daemons = gems::GemsDaemons::spawn(g.clone(), Duration::from_millis(100));
    assert!(daemons.wait_for_cycles(1, Duration::from_secs(10)));
    // The first cycle brings everything to target.
    for i in 0..3u64 {
        assert_eq!(g.record(&format!("d{i}")).unwrap().replicas.len(), 2);
    }
    // Induce a failure behind the daemons' back...
    let victim = f._dirs[0].path().join("gems");
    for entry in std::fs::read_dir(&victim).unwrap().flatten() {
        if entry.file_name() != ".__acl" {
            std::fs::remove_file(entry.path()).unwrap();
        }
    }
    // ...and wait for the loop to notice and heal it.
    let before = daemons.cycles();
    assert!(daemons.wait_for_cycles(before + 2, Duration::from_secs(10)));
    for i in 0..3u64 {
        assert_eq!(
            g.record(&format!("d{i}")).unwrap().replicas.len(),
            2,
            "daemons restored d{i}"
        );
        assert_eq!(g.fetch(&format!("d{i}")).unwrap(), payload(i));
    }
    assert!(daemons.repaired() >= 1);
}

#[test]
fn placement_prefers_servers_with_free_space() {
    // Two servers, one nearly full: ingest must land on the roomy one,
    // and when everything is full the error is NoSpace, not silence.
    let db = DbServer::start_ephemeral().unwrap();
    let full_dir = TempDir::new();
    let roomy_dir = TempDir::new();
    let mut full_cfg = ServerConfig::localhost(full_dir.path(), "o")
        .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap());
    full_cfg.capacity_bytes = 10_000;
    let full = FileServer::start(full_cfg).unwrap();
    let mut roomy_cfg = ServerConfig::localhost(roomy_dir.path(), "o")
        .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap());
    roomy_cfg.capacity_bytes = 100_000;
    let roomy = FileServer::start(roomy_cfg).unwrap();

    let pool = vec![
        DataServer::new(&full.endpoint(), "/gems", vec![AuthMethod::Hostname]),
        DataServer::new(&roomy.endpoint(), "/gems", vec![AuthMethod::Hostname]),
    ];
    let mut config = GemsConfig::new(db.addr(), pool);
    config.default_target = 1;
    let g = Gems::connect(config).unwrap();

    // Fill the small server almost completely, bypassing gems.
    std::fs::write(full_dir.path().join("ballast"), vec![0u8; 9_500]).unwrap();

    for i in 0..5u64 {
        let rec = g.ingest(&format!("f{i}"), &[], &vec![1u8; 8_000]).unwrap();
        assert_eq!(
            rec.replicas[0].endpoint,
            roomy.endpoint(),
            "ingest must avoid the full server"
        );
    }
    // Exhaust the roomy server too: the refusal surfaces as an error.
    for i in 5..20u64 {
        if let Err(e) = g.ingest(&format!("f{i}"), &[], &vec![1u8; 8_000]) {
            assert_eq!(e.kind(), std::io::ErrorKind::StorageFull, "got {e}");
            return;
        }
    }
    panic!("pool exhaustion never surfaced as NoSpace");
}

#[test]
fn lost_database_is_rebuilt_by_rescanning_servers() {
    // §5: "the database could even be recovered automatically by
    // rescanning the existing file data."
    let f = fixture(3, 2);
    for i in 0..4u64 {
        f.gems
            .ingest(
                &format!("run{i}/out"),
                &[("project", "protomol"), ("run", &i.to_string())],
                &payload(i),
            )
            .unwrap();
    }
    gems::replicate_once(&f.gems, usize::MAX).unwrap();

    // Catastrophe: the database is lost entirely. Attach a brand-new,
    // empty one.
    let fresh_db = gems::DbServer::start_ephemeral().unwrap();
    let mut config = gems::GemsConfig::new(fresh_db.addr(), f.gems.pool().clone());
    config.default_target = 2;
    config.timeout = Duration::from_millis(1500);
    config.retry = RetryPolicy::none();
    let recovered = Gems::connect(config).unwrap();
    assert!(
        recovered.list().unwrap().is_empty(),
        "fresh db starts empty"
    );

    let report = gems::rebuild(&recovered).unwrap();
    assert_eq!(report.records, 4);
    assert_eq!(report.replicas, 8, "both replicas of each file recovered");
    assert_eq!(report.rejected, 0);

    // Names, attributes, and data all come back.
    let mut names = recovered.list().unwrap();
    names.sort();
    assert_eq!(names, vec!["run0/out", "run1/out", "run2/out", "run3/out"]);
    assert_eq!(recovered.query("project", "protomol").unwrap().len(), 4);
    assert_eq!(recovered.query("run", "2").unwrap(), vec!["run2/out"]);
    for i in 0..4u64 {
        assert_eq!(recovered.fetch(&format!("run{i}/out")).unwrap(), payload(i));
        assert_eq!(
            recovered
                .record(&format!("run{i}/out"))
                .unwrap()
                .replica_target,
            2
        );
    }
}

#[test]
fn rebuild_rejects_tampered_replicas() {
    let f = fixture(2, 2);
    f.gems.ingest("honest", &[], &payload(7)).unwrap();
    gems::replicate_once(&f.gems, usize::MAX).unwrap();
    // Tamper with one replica's bytes (sidecar checksum now disagrees).
    let rec = f.gems.record("honest").unwrap();
    let victim = &rec.replicas[0];
    let idx = f
        .servers
        .iter()
        .position(|s| s.endpoint() == victim.endpoint)
        .unwrap();
    let host_path = f._dirs[idx]
        .path()
        .join(victim.path.trim_start_matches('/'));
    let mut bytes = std::fs::read(&host_path).unwrap();
    bytes[0] ^= 0xff;
    std::fs::write(&host_path, &bytes).unwrap();

    let fresh_db = gems::DbServer::start_ephemeral().unwrap();
    let mut config = gems::GemsConfig::new(fresh_db.addr(), f.gems.pool().clone());
    config.timeout = Duration::from_millis(1500);
    config.retry = RetryPolicy::none();
    let recovered = Gems::connect(config).unwrap();
    let report = gems::rebuild(&recovered).unwrap();
    assert_eq!(report.records, 1);
    assert_eq!(report.replicas, 1, "only the intact copy is trusted");
    assert_eq!(report.rejected, 1);
    assert_eq!(recovered.fetch("honest").unwrap(), payload(7));
}

//! Server robustness: protocol abuse, connection limits, and ACL
//! corner cases exercised over raw TCP (no client library) so the
//! server's own defenses are what is under test.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use chirp_proto::testutil::TempDir;
use chirp_server::acl::Acl;
use chirp_server::{FileServer, ServerConfig};

fn open_server(root: &std::path::Path) -> FileServer {
    FileServer::start(
        ServerConfig::localhost(root, "owner")
            .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap()),
    )
    .unwrap()
}

fn raw_conn(server: &FileServer) -> TcpStream {
    let s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.set_write_timeout(Some(Duration::from_secs(5))).unwrap();
    s
}

fn read_line(stream: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    stream.read_line(&mut line).unwrap();
    line.trim_end().to_string()
}

#[test]
fn garbage_requests_get_errors_not_crashes() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let mut stream = raw_conn(&server);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for garbage in [
        "FROBNICATE /x\n",
        "OPEN\n",
        "OPEN /x not-a-number 0\n",
        "PREAD 0 abc def\n",
        "\n",
    ] {
        stream.write_all(garbage.as_bytes()).unwrap();
        let reply = read_line(&mut reader);
        let code: i64 = reply.split(' ').next().unwrap().parse().unwrap();
        assert!(
            code < 0,
            "garbage {garbage:?} must yield an error, got {reply:?}"
        );
    }
    // The connection is still usable afterwards.
    stream.write_all(b"AUTH hostname x x\n").unwrap();
    let reply = read_line(&mut reader);
    assert!(reply.starts_with("0 "), "got {reply:?}");
}

#[test]
fn oversized_lines_drop_the_connection() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let mut stream = raw_conn(&server);
    let huge = vec![b'x'; chirp_proto::MAX_LINE + 100];
    stream.write_all(&huge).unwrap();
    stream.write_all(b"\n").unwrap();
    // The server refuses to buffer unboundedly: EOF, not a reply.
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    let n = reader.read_to_end(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "server must hang up on oversized lines");
}

#[test]
fn connection_limit_refuses_politely() {
    let dir = TempDir::new();
    let mut cfg = ServerConfig::localhost(dir.path(), "owner")
        .with_root_acl(Acl::single("hostname:*", "rwl").unwrap());
    cfg.max_connections = 2;
    let server = FileServer::start(cfg).unwrap();

    let _a = raw_conn(&server);
    let _b = raw_conn(&server);
    // Give the server a moment to count the first two.
    std::thread::sleep(Duration::from_millis(100));
    let c = raw_conn(&server);
    let mut reader = BufReader::new(c);
    let reply = read_line(&mut reader);
    assert_eq!(
        reply.parse::<i64>().unwrap(),
        chirp_proto::ChirpError::Busy.code(),
        "over-limit connections get a Busy status, got {reply:?}"
    );
}

#[test]
fn mkdir_with_write_right_copies_the_parent_acl() {
    use chirp_client::{AuthMethod, Connection};
    let dir = TempDir::new();
    let cfg = ServerConfig::localhost(dir.path(), "owner")
        .with_root_acl(Acl::parse("hostname:* rwl\nglobus:/O=ND/* rl\n").unwrap());
    let server = FileServer::start(cfg).unwrap();
    let mut conn = Connection::connect(server.addr(), Duration::from_secs(5)).unwrap();
    conn.authenticate(&[AuthMethod::Hostname]).unwrap();
    conn.mkdir("/sub", 0o755).unwrap();
    // Ordinary (W-right) mkdir: the new directory inherits a *copy*
    // of the parent ACL — editing it later won't touch the parent.
    let acl = conn.getacl("/sub").unwrap();
    assert!(acl.contains("hostname:* rwl"), "{acl}");
    assert!(acl.contains("globus:/O=ND/* rl"), "{acl}");
}

#[test]
fn pwrite_on_readonly_descriptor_fails() {
    use chirp_client::{AuthMethod, Connection};
    use chirp_proto::OpenFlags;
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let mut conn = Connection::connect(server.addr(), Duration::from_secs(5)).unwrap();
    conn.authenticate(&[AuthMethod::Hostname]).unwrap();
    conn.putfile("/f", 0o644, b"data").unwrap();
    let fd = conn.open("/f", OpenFlags::READ, 0).unwrap();
    assert!(conn.pwrite(fd, b"overwrite", 0).is_err());
    // The file is untouched and the connection still works.
    assert_eq!(conn.getfile("/f").unwrap(), b"data");
}

#[test]
fn rename_needs_rights_on_both_parents() {
    use chirp_client::{AuthMethod, Connection};
    let dir = TempDir::new();
    // /public is writable by visitors; /vault only readable.
    let cfg = ServerConfig::localhost(dir.path(), "owner")
        .with_root_acl(Acl::single("admin:boss", "rwlda").unwrap())
        .with_key("admin", "boss", b"boss-key");
    let server = FileServer::start(cfg).unwrap();
    let mut boss = Connection::connect(server.addr(), Duration::from_secs(5)).unwrap();
    boss.authenticate(&[AuthMethod::key("admin", "", b"boss-key")])
        .unwrap();
    boss.mkdir("/public", 0o755).unwrap();
    boss.setacl("/public", "hostname:*", "rwl").unwrap();
    boss.mkdir("/vault", 0o755).unwrap();
    boss.setacl("/vault", "hostname:*", "rl").unwrap();
    boss.putfile("/vault/gold", 0o644, b"treasure").unwrap();

    let mut visitor = Connection::connect(server.addr(), Duration::from_secs(5)).unwrap();
    visitor.authenticate(&[AuthMethod::Hostname]).unwrap();
    visitor.putfile("/public/note", 0o644, b"mine").unwrap();
    // Cannot move things *out of* the vault (no W/D there)...
    assert!(visitor.rename("/vault/gold", "/public/gold").is_err());
    // ...nor *into* it (no W there).
    assert!(visitor.rename("/public/note", "/vault/note").is_err());
    // Within the writable area it works.
    visitor.rename("/public/note", "/public/note2").unwrap();
}

#[test]
fn payload_of_rejected_putfile_does_not_desync_the_stream() {
    use chirp_client::{AuthMethod, Connection};
    let dir = TempDir::new();
    let cfg = ServerConfig::localhost(dir.path(), "owner")
        .with_root_acl(Acl::single("hostname:*", "rl").unwrap()); // no W
    let server = FileServer::start(cfg).unwrap();
    let mut conn = Connection::connect(server.addr(), Duration::from_secs(5)).unwrap();
    conn.authenticate(&[AuthMethod::Hostname]).unwrap();
    // The server must drain the refused payload to stay framed.
    assert!(conn.putfile("/nope", 0o644, &vec![7u8; 100_000]).is_err());
    // Next RPC on the same connection parses cleanly.
    assert_eq!(conn.whoami().unwrap(), "hostname:localhost");
    assert!(conn.getdir("/").unwrap().is_empty());
}

#[test]
fn idle_connections_are_reaped() {
    use chirp_client::{AuthMethod, Connection};
    let dir = TempDir::new();
    let mut cfg = ServerConfig::localhost(dir.path(), "owner")
        .with_root_acl(Acl::single("hostname:*", "rwl").unwrap());
    cfg.idle_timeout = Some(Duration::from_millis(150));
    let server = FileServer::start(cfg).unwrap();

    // An active client is unaffected as long as it keeps talking.
    let mut busy = Connection::connect(server.addr(), Duration::from_secs(5)).unwrap();
    busy.authenticate(&[AuthMethod::Hostname]).unwrap();
    for _ in 0..4 {
        std::thread::sleep(Duration::from_millis(60));
        busy.whoami().unwrap();
    }

    // An idle client is cut loose and must reconnect.
    let mut idle = Connection::connect(server.addr(), Duration::from_secs(5)).unwrap();
    idle.authenticate(&[AuthMethod::Hostname]).unwrap();
    std::thread::sleep(Duration::from_millis(400));
    assert!(idle.whoami().is_err(), "idle session must be closed");
    // The server's connection slot is freed.
    for _ in 0..100 {
        if server.active_connections() <= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(server.active_connections() <= 1);
}

//! Reactor edge cases, driven deterministically over the in-memory
//! network: slow-reader backpressure (the write-buffer cap bounds
//! server memory, not client behavior), mid-pipeline disconnect with
//! requests in flight (settled work kept, nothing corrupted), and a
//! listener close over a crowd of idle connections (clean shutdown,
//! every client sees EOF).

use std::io::Read;
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use chirp_proto::testutil::TempDir;
use chirp_proto::transport::Transport;
use chirp_proto::{Clock, MemNet, VirtualClock};
use chirp_server::acl::Acl;
use chirp_server::{FileServer, ServerConfig};

/// A server on a fresh in-memory network, with the config tweaked by
/// `tweak` before start.
fn mem_server(tweak: impl FnOnce(&mut ServerConfig)) -> (TempDir, MemNet, FileServer) {
    let clock = Clock::virtual_at(VirtualClock::new());
    let net = MemNet::new(clock);
    let dir = TempDir::new();
    let mut cfg = ServerConfig::localhost(dir.path(), "owner")
        .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap());
    cfg.dialer = net.dialer();
    tweak(&mut cfg);
    let listener = net.listen();
    let server = FileServer::start_on(cfg, Arc::new(listener)).unwrap();
    (dir, net, server)
}

fn dial(net: &MemNet, server: &FileServer) -> Box<dyn Transport> {
    net.dialer()
        .dial(&server.endpoint(), Duration::from_secs(5))
        .unwrap()
}

/// Read one `\n`-terminated reply line off a raw transport.
fn read_line(t: &mut dyn Transport) -> String {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        assert_eq!(t.read(&mut byte).unwrap(), 1, "EOF inside a reply line");
        if byte[0] == b'\n' {
            break;
        }
        line.push(byte[0]);
    }
    String::from_utf8(line).unwrap()
}

fn auth(t: &mut dyn Transport) {
    t.write_all(b"AUTH hostname x x\n").unwrap();
    let reply = read_line(t);
    assert!(reply.starts_with("0 "), "auth failed: {reply:?}");
}

/// Spin until `cond` holds (real time; the reactor threads run on the
/// host scheduler even when the protocol clock is virtual).
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A reader that refuses to drain must not make the server buffer
/// replies without bound: once the connection's write queue passes
/// `reactor_write_cap`, the reactor parks the *read* side (stops
/// consuming requests) until the client catches up. The queue may
/// overshoot by at most the one reply that crossed the cap.
#[test]
fn slow_reader_backpressure_caps_the_write_queue() {
    const CAP: usize = 64 * 1024;
    const FILE: usize = 256 * 1024;
    const REQUESTS: usize = 16;
    let (dir, net, server) = mem_server(|cfg| {
        cfg.reactor_write_cap = CAP;
    });
    std::fs::write(dir.path().join("big"), vec![0x5a; FILE]).unwrap();

    // A 1 KiB pipe: the server sees WouldBlock almost immediately, so
    // replies pile up in its write queue, not in the transport.
    net.set_stream_capacity(Some(1024));
    let mut t = dial(&net, &server);
    auth(t.as_mut());
    for _ in 0..REQUESTS {
        t.write_all(b"GETFILE /big\n").unwrap();
    }

    // The server must stop reading instead of queueing all 16 replies.
    let reg = server.telemetry().registry();
    let backpressure = reg.counter("reactor.backpressure");
    let wq_peak = reg.gauge("reactor.wq_peak_bytes");
    wait_for("backpressure to engage", || backpressure.get() >= 1);
    assert!(
        (wq_peak.get() as usize) <= CAP + FILE + 4096,
        "write queue peaked at {} bytes; cap {CAP} allows at most one \
         reply of overshoot",
        wq_peak.get()
    );

    // Now drain: every reply arrives whole and in order.
    let header = format!("{FILE}\n");
    let mut expected = 0usize;
    let mut buf = vec![0u8; 64 * 1024];
    let mut got = 0usize;
    for _ in 0..REQUESTS {
        expected += header.len() + FILE;
    }
    while got < expected {
        let n = t.read(&mut buf).unwrap();
        assert!(n > 0, "EOF after {got}/{expected} reply bytes");
        got += n;
    }
    assert_eq!(got, expected);
    assert!(
        (wq_peak.get() as usize) <= CAP + FILE + 4096,
        "cap held through the full drain: {}",
        wq_peak.get()
    );

    // The connection is still a working session.
    t.write_all(b"WHOAMI\n").unwrap();
    assert!(read_line(t.as_mut()).starts_with("0 "));
}

/// A client that fires a pipeline and vanishes: requests the server
/// already consumed are settled in order (effects form a prefix), the
/// connection slot is reclaimed, and the server keeps serving others —
/// the PR-5 chaos contract, now under the reactor.
#[test]
fn mid_pipeline_disconnect_with_three_in_flight() {
    let (dir, net, server) = mem_server(|_| {});
    let mut t = dial(&net, &server);
    auth(t.as_mut());
    t.write_all(b"MKDIR /p0 493\nMKDIR /p1 493\nMKDIR /p2 493\n")
        .unwrap();
    drop(t); // vanish with all three in flight

    wait_for("the dead connection to be reaped", || {
        server.active_connections() == 0
    });
    // Settled ops are kept and form a send-order prefix: p1 without
    // p0 (or p2 without p1) would mean replies were settled out of
    // order or a queued op ran after an earlier one was dropped.
    let exists = |i: usize| dir.path().join(format!("p{i}")).is_dir();
    for i in 1..3 {
        if exists(i) {
            assert!(exists(i - 1), "/p{i} settled but /p{} did not", i - 1);
        }
    }
    // The server is unharmed and fully functional for the next client.
    let mut t2 = dial(&net, &server);
    auth(t2.as_mut());
    t2.write_all(b"MKDIR /after 493\n").unwrap();
    assert_eq!(read_line(t2.as_mut()), "0");
    assert!(dir.path().join("after").is_dir());
}

/// Closing the listener over a crowd of idle connections: shutdown
/// returns promptly, every shard retires its connections, and every
/// idle client reads EOF rather than hanging.
#[test]
fn listener_close_with_idle_crowd_shuts_down_cleanly() {
    const CROWD: usize = 300;
    let (_dir, net, mut server) = mem_server(|cfg| {
        cfg.max_connections = CROWD + 8;
    });
    let mut conns: Vec<Box<dyn Transport>> = Vec::with_capacity(CROWD);
    for _ in 0..CROWD {
        conns.push(dial(&net, &server));
    }
    wait_for("every connection to be adopted", || {
        server.active_connections() == CROWD
    });

    server.shutdown();
    assert_eq!(server.active_connections(), 0, "all slots reclaimed");
    let mut byte = [0u8; 1];
    for (i, conn) in conns.iter_mut().enumerate() {
        match conn.read(&mut byte) {
            Ok(0) => {}
            Ok(n) => panic!("idle conn {i} read {n} bytes after shutdown"),
            Err(_) => {} // reset is as good as EOF
        }
    }
}

//! Concurrency stress: many clients hammering one server with mixed
//! operations, asserting the server neither corrupts data nor leaks
//! connection state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use chirp_client::{AuthMethod, Connection};
use chirp_proto::testutil::TempDir;
use chirp_proto::OpenFlags;
use chirp_server::acl::Acl;
use chirp_server::{FileServer, ServerConfig};

fn open_server(root: &std::path::Path) -> FileServer {
    FileServer::start(
        ServerConfig::localhost(root, "stress")
            .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap()),
    )
    .unwrap()
}

fn connect(addr: std::net::SocketAddr) -> Connection {
    let mut conn = Connection::connect(addr, Duration::from_secs(10)).unwrap();
    conn.authenticate(&[AuthMethod::Hostname]).unwrap();
    conn
}

#[test]
fn mixed_workload_under_concurrency() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let addr = server.addr();
    let errors = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for worker in 0..8u64 {
        let errors = errors.clone();
        handles.push(std::thread::spawn(move || {
            let mut conn = connect(addr);
            let my_dir = format!("/w{worker}");
            conn.mkdir(&my_dir, 0o755).unwrap();
            for round in 0..40u64 {
                let path = format!("{my_dir}/f{}", round % 5);
                let body = format!("worker {worker} round {round}");
                // Mixed ops: create, verify, rename, stat, delete.
                if conn.putfile(&path, 0o644, body.as_bytes()).is_err() {
                    errors.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                match conn.getfile(&path) {
                    Ok(data) if data == body.as_bytes() => {}
                    _ => {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let moved = format!("{path}.done");
                conn.rename(&path, &moved).unwrap();
                assert_eq!(conn.stat(&moved).unwrap().size, body.len() as u64);
                if round % 3 == 0 {
                    conn.unlink(&moved).unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(errors.load(Ordering::Relaxed), 0, "no lost or corrupt data");
    // Connections all drained.
    for _ in 0..100 {
        if server.active_connections() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.active_connections(), 0);
    assert_eq!(server.stats().snapshot().errors, 0, "no server-side errors");
}

#[test]
fn descriptor_churn_never_exhausts_the_table() {
    let dir = TempDir::new();
    let mut cfg = ServerConfig::localhost(dir.path(), "stress")
        .with_root_acl(Acl::single("hostname:*", "rwl").unwrap());
    cfg.max_open_per_connection = 16;
    let server = FileServer::start(cfg).unwrap();
    let mut conn = connect(server.addr());
    // Open/close far more files than the table holds: slots recycle.
    for i in 0..200 {
        let fd = conn
            .open(
                &format!("/churn-{}", i % 8),
                OpenFlags::WRITE | OpenFlags::CREATE,
                0o644,
            )
            .unwrap();
        conn.pwrite(fd, b"x", 0).unwrap();
        conn.close(fd).unwrap();
    }
    // And the limit still bites when actually exceeded.
    let mut held = Vec::new();
    for i in 0..16 {
        held.push(
            conn.open(
                &format!("/churn-{i}"),
                OpenFlags::WRITE | OpenFlags::CREATE,
                0o644,
            )
            .unwrap(),
        );
    }
    assert_eq!(
        conn.open("/one-too-many", OpenFlags::WRITE | OpenFlags::CREATE, 0o644)
            .unwrap_err(),
        chirp_proto::ChirpError::TooManyOpen
    );
}

#[test]
fn concurrent_appenders_interleave_without_loss() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let addr = server.addr();
    {
        let mut conn = connect(addr);
        conn.putfile("/log", 0o644, b"").unwrap();
    }
    let mut handles = Vec::new();
    for worker in 0..4u8 {
        handles.push(std::thread::spawn(move || {
            let mut conn = connect(addr);
            let fd = conn
                .open("/log", OpenFlags::WRITE | OpenFlags::APPEND, 0)
                .unwrap();
            for _ in 0..50 {
                // O_APPEND semantics: each record lands intact at the
                // then-current end of file.
                conn.pwrite(fd, &[b'A' + worker; 8], 0).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let data = std::fs::read(dir.path().join("log")).unwrap();
    assert_eq!(data.len(), 4 * 50 * 8, "no appended record lost");
    // Every 8-byte record is homogeneous: no torn interleaving.
    for chunk in data.chunks(8) {
        assert!(
            chunk.iter().all(|&b| b == chunk[0]),
            "torn record {chunk:?}"
        );
    }
}

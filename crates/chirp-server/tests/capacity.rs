//! Capacity enforcement: the resource layer says `NoSpace` instead of
//! silently filling up — the failure mode the paper's introduction
//! blames for a third of Grid3's job losses.

use std::time::Duration;

use chirp_client::{AuthMethod, Connection};
use chirp_proto::testutil::TempDir;
use chirp_proto::{ChirpError, OpenFlags};
use chirp_server::acl::Acl;
use chirp_server::{FileServer, ServerConfig};

fn capped_server(root: &std::path::Path, capacity: u64) -> FileServer {
    let mut cfg = ServerConfig::localhost(root, "owner")
        .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap());
    cfg.capacity_bytes = capacity;
    FileServer::start(cfg).unwrap()
}

fn connect(server: &FileServer) -> Connection {
    let mut conn = Connection::connect(server.addr(), Duration::from_secs(5)).unwrap();
    conn.authenticate(&[AuthMethod::Hostname]).unwrap();
    conn
}

#[test]
fn putfile_beyond_capacity_is_refused() {
    let dir = TempDir::new();
    let server = capped_server(dir.path(), 10_000);
    let mut conn = connect(&server);
    conn.putfile("/a", 0o644, &vec![1u8; 6_000]).unwrap();
    assert_eq!(
        conn.putfile("/b", 0o644, &vec![2u8; 6_000]).unwrap_err(),
        ChirpError::NoSpace
    );
    // The refused payload did not desync the stream and nothing was
    // written.
    assert_eq!(conn.getdir("/").unwrap(), vec!["a"]);
    // Freeing space makes room again.
    conn.unlink("/a").unwrap();
    conn.putfile("/b", 0o644, &vec![2u8; 6_000]).unwrap();
}

#[test]
fn replacing_a_file_reuses_its_own_space() {
    let dir = TempDir::new();
    let server = capped_server(dir.path(), 10_000);
    let mut conn = connect(&server);
    conn.putfile("/a", 0o644, &vec![1u8; 8_000]).unwrap();
    // Same name, same size: the old bytes are freed by the overwrite.
    conn.putfile("/a", 0o644, &vec![2u8; 8_000]).unwrap();
    assert_eq!(conn.getfile("/a").unwrap(), vec![2u8; 8_000]);
}

#[test]
fn pwrite_extension_hits_the_cap_but_overwrites_do_not() {
    let dir = TempDir::new();
    let server = capped_server(dir.path(), 10_000);
    let mut conn = connect(&server);
    let fd = conn
        .open("/f", OpenFlags::read_write() | OpenFlags::CREATE, 0o644)
        .unwrap();
    conn.pwrite(fd, &vec![1u8; 9_000], 0).unwrap();
    // Overwriting in place is always fine.
    conn.pwrite(fd, &vec![2u8; 9_000], 0).unwrap();
    // Extending past the cap is not.
    assert_eq!(
        conn.pwrite(fd, &vec![3u8; 2_000], 9_000).unwrap_err(),
        ChirpError::NoSpace
    );
    // Truncating frees space for new growth.
    conn.ftruncate(fd, 1_000).unwrap();
    conn.pwrite(fd, &vec![4u8; 2_000], 1_000).unwrap();
}

#[test]
fn statfs_reports_shrinking_free_space() {
    let dir = TempDir::new();
    let server = capped_server(dir.path(), 100_000);
    let mut conn = connect(&server);
    let before = conn.statfs().unwrap().free_bytes;
    conn.putfile("/a", 0o644, &vec![0u8; 40_000]).unwrap();
    let after = conn.statfs().unwrap().free_bytes;
    assert!(before - after >= 40_000);
}

#[test]
fn enforcement_can_be_disabled() {
    let dir = TempDir::new();
    let mut cfg = ServerConfig::localhost(dir.path(), "owner")
        .with_root_acl(Acl::single("hostname:*", "rwl").unwrap());
    cfg.capacity_bytes = 1_000;
    cfg.enforce_capacity = false;
    let server = FileServer::start(cfg).unwrap();
    let mut conn = connect(&server);
    // Advisory-only capacity: the write is admitted, the report shows
    // zero free.
    conn.putfile("/big", 0o644, &vec![0u8; 5_000]).unwrap();
    assert_eq!(conn.statfs().unwrap().free_bytes, 0);
}

#[test]
fn preexisting_data_counts_against_capacity() {
    let dir = TempDir::new();
    std::fs::write(dir.path().join("existing"), vec![0u8; 9_000]).unwrap();
    let server = capped_server(dir.path(), 10_000);
    let mut conn = connect(&server);
    assert_eq!(
        conn.putfile("/more", 0o644, &vec![0u8; 5_000]).unwrap_err(),
        ChirpError::NoSpace,
        "exported-in-place data occupies the budget"
    );
    conn.putfile("/small", 0o644, &vec![0u8; 500]).unwrap();
}

#[test]
fn truncating_open_frees_the_old_bytes() {
    // Regression: rewriting the same file via open(O_TRUNC)+pwrite in
    // a loop must not accumulate phantom usage.
    let dir = TempDir::new();
    let server = capped_server(dir.path(), 10_000);
    let mut conn = connect(&server);
    for round in 0..10 {
        let fd = conn
            .open(
                "/rewritten",
                OpenFlags::WRITE | OpenFlags::CREATE | OpenFlags::TRUNCATE,
                0o644,
            )
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        conn.pwrite(fd, &vec![round as u8; 6_000], 0).unwrap();
        conn.close(fd).unwrap();
    }
    // Only the final 6 KB (plus the small ACL metadata file) is
    // occupied — ten rewrites did not accumulate phantom usage.
    assert!(conn.statfs().unwrap().free_bytes >= 3_900);
}

//! Cache coherence at the handler layer.
//!
//! Two sessions over one `Shared` are two connections to the same
//! server: pages cached for one descriptor must be invalidated or
//! patched by writes, truncates, unlinks, and renames issued through
//! *any* descriptor or path. Each scenario uses a deliberately tiny
//! cache so the hit, miss, and eviction paths are all crossed, and
//! every read is checked against what the filesystem itself says.

use std::net::IpAddr;
use std::sync::Arc;

use chirp_proto::message::Request;
use chirp_proto::testutil::TempDir;
use chirp_proto::OpenFlags;
use chirp_server::acl::Acl;
use chirp_server::handlers::{Reply, Session};
use chirp_server::server::Shared;
use chirp_server::ServerConfig;

const PAGE: u64 = 8192;

fn rig(root: &std::path::Path, cache_bytes: u64) -> Arc<Shared> {
    let cfg = ServerConfig::localhost(root, "owner")
        .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap())
        .with_cache(cache_bytes);
    Shared::new(cfg).unwrap()
}

fn session(shared: &Arc<Shared>) -> Session {
    let ip: IpAddr = "127.0.0.1".parse().unwrap();
    let mut s = Session::new(shared.clone(), ip);
    s.handle(
        Request::Auth {
            method: "hostname".into(),
            name: "localhost".into(),
            credential: String::new(),
        },
        None,
    )
    .expect("hostname auth");
    s
}

fn open(s: &mut Session, path: &str, flags: OpenFlags) -> i32 {
    match s.handle(
        Request::Open {
            path: path.into(),
            flags,
            mode: 0o644,
        },
        None,
    ) {
        Ok(Reply::Value(fd)) => fd as i32,
        other => panic!("open {path}: {other:?}"),
    }
}

fn rw() -> OpenFlags {
    OpenFlags::read_write() | OpenFlags::CREATE
}

fn pwrite(s: &mut Session, fd: i32, data: &[u8], offset: u64) {
    let r = s.handle(
        Request::Pwrite {
            fd,
            length: data.len() as u64,
            offset,
        },
        Some(data.to_vec()),
    );
    match r {
        Ok(Reply::Value(n)) => assert_eq!(n as usize, data.len()),
        other => panic!("pwrite: {other:?}"),
    }
}

fn pread(s: &mut Session, fd: i32, length: u64, offset: u64) -> Vec<u8> {
    match s.handle(Request::Pread { fd, length, offset }, None) {
        Ok(Reply::Pages(p)) => {
            let mut out = Vec::with_capacity(p.total());
            for sl in p.slices() {
                out.extend_from_slice(sl.as_slice());
            }
            assert_eq!(out.len(), p.total(), "PageReply total mismatch");
            out
        }
        Ok(Reply::Scratch(n)) => s.scratch()[..n].to_vec(),
        other => panic!("pread: {other:?}"),
    }
}

/// A write through one descriptor is immediately visible to a read
/// through another, even when the reader had already cached the page.
#[test]
fn write_through_one_fd_is_visible_through_another() {
    let dir = TempDir::new();
    let shared = rig(dir.path(), 64 * 1024);
    let mut a = session(&shared);
    let mut b = session(&shared);

    let fa = open(&mut a, "/f", rw());
    pwrite(&mut a, fa, &[1u8; 3 * PAGE as usize], 0);
    let fb = open(&mut b, "/f", rw());
    // b populates its view of page 1.
    assert_eq!(pread(&mut b, fb, PAGE, PAGE), vec![1u8; PAGE as usize]);
    // a overwrites the middle of that page.
    pwrite(&mut a, fa, b"TACTICAL", PAGE + 100);
    let seen = pread(&mut b, fb, 8, PAGE + 100);
    assert_eq!(
        &seen, b"TACTICAL",
        "cached page must be patched by the write"
    );
    // And the whole file still matches the disk byte for byte.
    let disk = std::fs::read(dir.path().join("f")).unwrap();
    assert_eq!(pread(&mut b, fb, 3 * PAGE, 0), disk);
}

/// Truncate down then extend: the page that straddled the truncation
/// point gets reused, and the re-grown region must read as zeros, not
/// as the stale bytes the cache held before the truncate.
#[test]
fn truncate_then_extend_reuses_the_cached_page_with_zeros() {
    let dir = TempDir::new();
    let shared = rig(dir.path(), 64 * 1024);
    let mut s = session(&shared);

    let fd = open(&mut s, "/t", rw());
    pwrite(&mut s, fd, &[0xAA; 2 * PAGE as usize], 0);
    // Cache both pages.
    assert_eq!(
        pread(&mut s, fd, 2 * PAGE, 0),
        vec![0xAA; 2 * PAGE as usize]
    );
    // Truncate into the middle of page 0, then extend past it again.
    s.handle(Request::Ftruncate { fd, size: 1000 }, None)
        .unwrap();
    s.handle(
        Request::Ftruncate {
            fd,
            size: PAGE + 500,
        },
        None,
    )
    .unwrap();
    let mut expect = vec![0u8; PAGE as usize + 500];
    expect[..1000].fill(0xAA);
    assert_eq!(
        pread(&mut s, fd, 2 * PAGE, 0),
        expect,
        "re-grown region must be zeros, not resurrected cache bytes"
    );
    assert_eq!(expect, std::fs::read(dir.path().join("t")).unwrap());
}

/// Unlink while a descriptor is open: the survivor keeps reading the
/// doomed file's true content, and a new file that may reuse the inode
/// number must never see the old file's pages.
#[test]
fn unlink_while_open_keeps_content_and_poisons_nothing() {
    let dir = TempDir::new();
    let shared = rig(dir.path(), 64 * 1024);
    let mut s = session(&shared);

    let fd = open(&mut s, "/doomed", rw());
    pwrite(&mut s, fd, &[7u8; PAGE as usize], 0);
    assert_eq!(pread(&mut s, fd, PAGE, 0), vec![7u8; PAGE as usize]);
    s.handle(
        Request::Unlink {
            path: "/doomed".into(),
        },
        None,
    )
    .unwrap();
    // The survivor still reads its (now unlinked) bytes.
    assert_eq!(pread(&mut s, fd, PAGE, 0), vec![7u8; PAGE as usize]);
    // A fresh file — quite likely recycling the freed inode number —
    // must read its own bytes, not the doomed file's cached pages.
    let fd2 = open(&mut s, "/fresh", rw());
    pwrite(&mut s, fd2, &[9u8; 512], 0);
    assert_eq!(pread(&mut s, fd2, 512, 0), vec![9u8; 512]);
    assert_eq!(pread(&mut s, fd2, PAGE, 0), vec![9u8; 512]);
    // Writes through the doomed fd stay correct too (no repopulation
    // that could collide with the recycled inode).
    pwrite(&mut s, fd, b"last words", PAGE);
    let mut expect = vec![7u8; PAGE as usize];
    expect.extend_from_slice(b"last words");
    assert_eq!(pread(&mut s, fd, 2 * PAGE, 0), expect);
}

/// A partial last page that grows across the page boundary: the gap
/// between the old EOF and the page edge must read as zeros (sparse
/// extension), and the spilled bytes land on the next page.
#[test]
fn partial_last_page_grows_across_the_boundary() {
    let dir = TempDir::new();
    let shared = rig(dir.path(), 64 * 1024);
    let mut s = session(&shared);

    let fd = open(&mut s, "/grow", rw());
    pwrite(&mut s, fd, &[3u8; 1000], 0);
    assert_eq!(pread(&mut s, fd, PAGE, 0), vec![3u8; 1000]);
    // Sparse write far past the page boundary.
    pwrite(&mut s, fd, &[4u8; 100], PAGE + 50);
    let mut expect = vec![0u8; (PAGE + 150) as usize];
    expect[..1000].fill(3);
    expect[(PAGE + 50) as usize..].fill(4);
    assert_eq!(pread(&mut s, fd, 2 * PAGE, 0), expect);
    assert_eq!(expect, std::fs::read(dir.path().join("grow")).unwrap());
}

/// Renaming over a cached file invalidates the clobbered pages: reads
/// of the path afterwards see the renamed file's bytes.
#[test]
fn rename_clobber_invalidates_the_victim() {
    let dir = TempDir::new();
    let shared = rig(dir.path(), 64 * 1024);
    let mut s = session(&shared);

    let fv = open(&mut s, "/victim", rw());
    pwrite(&mut s, fv, &[1u8; 2000], 0);
    assert_eq!(pread(&mut s, fv, 2000, 0), vec![1u8; 2000]);
    let fr = open(&mut s, "/replacement", rw());
    pwrite(&mut s, fr, &[2u8; 500], 0);
    s.handle(
        Request::Rename {
            from: "/replacement".into(),
            to: "/victim".into(),
        },
        None,
    )
    .unwrap();
    // A fresh open of the path reads the replacement's bytes.
    let f2 = open(&mut s, "/victim", OpenFlags::READ);
    assert_eq!(pread(&mut s, f2, PAGE, 0), vec![2u8; 500]);
    // The surviving descriptor on the clobbered inode still reads the
    // unlinked original.
    assert_eq!(pread(&mut s, fv, 2000, 0), vec![1u8; 2000]);
}

/// GETFILE is served from cache only when the whole file is resident,
/// and the streamed bytes are identical either way.
#[test]
fn getfile_from_cache_matches_the_disk() {
    let dir = TempDir::new();
    let shared = rig(dir.path(), 64 * 1024);
    let mut s = session(&shared);

    let fd = open(&mut s, "/g", rw());
    let body: Vec<u8> = (0..(PAGE + 777) as usize)
        .map(|i| (i % 251) as u8)
        .collect();
    pwrite(&mut s, fd, &body, 0);
    // Make the file fully resident.
    assert_eq!(pread(&mut s, fd, 2 * PAGE, 0), body);
    match s
        .handle(Request::Getfile { path: "/g".into() }, None)
        .unwrap()
    {
        Reply::Pages(p) => {
            let mut out = Vec::new();
            for sl in p.slices() {
                out.extend_from_slice(sl.as_slice());
            }
            assert_eq!(out, body, "cached GETFILE must serve exact bytes");
        }
        other => panic!("expected a fully-resident cache hit, got {other:?}"),
    }
}

/// Randomized mirror test against a plain `Vec<u8>` with a pathological
/// two-page cache: constant eviction, every page contended, every
/// operation still byte-exact.
#[test]
fn randomized_ops_mirror_a_flat_buffer() {
    let dir = TempDir::new();
    let shared = rig(dir.path(), 2 * PAGE); // two pages, one shard
    let mut s = session(&shared);
    let fd = open(&mut s, "/m", rw());

    const MAX: usize = 10 * PAGE as usize;
    let mut mirror: Vec<u8> = Vec::new();
    let mut state: u64 = 0xDEAD_BEEF_CAFE_F00D;
    let mut next = move |bound: u64| {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (state >> 33) % bound
    };
    for round in 0..2_000u32 {
        match next(10) {
            0..=3 => {
                let off = next(MAX as u64 / 2);
                let len = 1 + next(3 * PAGE) as usize;
                let len = len.min(MAX - off as usize);
                let fill = (round % 255 + 1) as u8;
                pwrite(&mut s, fd, &vec![fill; len], off);
                let end = off as usize + len;
                if mirror.len() < end {
                    mirror.resize(end, 0);
                }
                mirror[off as usize..end].fill(fill);
            }
            4..=8 => {
                let off = next(MAX as u64);
                let len = next(3 * PAGE) + 1;
                let got = pread(&mut s, fd, len, off);
                let start = (off as usize).min(mirror.len());
                let end = (off as usize + len as usize).min(mirror.len());
                assert_eq!(
                    got,
                    &mirror[start..end],
                    "round {round}: pread({len}@{off}) diverged"
                );
            }
            _ => {
                let size = next(MAX as u64);
                s.handle(Request::Ftruncate { fd, size }, None).unwrap();
                mirror.resize(size as usize, 0);
            }
        }
    }
    assert_eq!(mirror, std::fs::read(dir.path().join("m")).unwrap());
}

//! The server-side buffer cache: sharded, page-granular LRU.
//!
//! The paper's testbed model assumes every server fronts its disk
//! with an LRU buffer cache (§7), and `simnet` simulates one; this
//! module is the real thing. Fixed-size pages are keyed by
//! `(device, inode, page index)`, the byte budget is split across
//! shards so concurrent connection threads don't serialize on one
//! lock, and a hit hands back `Arc`'d pages the reply path writes
//! straight to the socket — zero disk I/O, at most one copy.
//!
//! Coherence rules (all enforced here, validated by the differential
//! oracle replaying seeded op mixes with the cache on):
//!
//! * **Write-through, write-no-allocate.** `PWRITE` goes to disk
//!   first, then patches any *resident* pages in place; it never
//!   populates absent ones. The host filesystem stays the single
//!   durable truth, so crash semantics and out-of-band inspection
//!   (the recursive-abstraction property) are unchanged.
//! * **Zero-tail invariant.** Bytes of a page buffer beyond its
//!   `valid` length are always zero, so sparse growth (pwrite past
//!   EOF, truncate up) extends `valid` without touching memory.
//! * **Fill/write race.** A reader loads a page from disk without
//!   holding any shard lock. A per-file *epoch* (striped atomics)
//!   is bumped by every mutation after it hits disk and before it
//!   patches resident pages; the reader samples the epoch before
//!   its disk read and discards the insert if it changed.
//! * **Inode reuse.** `UNLINK` (and a clobbering `RENAME`) drops the
//!   file's pages and *dooms* its [`FileState`]: descriptors still
//!   open keep reading through to disk but never repopulate the
//!   cache, so when the inode number is recycled by a later create
//!   no stale pages can be attributed to the new file.

use std::collections::{BTreeMap, HashMap};
use std::fs::File;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use chirp_proto::{ChirpError, ChirpResult};
use telemetry::{Counter, Gauge, Registry};

/// Identity of a host file: `(device, inode)`. Stable across all
/// descriptors and paths naming the same file.
pub type FileKey = (u64, u64);

/// The [`FileKey`] of host metadata.
pub fn file_key(meta: &std::fs::Metadata) -> FileKey {
    #[cfg(unix)]
    {
        use std::os::unix::fs::MetadataExt;
        (meta.dev(), meta.ino())
    }
    #[cfg(not(unix))]
    {
        compile_error!("chirp-server requires a unix host");
    }
}

/// Shared per-inode bookkeeping: the authoritative current size
/// (maintained by every mutating handler, so the hot write path makes
/// zero `fstat` calls) and the doomed flag (see module docs).
#[derive(Debug, Default)]
pub struct FileState {
    /// Current file size in bytes.
    pub size: AtomicU64,
    /// Set at unlink: never cache pages for this incarnation again.
    pub doomed: AtomicBool,
}

/// Maps live inodes to their shared [`FileState`]. Entries hold
/// [`Weak`] references — when the last descriptor on an inode closes,
/// the state drops and the entry goes stale, which is exactly the
/// point at which the kernel may recycle the inode number.
#[derive(Debug, Default)]
pub struct SizeTable {
    inner: Mutex<HashMap<FileKey, Weak<FileState>>>,
}

/// Dead-entry sweep threshold: past this many entries, a lookup first
/// drops stale `Weak`s so the table tracks open files, not history.
const SIZE_TABLE_SWEEP: usize = 4096;

impl SizeTable {
    /// A fresh, empty table.
    pub fn new() -> SizeTable {
        SizeTable::default()
    }

    /// The shared state for `key`, creating it at `size` if no open
    /// descriptor already tracks the inode. An existing live entry
    /// wins — it is maintained by every mutation path, while `size`
    /// is merely a point-in-time `fstat`.
    pub fn track(&self, key: FileKey, size: u64) -> Arc<FileState> {
        let mut map = self.inner.lock().expect("size table poisoned");
        if map.len() > SIZE_TABLE_SWEEP {
            map.retain(|_, w| w.strong_count() > 0);
        }
        if let Some(live) = map.get(&key).and_then(Weak::upgrade) {
            return live;
        }
        let state = Arc::new(FileState {
            size: AtomicU64::new(size),
            ..FileState::default()
        });
        map.insert(key, Arc::downgrade(&state));
        state
    }

    /// Update the tracked size of `key`, if any descriptor holds it.
    /// Path-level mutations (`TRUNCATE`, `PUTFILE`) call this so
    /// descriptors open on the same inode stay coherent.
    pub fn set_size(&self, key: FileKey, size: u64) {
        let map = self.inner.lock().expect("size table poisoned");
        if let Some(live) = map.get(&key).and_then(Weak::upgrade) {
            live.size.store(size, Ordering::Relaxed);
        }
    }

    /// Mark `key`'s current incarnation doomed (unlinked): open
    /// descriptors keep working but stop populating the cache.
    pub fn doom(&self, key: FileKey) {
        let map = self.inner.lock().expect("size table poisoned");
        if let Some(live) = map.get(&key).and_then(Weak::upgrade) {
            live.doomed.store(true, Ordering::Relaxed);
        }
    }
}

/// One cached page: an immutable-unless-exclusive buffer plus the
/// byte range of it a reply should send.
#[derive(Debug, Clone)]
pub struct PageSlice {
    page: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl PageSlice {
    /// The bytes this slice contributes to the reply.
    pub fn as_slice(&self) -> &[u8] {
        &self.page[self.start..self.end]
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A scatter-gather read reply: `total` bytes spread over page
/// slices, written to the socket without re-assembly.
#[derive(Debug, Default)]
pub struct PageReply {
    total: usize,
    slices: Vec<PageSlice>,
}

impl PageReply {
    /// Total bytes across all slices (the reply's status value).
    pub fn total(&self) -> usize {
        self.total
    }

    /// The slices, in file order.
    pub fn slices(&self) -> &[PageSlice] {
        &self.slices
    }
}

#[derive(Debug)]
struct Entry {
    data: Arc<Vec<u8>>,
    /// Bytes of `data` that mirror the file; the rest are zero. Only
    /// the file's last page may be partially valid.
    valid: usize,
    tick: u64,
}

/// A multiply-mix hasher for the page maps. The std default (SipHash)
/// costs as much as the rest of a cache hit combined, and its DoS
/// resistance buys nothing here: keys are inode numbers and page
/// indices, not attacker-chosen strings.
#[derive(Debug, Default)]
struct PageHasher(u64);

impl std::hash::Hasher for PageHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(26) ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type PageMap = HashMap<(FileKey, u64), Entry, std::hash::BuildHasherDefault<PageHasher>>;

#[derive(Debug, Default)]
struct Shard {
    map: PageMap,
    /// LRU order: tick -> page key. Ticks are unique per shard.
    lru: BTreeMap<u64, (FileKey, u64)>,
    tick: u64,
    /// Amortized-LRU window: a page touched within the last `lazy`
    /// ticks keeps its place in the recency index instead of paying
    /// two B-tree operations per hit. Zero on small shards, where
    /// eviction order must be exact to mean anything.
    lazy: u64,
}

impl Shard {
    fn touch(&mut self, key: (FileKey, u64)) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.map.get_mut(&key) {
            if tick - e.tick < self.lazy {
                return;
            }
            self.lru.remove(&e.tick);
            e.tick = tick;
            self.lru.insert(tick, key);
        }
    }

    fn remove(&mut self, key: (FileKey, u64)) -> Option<Entry> {
        let e = self.map.remove(&key)?;
        self.lru.remove(&e.tick);
        Some(e)
    }
}

/// Epoch stripes: plenty for the handful of connection threads a
/// personal server runs, small enough to be cache-resident itself.
const EPOCH_STRIPES: usize = 256;

/// The sharded page cache. One per server, owned by
/// [`crate::server::Shared`].
#[derive(Debug)]
pub struct PageCache {
    page: usize,
    /// Page budget per shard.
    shard_budget: u64,
    shards: Vec<Mutex<Shard>>,
    epochs: Vec<AtomicU64>,
    /// Single reads larger than this skip the cache entirely, so one
    /// oversized scan cannot evict the working set.
    bypass_bytes: u64,
    hits: Counter,
    misses: Counter,
    evicted: Counter,
    invalidated: Counter,
    bytes_from_cache: Counter,
    resident: Gauge,
}

impl PageCache {
    /// A cache budgeted at `capacity` bytes of `page`-byte pages,
    /// registering its counters (`cache.*`) on `registry`.
    pub fn new(capacity: u64, page: usize, registry: &Registry) -> PageCache {
        let page = page.max(512);
        let total_pages = (capacity / page as u64).max(1);
        // Shard only when each shard still holds a useful number of
        // pages; a pathological 2-page cache collapses to one shard.
        let shards = (total_pages / 4).clamp(1, 8) as usize;
        let shard_budget = (total_pages / shards as u64).max(1);
        PageCache {
            page,
            shard_budget,
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        // An eighth of the budget: pages that recently
                        // hit sit far from the LRU end, so deferring
                        // their reorder cannot change a victim choice
                        // by more than that margin.
                        lazy: shard_budget / 8,
                        ..Shard::default()
                    })
                })
                .collect(),
            epochs: (0..EPOCH_STRIPES).map(|_| AtomicU64::new(0)).collect(),
            bypass_bytes: (capacity / 2).max(page as u64),
            hits: registry.counter("cache.hits"),
            misses: registry.counter("cache.misses"),
            evicted: registry.counter("cache.evicted_pages"),
            invalidated: registry.counter("cache.invalidated_pages"),
            bytes_from_cache: registry.counter("cache.bytes_from_cache"),
            resident: registry.gauge("cache.resident_bytes"),
        }
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.page
    }

    /// Should a single read of `len` bytes skip the cache?
    pub fn bypass(&self, len: u64) -> bool {
        len > self.bypass_bytes
    }

    fn hash(key: FileKey, idx: u64) -> u64 {
        // Fibonacci-style mix; no dependency on the std hasher's
        // per-process randomization, so shard placement is stable.
        let mut h = key.0 ^ key.1.rotate_left(32) ^ idx;
        h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^ (h >> 29)
    }

    fn shard_for(&self, key: FileKey, idx: u64) -> &Mutex<Shard> {
        &self.shards[(Self::hash(key, idx) % self.shards.len() as u64) as usize]
    }

    fn epoch_cell(&self, key: FileKey) -> &AtomicU64 {
        &self.epochs[(Self::hash(key, u64::MAX) % EPOCH_STRIPES as u64) as usize]
    }

    /// Bump `key`'s epoch: call after a mutation reaches disk and
    /// before resident pages are patched, so concurrent cache fills
    /// that read stale bytes discard themselves.
    fn bump_epoch(&self, key: FileKey) {
        self.epoch_cell(key).fetch_add(1, Ordering::Release);
    }

    fn insert(&self, key: FileKey, idx: u64, data: Arc<Vec<u8>>, valid: usize) {
        let mut shard = self.shard_for(key, idx).lock().expect("shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        if shard.remove((key, idx)).is_none() {
            // A genuinely new page: make room first.
            while shard.map.len() as u64 >= self.shard_budget {
                let Some((&t, &victim)) = shard.lru.iter().next() else {
                    break;
                };
                shard.lru.remove(&t);
                shard.map.remove(&victim);
                self.evicted.inc();
                self.resident.adjust(-(self.page as i64));
            }
            self.resident.adjust(self.page as i64);
        }
        shard.map.insert((key, idx), Entry { data, valid, tick });
        shard.lru.insert(tick, (key, idx));
    }

    /// Serve `length` bytes at `offset` from a file of `size` bytes,
    /// filling missing pages from `file`. `allow_insert` is false for
    /// doomed incarnations (see module docs): reads still work, the
    /// cache just stays empty.
    pub fn read(
        &self,
        file: &File,
        key: FileKey,
        offset: u64,
        length: usize,
        size: u64,
        allow_insert: bool,
    ) -> ChirpResult<PageReply> {
        let end = (offset + length as u64).min(size);
        if offset >= end {
            return Ok(PageReply::default());
        }
        let page = self.page as u64;
        let first = offset / page;
        let last = (end - 1) / page;
        let mut slices = Vec::with_capacity((last - first + 1) as usize);
        for idx in first..=last {
            let page_off = idx * page;
            let s = (offset.max(page_off) - page_off) as usize;
            let e = (end.min(page_off + page) - page_off) as usize;
            // Bytes of this page the file actually backs.
            let want = (size - page_off).min(page) as usize;
            let cached = {
                let mut guard = self.shard_for(key, idx).lock().expect("shard poisoned");
                // One map lookup per hit: the recency touch reuses the
                // entry reference instead of re-hashing the key.
                let shard = &mut *guard;
                shard.tick += 1;
                let tick = shard.tick;
                match shard.map.get_mut(&(key, idx)) {
                    Some(entry) if entry.valid >= e => {
                        let data = entry.data.clone();
                        if tick - entry.tick >= shard.lazy {
                            shard.lru.remove(&entry.tick);
                            entry.tick = tick;
                            shard.lru.insert(tick, (key, idx));
                        }
                        Some(data)
                    }
                    _ => None,
                }
            };
            let data = match cached {
                Some(data) => {
                    self.hits.inc();
                    self.bytes_from_cache.add((e - s) as u64);
                    data
                }
                None => {
                    self.misses.inc();
                    let epoch = self.epoch_cell(key).load(Ordering::Acquire);
                    let mut buf = vec![0u8; self.page];
                    let got = read_at(file, &mut buf[..want], page_off)?;
                    // A shorter-than-expected read means the file
                    // changed under us (tracked size ran ahead of a
                    // racing truncate); serve what the disk has and
                    // skip the insert — the epoch moved anyway.
                    let data = Arc::new(buf);
                    if allow_insert
                        && got == want
                        && self.epoch_cell(key).load(Ordering::Acquire) == epoch
                    {
                        self.insert(key, idx, data.clone(), want);
                    }
                    data
                }
            };
            slices.push(PageSlice {
                page: data,
                start: s,
                end: e,
            });
        }
        Ok(PageReply {
            total: (end - offset) as usize,
            slices,
        })
    }

    /// `GETFILE` probe: the whole file, but only if every page is
    /// already resident — a miss streams from disk without populating
    /// (whole-file scans must not evict the hot working set).
    pub fn probe_file(&self, key: FileKey, size: u64) -> Option<PageReply> {
        if size == 0 {
            return Some(PageReply::default());
        }
        if size > self.shard_budget * self.shards.len() as u64 * self.page as u64 {
            return None;
        }
        let page = self.page as u64;
        let last = (size - 1) / page;
        let mut slices = Vec::with_capacity(last as usize + 1);
        for idx in 0..=last {
            let page_off = idx * page;
            let want = (size - page_off).min(page) as usize;
            let mut shard = self.shard_for(key, idx).lock().expect("shard poisoned");
            match shard.map.get(&(key, idx)) {
                Some(entry) if entry.valid >= want => {
                    let data = entry.data.clone();
                    shard.touch((key, idx));
                    slices.push(PageSlice {
                        page: data,
                        start: 0,
                        end: want,
                    });
                }
                _ => return None,
            }
        }
        self.hits.add(slices.len() as u64);
        self.bytes_from_cache.add(size);
        Some(PageReply {
            total: size as usize,
            slices,
        })
    }

    /// Write-through patch: `data` has reached disk at `offset`;
    /// update any resident pages. `old_size` is the file size before
    /// the write, for the old-EOF-page fixup (a page that was the
    /// partial last page becomes fully valid when the file grows past
    /// it — the gap bytes are zero on disk and in the buffer alike).
    pub fn write_through(&self, key: FileKey, offset: u64, data: &[u8], old_size: u64) {
        if data.is_empty() {
            return;
        }
        self.bump_epoch(key);
        let page = self.page as u64;
        let end = offset + data.len() as u64;
        for idx in offset / page..=(end - 1) / page {
            let page_off = idx * page;
            let s = (offset.max(page_off) - page_off) as usize;
            let e = (end.min(page_off + page) - page_off) as usize;
            let src = (page_off + s as u64 - offset) as usize;
            let mut shard = self.shard_for(key, idx).lock().expect("shard poisoned");
            if let Some(entry) = shard.map.get_mut(&(key, idx)) {
                // A reply in flight may still hold this page; give it
                // its own copy rather than mutating what it reads.
                let buf = Arc::make_mut(&mut entry.data);
                buf[s..e].copy_from_slice(&data[src..src + (e - s)]);
                entry.valid = entry.valid.max(e);
                shard.touch((key, idx));
            }
        }
        if end > old_size && !old_size.is_multiple_of(page) {
            // The old partial last page: everything between the old
            // EOF and the write (or the page end) is a zero-filled
            // gap, which the zero-tail invariant already covers.
            let idx = old_size / page;
            let page_off = idx * page;
            if end > page_off {
                let new_valid = (end - page_off).min(page) as usize;
                let mut shard = self.shard_for(key, idx).lock().expect("shard poisoned");
                if let Some(entry) = shard.map.get_mut(&(key, idx)) {
                    entry.valid = entry.valid.max(new_valid);
                }
            }
        }
    }

    /// The file was truncated on disk from `old_size` to `new_size`:
    /// drop pages past the new EOF, zero the boundary page's tail
    /// (re-establishing the zero-tail invariant so a later extension
    /// reads back zeros), or extend the old last page on growth.
    pub fn truncate(&self, key: FileKey, old_size: u64, new_size: u64) {
        if old_size == new_size {
            return;
        }
        self.bump_epoch(key);
        let page = self.page as u64;
        if new_size < old_size {
            for shard in &self.shards {
                let mut shard = shard.lock().expect("shard poisoned");
                let doomed: Vec<(FileKey, u64)> = shard
                    .map
                    .keys()
                    .filter(|(k, idx)| *k == key && idx * page >= new_size)
                    .copied()
                    .collect();
                for k in doomed {
                    shard.remove(k);
                    self.invalidated.inc();
                    self.resident.adjust(-(self.page as i64));
                }
            }
            if !new_size.is_multiple_of(page) {
                let idx = new_size / page;
                let new_valid = (new_size % page) as usize;
                let mut shard = self.shard_for(key, idx).lock().expect("shard poisoned");
                if let Some(entry) = shard.map.get_mut(&(key, idx)) {
                    if entry.valid > new_valid {
                        Arc::make_mut(&mut entry.data)[new_valid..entry.valid].fill(0);
                        entry.valid = new_valid;
                    }
                }
            }
        } else if !old_size.is_multiple_of(page) {
            // Growth: the old partial last page is now backed by
            // zeros up to the page end (or the new EOF).
            let idx = old_size / page;
            let page_off = idx * page;
            let new_valid = (new_size - page_off).min(page) as usize;
            let mut shard = self.shard_for(key, idx).lock().expect("shard poisoned");
            if let Some(entry) = shard.map.get_mut(&(key, idx)) {
                entry.valid = entry.valid.max(new_valid);
            }
        }
    }

    /// Drop every page of `key` (unlink, clobbering rename, putfile).
    pub fn invalidate(&self, key: FileKey) {
        self.bump_epoch(key);
        for shard in &self.shards {
            let mut shard = shard.lock().expect("shard poisoned");
            let doomed: Vec<(FileKey, u64)> = shard
                .map
                .keys()
                .filter(|(k, _)| *k == key)
                .copied()
                .collect();
            for k in doomed {
                shard.remove(k);
                self.invalidated.inc();
                self.resident.adjust(-(self.page as i64));
            }
        }
    }

    /// Resident bytes right now (for tests and `tss-top`).
    pub fn resident_bytes(&self) -> i64 {
        self.resident.get()
    }
}

fn read_at(file: &File, buf: &mut [u8], offset: u64) -> ChirpResult<usize> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        let mut filled = 0;
        while filled < buf.len() {
            match file.read_at(&mut buf[filled..], offset + filled as u64) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ChirpError::from_io(&e)),
            }
        }
        Ok(filled)
    }
    #[cfg(not(unix))]
    {
        compile_error!("chirp-server requires a unix host");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_proto::testutil::TempDir;

    fn open(dir: &TempDir, name: &str, content: &[u8]) -> (File, FileKey, u64) {
        let path = dir.path().join(name);
        std::fs::write(&path, content).unwrap();
        let file = File::open(&path).unwrap();
        let meta = file.metadata().unwrap();
        (file, file_key(&meta), meta.len())
    }

    fn collect(reply: &PageReply) -> Vec<u8> {
        let mut out = Vec::new();
        for s in reply.slices() {
            out.extend_from_slice(s.as_slice());
        }
        assert_eq!(out.len(), reply.total());
        out
    }

    fn content(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn read_spans_pages_and_hits_on_reread() {
        let dir = TempDir::new();
        let data = content(3000);
        let (file, key, size) = open(&dir, "f", &data);
        let cache = PageCache::new(1 << 20, 1024, &Registry::new());
        let r = cache.read(&file, key, 100, 2500, size, true).unwrap();
        assert_eq!(collect(&r), data[100..2600]);
        assert_eq!(cache.misses.get(), 3);
        let r = cache.read(&file, key, 0, 3000, size, true).unwrap();
        assert_eq!(collect(&r), data);
        assert_eq!(cache.hits.get(), 3, "all three pages now resident");
        assert_eq!(cache.resident_bytes(), 3 * 1024);
    }

    #[test]
    fn read_clamps_at_eof() {
        let dir = TempDir::new();
        let data = content(1500);
        let (file, key, size) = open(&dir, "f", &data);
        let cache = PageCache::new(1 << 20, 1024, &Registry::new());
        let r = cache.read(&file, key, 1000, 9999, size, true).unwrap();
        assert_eq!(collect(&r), data[1000..]);
        assert!(collect(&cache.read(&file, key, 1500, 10, size, true).unwrap()).is_empty());
        assert!(collect(&cache.read(&file, key, 99999, 10, size, true).unwrap()).is_empty());
    }

    #[test]
    fn two_page_cache_evicts_lru() {
        let dir = TempDir::new();
        let data = content(8192);
        let (file, key, size) = open(&dir, "f", &data);
        let cache = PageCache::new(2 * 1024, 1024, &Registry::new());
        assert_eq!(cache.shards.len(), 1, "tiny cache must not shard");
        for i in 0..8 {
            let r = cache.read(&file, key, i * 1024, 1024, size, true).unwrap();
            assert_eq!(collect(&r), data[i as usize * 1024..][..1024]);
        }
        assert_eq!(cache.evicted.get(), 6);
        assert!(cache.resident_bytes() <= 2 * 1024);
        // Page 7 is resident; page 0 is long gone.
        cache.read(&file, key, 7 * 1024, 1024, size, true).unwrap();
        assert_eq!(cache.misses.get(), 8);
        cache.read(&file, key, 0, 1024, size, true).unwrap();
        assert_eq!(cache.misses.get(), 9);
    }

    #[test]
    fn write_through_patches_resident_pages() {
        let dir = TempDir::new();
        let data = content(2048);
        let (file, key, size) = open(&dir, "f", &data);
        let cache = PageCache::new(1 << 20, 1024, &Registry::new());
        cache.read(&file, key, 0, 2048, size, true).unwrap();
        let patch = vec![0xAB; 600];
        cache.write_through(key, 700, &patch, size);
        let mut expect = data.clone();
        expect[700..1300].copy_from_slice(&patch);
        // Disk is stale in this unit test; a hit must come from the
        // patched pages, proving the patch (the real handler writes
        // disk first).
        let r = cache.read(&file, key, 0, 2048, size, true).unwrap();
        assert_eq!(collect(&r), expect);
        assert_eq!(cache.misses.get(), 2, "no refill after patch");
    }

    #[test]
    fn sparse_write_extends_the_old_eof_page_with_zeros() {
        let dir = TempDir::new();
        let data = content(600); // partial first page, valid=600
        let (file, key, size) = open(&dir, "f", &data);
        let cache = PageCache::new(1 << 20, 1024, &Registry::new());
        cache.read(&file, key, 0, 600, size, true).unwrap();
        // Write far past EOF: bytes 600..2000 are a zero gap.
        cache.write_through(key, 2000, &[7; 48], 600);
        let new_size = 2048;
        let r = cache.read(&file, key, 0, 1024, new_size, true).unwrap();
        let mut expect = data.clone();
        expect.resize(1024, 0);
        assert_eq!(collect(&r), expect, "gap reads back as zeros");
        assert_eq!(cache.misses.get(), 1, "page 0 stayed valid");
    }

    #[test]
    fn truncate_down_zeroes_the_boundary_tail() {
        let dir = TempDir::new();
        let data = content(2048);
        let (file, key, size) = open(&dir, "f", &data);
        let cache = PageCache::new(1 << 20, 1024, &Registry::new());
        cache.read(&file, key, 0, 2048, size, true).unwrap();
        cache.truncate(key, 2048, 300);
        assert_eq!(cache.invalidated.get(), 1, "page 1 dropped");
        // Extend again: bytes 300..  must read back zero, even though
        // the cached page still holds the old bytes physically.
        cache.truncate(key, 300, 1024);
        let r = cache.read(&file, key, 0, 1024, 1024, true).unwrap();
        let mut expect = data[..300].to_vec();
        expect.resize(1024, 0);
        assert_eq!(collect(&r), expect);
        assert_eq!(cache.misses.get(), 2, "boundary page reused, not refilled");
    }

    #[test]
    fn invalidate_drops_every_page() {
        let dir = TempDir::new();
        let data = content(4096);
        let (file, key, size) = open(&dir, "f", &data);
        let cache = PageCache::new(1 << 20, 1024, &Registry::new());
        cache.read(&file, key, 0, 4096, size, true).unwrap();
        assert_eq!(cache.resident_bytes(), 4096);
        cache.invalidate(key);
        assert_eq!(cache.resident_bytes(), 0);
        assert_eq!(cache.invalidated.get(), 4);
    }

    #[test]
    fn doomed_reads_serve_but_never_populate() {
        let dir = TempDir::new();
        let data = content(1024);
        let (file, key, size) = open(&dir, "f", &data);
        let cache = PageCache::new(1 << 20, 1024, &Registry::new());
        let r = cache.read(&file, key, 0, 1024, size, false).unwrap();
        assert_eq!(collect(&r), data);
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn probe_file_requires_full_residency() {
        let dir = TempDir::new();
        let data = content(2500);
        let (file, key, size) = open(&dir, "f", &data);
        let cache = PageCache::new(1 << 20, 1024, &Registry::new());
        assert!(cache.probe_file(key, size).is_none());
        cache.read(&file, key, 0, 2048, size, true).unwrap();
        assert!(cache.probe_file(key, size).is_none(), "last page missing");
        cache.read(&file, key, 2048, 452, size, true).unwrap();
        let r = cache.probe_file(key, size).expect("fully resident");
        assert_eq!(collect(&r), data);
    }

    #[test]
    fn concurrent_readers_and_writers_stay_coherent() {
        // Hammer one file from reader and writer threads; the cache
        // must end exactly mirroring the final disk contents.
        let dir = TempDir::new();
        let path = dir.path().join("f");
        std::fs::write(&path, content(8192)).unwrap();
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        let key = file_key(&file.metadata().unwrap());
        let cache = PageCache::new(4 * 1024, 1024, &Registry::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = &cache;
                let file = &file;
                s.spawn(move || {
                    use std::os::unix::fs::FileExt;
                    let mut rng = t * 2654435761 + 1;
                    for _ in 0..500 {
                        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let off = rng % 7000;
                        if rng % 3 == 0 {
                            let buf = [(rng % 256) as u8; 512];
                            file.write_all_at(&buf, off).unwrap();
                            cache.write_through(key, off, &buf, 8192);
                        } else {
                            cache.read(file, key, off, 1024, 8192, true).unwrap();
                        }
                    }
                });
            }
        });
        let disk = std::fs::read(&path).unwrap();
        let r = cache.read(&file, key, 0, 8192, 8192, true).unwrap();
        assert_eq!(collect(&r), disk, "cache diverged from disk at rest");
    }
}

//! `chirp-server` — deploy a personal file server with one command.
//!
//! ```text
//! chirp-server --root /data/export
//! chirp-server --root . --port 9094 --owner alice \
//!     --acl 'hostname:*.cse.nd.edu v(rwl)' \
//!     --key globus:/O=ND/CN=alice:s3cret-key \
//!     --superuser globus:/O=ND/CN=alice \
//!     --catalog catalog.cse.nd.edu:9097 --report-interval 300
//! ```
//!
//! No privileges, no kernel modules, no configuration files: the
//! paper's rapid-deployment property as a binary.

use std::time::Duration;

use chirp_server::acl::Acl;
use chirp_server::{FileServer, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: chirp-server --root DIR [options]\n\
         \n\
         options:\n\
         \x20 --root DIR               directory to export (required)\n\
         \x20 --port N                 TCP port (default {}; 0 = ephemeral)\n\
         \x20 --owner NAME             owner string for catalog reports\n\
         \x20 --acl 'SUBJECT RIGHTS'   root ACL entry (repeatable)\n\
         \x20 --key M:SUBJECT:KEY      register a challenge-response key credential\n\
         \x20 --superuser PATTERN      subject pattern with all rights (repeatable)\n\
         \x20 --unix-challenge-dir DIR enable the unix auth method via DIR\n\
         \x20 --catalog HOST:PORT      report to this catalog (repeatable)\n\
         \x20 --report-interval SECS   seconds between reports (default 300)\n\
         \x20 --capacity BYTES         advertised capacity (default 1 GiB)\n\
         \x20 --cache-bytes BYTES      server-side buffer cache budget (0 = off, the default)\n\
         \x20 --name NAME              server name in catalog listings",
        chirp_proto::DEFAULT_PORT
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<String> = None;
    let mut port: u16 = chirp_proto::DEFAULT_PORT;
    let mut owner = whoami();
    let mut acl_entries: Vec<String> = Vec::new();
    let mut config_mods: Vec<Box<dyn FnOnce(ServerConfig) -> ServerConfig>> = Vec::new();
    let mut capacity: u64 = 1 << 30;
    let mut report_interval = Duration::from_secs(300);
    let mut catalogs: Vec<std::net::SocketAddr> = Vec::new();
    let mut server_name: Option<String> = None;
    let mut unix_dir: Option<String> = None;
    let mut cache_bytes: Option<u64> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--root" => root = Some(val()),
            "--port" => port = val().parse().unwrap_or_else(|_| usage()),
            "--owner" => owner = val(),
            "--acl" => acl_entries.push(val()),
            "--key" => {
                let spec = val();
                let mut parts = spec.splitn(3, ':');
                let (Some(m), Some(s), Some(key)) = (parts.next(), parts.next(), parts.next())
                else {
                    usage()
                };
                let (m, s, key) = (m.to_string(), s.to_string(), key.to_string());
                config_mods.push(Box::new(move |c| c.with_key(&m, &s, key.as_bytes())));
            }
            "--superuser" => {
                let p = val();
                config_mods.push(Box::new(move |c| c.with_superuser(&p)));
            }
            "--unix-challenge-dir" => unix_dir = Some(val()),
            "--catalog" => {
                catalogs.push(val().parse().unwrap_or_else(|_| usage()));
            }
            "--report-interval" => {
                report_interval = Duration::from_secs(val().parse().unwrap_or_else(|_| usage()));
            }
            "--capacity" => capacity = val().parse().unwrap_or_else(|_| usage()),
            "--cache-bytes" => {
                let bytes: u64 = val().parse().unwrap_or_else(|_| usage());
                cache_bytes = (bytes > 0).then_some(bytes);
            }
            "--name" => server_name = Some(val()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let Some(root) = root else { usage() };

    let acl = if acl_entries.is_empty() {
        // A server with no grants is only useful to superusers; warn.
        eprintln!("note: no --acl entries; only --superuser subjects will have access");
        Acl::new()
    } else {
        Acl::parse(&acl_entries.join("\n")).unwrap_or_else(|e| {
            eprintln!("bad --acl entry: {e}");
            std::process::exit(2);
        })
    };

    let mut config = ServerConfig::localhost(&root, &owner).with_root_acl(acl);
    config.bind = format!("0.0.0.0:{port}").parse().expect("valid bind");
    config.capacity_bytes = capacity;
    config.catalogs = catalogs;
    config.report_interval = report_interval;
    config.server_name = server_name;
    config.unix_challenge_dir = unix_dir.map(Into::into);
    config.cache_bytes = cache_bytes;
    for f in config_mods {
        config = f(config);
    }

    match FileServer::start(config) {
        Ok(server) => {
            println!(
                "chirp-server: exporting {root} at {} (owner {owner})",
                server.addr()
            );
            // Serve until killed.
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        Err(e) => {
            eprintln!("chirp-server: {e}");
            std::process::exit(1);
        }
    }
}

fn whoami() -> String {
    std::env::var("USER").unwrap_or_else(|_| "unknown".to_string())
}

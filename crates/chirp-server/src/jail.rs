//! Software `chroot`: confining protocol paths to the server root.
//!
//! Because real `chroot(2)` is only available to root and a Chirp
//! server must be deployable by an ordinary user, the server provides
//! an equivalent facility in software: every protocol path is resolved
//! *logically* (component by component, without consulting symlinks)
//! against the server root, and `..` can never climb above it.

use std::path::{Path, PathBuf};

use chirp_proto::ChirpError;

/// Name of the per-directory ACL file. It is part of the server's
/// private metadata: invisible to `getdir` and unreachable through any
/// protocol path.
pub const ACL_FILE: &str = ".__acl";

/// A path jail rooted at the server's export directory.
#[derive(Debug, Clone)]
pub struct Jail {
    root: PathBuf,
}

impl Jail {
    /// Create a jail rooted at `root`. The directory must exist.
    pub fn new(root: impl Into<PathBuf>) -> std::io::Result<Jail> {
        let root = root.into().canonicalize()?;
        Ok(Jail { root })
    }

    /// The jail root on the host filesystem.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Normalize a protocol path into jail-relative components.
    ///
    /// Protocol paths are always absolute (`/a/b/c`). `.` and empty
    /// components vanish; `..` pops but never climbs above the root
    /// (as in a real chroot, `/..` is `/`). Components that would name
    /// the ACL metadata file are rejected.
    pub fn components(&self, chirp_path: &str) -> Result<Vec<String>, ChirpError> {
        let mut parts: Vec<String> = Vec::new();
        for comp in chirp_path.split('/') {
            match comp {
                "" | "." => {}
                ".." => {
                    parts.pop();
                }
                ACL_FILE => return Err(ChirpError::NotAuthorized),
                c => parts.push(c.to_string()),
            }
        }
        Ok(parts)
    }

    /// Resolve a protocol path to a host path inside the jail.
    pub fn resolve(&self, chirp_path: &str) -> Result<PathBuf, ChirpError> {
        let mut out = self.root.clone();
        for comp in self.components(chirp_path)? {
            out.push(comp);
        }
        Ok(out)
    }

    /// Resolve a protocol path to `(host_parent_dir, leaf_name)`.
    ///
    /// ACL checks are made against the *containing directory* of the
    /// target, which this accessor names. Fails on the root itself,
    /// which has no parent inside the jail.
    pub fn resolve_parent(&self, chirp_path: &str) -> Result<(PathBuf, String), ChirpError> {
        let mut parts = self.components(chirp_path)?;
        let leaf = parts.pop().ok_or(ChirpError::InvalidRequest)?;
        let mut dir = self.root.clone();
        for comp in parts {
            dir.push(comp);
        }
        Ok((dir, leaf))
    }

    /// The normalized protocol form of a path (`/a/b`), useful for
    /// logging and catalog reports.
    pub fn normalize(&self, chirp_path: &str) -> Result<String, ChirpError> {
        let parts = self.components(chirp_path)?;
        if parts.is_empty() {
            Ok("/".to_string())
        } else {
            Ok(format!("/{}", parts.join("/")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use chirp_proto::testutil::TempDir;

    fn jail() -> (TempDir, Jail) {
        let dir = TempDir::new();
        let jail = Jail::new(dir.path()).unwrap();
        (dir, jail)
    }

    #[test]
    fn plain_paths_resolve_under_root() {
        let (_d, j) = jail();
        assert_eq!(j.resolve("/a/b").unwrap(), j.root().join("a/b"));
    }

    #[test]
    fn dotdot_cannot_escape() {
        let (_d, j) = jail();
        assert_eq!(
            j.resolve("/../../../etc/passwd").unwrap(),
            j.root().join("etc/passwd")
        );
        assert_eq!(j.resolve("/a/../..").unwrap(), j.root());
    }

    #[test]
    fn dots_and_empties_collapse() {
        let (_d, j) = jail();
        assert_eq!(j.resolve("//a/./b//").unwrap(), j.root().join("a/b"));
    }

    #[test]
    fn acl_file_is_unreachable() {
        let (_d, j) = jail();
        assert_eq!(j.resolve("/.__acl").unwrap_err(), ChirpError::NotAuthorized);
        assert_eq!(
            j.resolve("/sub/.__acl").unwrap_err(),
            ChirpError::NotAuthorized
        );
    }

    #[test]
    fn parent_of_root_is_invalid() {
        let (_d, j) = jail();
        assert!(j.resolve_parent("/").is_err());
        assert!(j.resolve_parent("/a/..").is_err());
        let (dir, leaf) = j.resolve_parent("/a/b").unwrap();
        assert_eq!(dir, j.root().join("a"));
        assert_eq!(leaf, "b");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn resolved_paths_never_escape_the_root(path in "\\PC{0,64}") {
                let dir = TempDir::new();
                let j = Jail::new(dir.path()).unwrap();
                if let Ok(host) = j.resolve(&path) {
                    prop_assert!(
                        host.starts_with(j.root()),
                        "{path:?} resolved outside the jail: {host:?}"
                    );
                }
            }

            #[test]
            fn normalize_is_idempotent(path in "(/|[a-z.]{1,8}){0,8}") {
                let dir = TempDir::new();
                let j = Jail::new(dir.path()).unwrap();
                if let Ok(once) = j.normalize(&path) {
                    prop_assert_eq!(j.normalize(&once).unwrap(), once);
                }
            }
        }
    }

    #[test]
    fn normalize_produces_canonical_form() {
        let (_d, j) = jail();
        assert_eq!(j.normalize("//a/./b/../c").unwrap(), "/a/c");
        assert_eq!(j.normalize("/").unwrap(), "/");
        assert_eq!(j.normalize("/..").unwrap(), "/");
    }
}

//! The service: accept loop, connection threads, lifecycle.
//!
//! The server is transport-agnostic: [`FileServer::start`] binds a
//! real [`TcpListener`], while [`FileServer::start_on`] accepts any
//! [`Listener`] — the simulation harness hands it an in-memory one and
//! the whole handler stack runs without a socket in sight.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use chirp_proto::transport::{Listener, Transport};
use chirp_proto::wire;
use chirp_proto::{ChirpError, Request};

use crate::cache::{PageCache, PageReply, SizeTable};
use crate::config::{CoreKind, ServerConfig};
use crate::handlers::{Reply, Session};
use crate::jail::Jail;
use crate::reactor::Reactor;
use crate::stats::{ServerStats, ServerTelemetry};

/// State shared by every connection of one server.
pub struct Shared {
    /// The server configuration.
    pub config: ServerConfig,
    /// The path jail rooted at the export directory.
    pub jail: Jail,
    /// Activity counters.
    pub stats: ServerStats,
    /// Per-op metrics, latency histograms, and the RPC trace ring;
    /// folded into every catalog report.
    pub telemetry: ServerTelemetry,
    /// The server-side buffer cache; `None` (the default) reads
    /// through to the filesystem on every `PREAD`, bit-identically to
    /// a cacheless server.
    pub cache: Option<PageCache>,
    /// Per-inode size tracking shared across descriptors, so the hot
    /// write path computes growth without an `fstat`.
    pub sizes: SizeTable,
    /// Currently active connections.
    pub active: AtomicUsize,
    /// Set when the server is shutting down.
    pub shutdown: AtomicBool,
    /// Approximate bytes stored under the root, maintained on every
    /// mutation and reconciled with a real walk on each `STATFS`.
    pub used_bytes: AtomicU64,
}

impl Shared {
    /// Build the shared server state: create and jail the root,
    /// install the root ACL if the directory is not already governed,
    /// size the buffer cache, and take the initial usage walk. This
    /// is everything [`FileServer::start_on`] does short of spawning
    /// threads, exposed so benches and tests can drive
    /// [`Session`](crate::handlers::Session)s directly.
    pub fn new(config: ServerConfig) -> std::io::Result<Arc<Shared>> {
        std::fs::create_dir_all(&config.root)?;
        let jail = Jail::new(&config.root)?;
        // Install the root ACL only if the directory is not already
        // governed (exporting existing data must not clobber policy).
        let acl_path = jail.root().join(crate::jail::ACL_FILE);
        if !acl_path.exists() && !config.root_acl.entries().is_empty() {
            config
                .root_acl
                .store(jail.root())
                .map_err(|e| std::io::Error::other(e.to_string()))?;
        }
        let used = crate::handlers::disk_usage(jail.root());
        let telemetry = ServerTelemetry::default();
        let cache = config
            .cache_bytes
            .filter(|&b| b > 0)
            .map(|b| PageCache::new(b, config.cache_page_bytes, telemetry.registry()));
        Ok(Arc::new(Shared {
            config,
            jail,
            stats: ServerStats::default(),
            telemetry,
            cache,
            sizes: SizeTable::new(),
            active: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            used_bytes: AtomicU64::new(used),
        }))
    }
    /// Record `delta` bytes added (positive) or removed (negative).
    pub fn adjust_usage(&self, delta: i64) {
        if delta >= 0 {
            self.used_bytes.fetch_add(delta as u64, Ordering::Relaxed);
        } else {
            let dec = (-delta) as u64;
            let mut cur = self.used_bytes.load(Ordering::Relaxed);
            loop {
                let next = cur.saturating_sub(dec);
                match self.used_bytes.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(now) => cur = now,
                }
            }
        }
    }

    /// Would storing `additional` bytes exceed the capacity policy?
    pub fn over_capacity(&self, additional: u64) -> bool {
        self.config.enforce_capacity
            && self.used_bytes.load(Ordering::Relaxed) + additional > self.config.capacity_bytes
    }
}

/// A running Chirp file server.
///
/// Deployment is a single call: `FileServer::start(config)`. The
/// listener binds, the root ACL is installed if absent, catalog
/// reporting begins, and the server is immediately usable — the
/// paper's *rapid deployment* property.
pub struct FileServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    listener: Arc<dyn Listener>,
    accept_thread: Option<JoinHandle<()>>,
    report_thread: Option<JoinHandle<()>>,
    reactor: Option<Arc<Reactor>>,
}

impl FileServer {
    /// Start a server on TCP. Returns once the listener is bound.
    pub fn start(config: ServerConfig) -> std::io::Result<FileServer> {
        let listener = TcpListener::bind(config.bind)?;
        FileServer::start_on(config, Arc::new(listener))
    }

    /// Start a server on an already-bound [`Listener`] — any
    /// transport, including the in-memory network. `config.bind` is
    /// ignored; the listener's own address is authoritative.
    pub fn start_on(
        config: ServerConfig,
        listener: Arc<dyn Listener>,
    ) -> std::io::Result<FileServer> {
        let shared = Shared::new(config)?;
        let addr = listener.local_addr()?;
        let reactor = match Reactor::effective_core(&shared.config) {
            CoreKind::Reactor => Some(Arc::new(Reactor::start(&shared)?)),
            CoreKind::Threads => None,
        };
        let accept_shared = shared.clone();
        let accept_listener = listener.clone();
        let accept_reactor = reactor.clone();
        let accept_thread = std::thread::Builder::new()
            .name(format!("chirp-accept-{}", addr.port()))
            .spawn(move || accept_loop(accept_listener, accept_shared, accept_reactor))?;
        let report_thread = if shared.config.catalogs.is_empty() {
            None
        } else {
            let report_shared = shared.clone();
            Some(
                std::thread::Builder::new()
                    .name(format!("chirp-report-{}", addr.port()))
                    .spawn(move || crate::report::report_loop(report_shared, addr))?,
            )
        };
        Ok(FileServer {
            shared,
            addr,
            listener,
            accept_thread: Some(accept_thread),
            report_thread,
            reactor,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `host:port` string for building URLs and namespaces.
    pub fn endpoint(&self) -> String {
        self.addr.to_string()
    }

    /// Activity counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Per-op metrics and the RPC trace ring.
    pub fn telemetry(&self) -> &ServerTelemetry {
        &self.shared.telemetry
    }

    /// Number of live connections.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// The catalog report packet this server would send right now —
    /// the same bytes the report thread puts on UDP. Harnesses feed
    /// catalogs (and federations) with this instead of a socket hop.
    pub fn compose_report(&self) -> String {
        crate::report::compose_report(&self.shared, self.addr)
    }

    /// Stop accepting connections and wake the accept thread. Existing
    /// connections end when their clients disconnect or on their next
    /// request.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept() call.
        self.listener.wake();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        // The reactor workers observe the shutdown flag when woken,
        // tear down their connections, and exit.
        if let Some(r) = self.reactor.take() {
            r.join();
        }
        if let Some(h) = self.report_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FileServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: Arc<dyn Listener>, shared: Arc<Shared>, reactor: Option<Arc<Reactor>>) {
    loop {
        let accepted = listener.accept();
        let (stream, peer) = match accepted {
            Ok(pair) => pair,
            Err(e) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // A closed listener (the simulated host was unbound
                // from under us) never accepts again; exit instead of
                // spinning on the error.
                if e.kind() == std::io::ErrorKind::NotConnected {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if shared.active.load(Ordering::Relaxed) >= shared.config.max_connections {
            // Refuse politely: one error line, then close.
            let mut stream = stream;
            let mut w = BufWriter::new(&mut stream);
            let _ = wire::write_error(&mut w, ChirpError::Busy);
            let _ = w.flush();
            continue;
        }
        shared.active.fetch_add(1, Ordering::Relaxed);
        shared.stats.connection();
        match &reactor {
            // The reactor shard adopts the connection (or spawns a
            // dedicated thread itself for transports with no readiness
            // support) and owns the `active` decrement.
            Some(r) => r.dispatch(stream, peer),
            None => {
                let conn_shared = shared.clone();
                let _ = std::thread::Builder::new()
                    .name("chirp-conn".to_string())
                    .spawn(move || {
                        let _ = serve_connection(stream, peer, &conn_shared);
                        conn_shared.active.fetch_sub(1, Ordering::Relaxed);
                    });
            }
        }
    }
}

/// Serve one connection until the client disconnects or violates the
/// protocol. All per-connection resources (open files, auth state) are
/// freed on return — the paper's failure semantics.
///
/// This is the blocking core's loop body; the reactor replays the same
/// contract op-for-op and also uses it directly (on a dedicated
/// thread) for transports with no readiness support.
pub(crate) fn serve_connection(
    stream: Box<dyn Transport>,
    peer: SocketAddr,
    shared: &Arc<Shared>,
) -> std::io::Result<()> {
    // Idle policy: a read that times out ends the session exactly like
    // a disconnect would — the client must reconnect and re-open.
    stream.set_read_timeout(shared.config.idle_timeout)?;
    let mut reader = BufReader::with_capacity(256 * 1024, stream.try_clone()?);
    let mut writer = BufWriter::with_capacity(256 * 1024, stream);
    let mut session = Session::new(shared.clone(), peer.ip());
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let Some(line) = wire::read_line(&mut reader)? else {
            return Ok(()); // clean disconnect
        };
        shared.stats.request();
        let span = telemetry::SpanTimer::start();
        let parsed = Request::parse(&line);
        let (op, bytes_in) = match &parsed {
            Ok(req) => (req.op_name(), req.payload_len()),
            Err(_) => ("invalid", 0),
        };
        let reply = match parsed {
            Err(e) => Err(e),
            Ok(Request::Putfile { path, mode, length }) => {
                session.handle_putfile(&path, mode, length, &mut reader)
            }
            Ok(req @ Request::Pwrite { length, .. }) => {
                match wire::read_payload(&mut reader, length) {
                    Ok(payload) => session.handle(req, Some(payload)),
                    Err(e) => {
                        // Framing is lost once we fail to read a
                        // payload; drop the connection.
                        wire::write_error(&mut writer, e)?;
                        writer.flush()?;
                        return Ok(());
                    }
                }
            }
            Ok(req) => session.handle(req, None),
        };
        let bytes_out = match &reply {
            Ok(Reply::Data(data)) => data.len() as u64,
            Ok(Reply::Scratch(n)) => *n as u64,
            Ok(Reply::FileStream(_, len)) => *len,
            Ok(Reply::Pages(p)) => p.total() as u64,
            _ => 0,
        };
        let error = reply.as_ref().err().copied();
        match reply {
            Ok(Reply::Value(v)) => wire::write_status(&mut writer, v)?,
            Ok(Reply::Words(v, words)) => wire::write_status_words(&mut writer, v, &words)?,
            Ok(Reply::Data(data)) => {
                wire::write_status(&mut writer, data.len() as i64)?;
                writer.write_all(&data)?;
            }
            Ok(Reply::Scratch(n)) => {
                wire::write_status(&mut writer, n as i64)?;
                writer.write_all(&session.scratch()[..n])?;
            }
            Ok(Reply::FileStream(mut file, len)) => {
                wire::write_status(&mut writer, len as i64)?;
                wire::copy_exact(&mut file, &mut writer, len)?;
            }
            Ok(Reply::Pages(p)) => {
                wire::write_status(&mut writer, p.total() as i64)?;
                write_pages(&mut writer, &p)?;
            }
            Err(e) => {
                shared.stats.error();
                wire::write_error(&mut writer, e)?;
            }
        }
        session.trim_scratch();
        // Pipelining: when a complete next request already sits in the
        // read buffer (a `\n` in buffered bytes means at least one full
        // line — payload bytes are consumed before this point), keep
        // the reply buffered and go read it, overlapping this reply's
        // drain with the next request's service. Before any read that
        // could block, the buffer is `\n`-free, so the flush always
        // happens ahead of waiting on the client.
        if !reader.buffer().contains(&b'\n') {
            writer.flush()?;
        }
        shared.telemetry.record(
            op,
            session.subject(),
            span.elapsed_ns(),
            bytes_in,
            bytes_out,
            error,
        );
    }
}

/// Write a [`PageReply`]'s slices. Small replies ride the `BufWriter`
/// (one copy into its buffer, coalescing with the status line and any
/// pipelined neighbors); large ones flush it and hand the transport a
/// single vectored write, so a cache hit never costs more than one
/// copy of the data.
fn write_pages(
    writer: &mut BufWriter<Box<dyn Transport>>,
    reply: &PageReply,
) -> std::io::Result<()> {
    let room = writer.capacity() - writer.buffer().len();
    if reply.total() <= room {
        for s in reply.slices() {
            writer.write_all(s.as_slice())?;
        }
        return Ok(());
    }
    writer.flush()?;
    let bufs: Vec<&[u8]> = reply.slices().iter().map(|s| s.as_slice()).collect();
    wire::write_all_vectored(writer.get_mut(), &bufs)
}

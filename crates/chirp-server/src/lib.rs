//! The Chirp personal file server — the TSS *resource layer*.
//!
//! A file server exports a Unix-like I/O interface over TCP to external
//! users, who build higher-level abstractions on top of it. Each server
//! is owned: the owner controls who may connect (authentication), what
//! they may do (per-directory ACLs over a fully *virtual user space* of
//! `method:name` subjects), and may evict users or data at any time by
//! simply deleting files.
//!
//! Design properties carried over from the paper:
//!
//! * **Rapid deployment** — [`FileServer::start`] needs a directory and
//!   nothing else: no privileges, no kernel modules, no configuration
//!   files. Any user can export fresh space or existing data.
//! * **Software chroot** — the server confines all paths to its root
//!   directory in software ([`jail`]), since real `chroot` needs root.
//! * **Simple failure semantics** — when a connection drops, the server
//!   frees everything associated with it; descriptors never outlive the
//!   connection. Recovery policy belongs to the client-side adapter.
//! * **Recursive abstraction** — files and directories are stored
//!   without transformation in the host filesystem, so existing data
//!   can be exported in place and the owner can always inspect what the
//!   server stores.

#![warn(missing_docs)]

pub mod acl;
pub mod auth;
pub mod cache;
pub mod config;
pub mod fdtable;
pub mod handlers;
pub mod jail;
mod reactor;
pub mod report;
pub mod server;
pub mod stats;

pub use acl::{Acl, AclEntry, Rights};
pub use auth::{AuthOutcome, Authenticator};
pub use cache::{PageCache, PageReply};
pub use config::{KeyCredential, KeyRing, ServerConfig};
pub use jail::Jail;
pub use server::FileServer;
pub use stats::{ServerStats, ServerTelemetry};

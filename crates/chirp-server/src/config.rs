//! Server configuration.

use std::net::{IpAddr, SocketAddr};
use std::path::PathBuf;
use std::sync::{Arc, RwLock};
use std::time::Duration;

use chirp_proto::crypto::key_fingerprint;
use chirp_proto::persist::Persist;
use chirp_proto::transport::Dialer;

use crate::acl::Acl;

/// How the server turns a peer address into a `hostname:` identity.
///
/// The production system performed reverse DNS; the library takes a
/// pluggable resolver so deployments and tests can control the mapping
/// without a name service.
pub type HostnameResolver = Arc<dyn Fn(IpAddr) -> String + Send + Sync>;

/// A registered challenge–response credential standing in for an
/// external authentication system (GSI certificates, Kerberos
/// tickets).
///
/// Proving possession of `key` — by MACing a server-issued nonce,
/// never by sending the key — yields the subject
/// `method:subject_name`, e.g. `globus:/O=NotreDame/CN=alice`: the
/// same free-form subject shape the paper's ACL examples use.
#[derive(Clone)]
pub struct KeyCredential {
    /// Method label the subject is formed under (`globus`, `kerberos`).
    pub method: String,
    /// Identity granted on successful proof of possession.
    pub subject_name: String,
    /// The secret key bytes (never sent on the wire).
    pub key: Vec<u8>,
}

impl std::fmt::Debug for KeyCredential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyCredential")
            .field("method", &self.method)
            .field("subject_name", &self.subject_name)
            .field("key_id", &key_fingerprint(&self.key))
            .finish()
    }
}

/// The server's registered credentials: a shared, rotatable ring.
///
/// Cloning a `KeyRing` clones the *handle*, not the contents, so a
/// test (or an operator task) holding the same ring as a running
/// server can rotate keys under live connections — in-flight
/// handshakes resolve against whatever the ring holds at
/// verification time, and rotated-out keys stop verifying
/// immediately.
#[derive(Debug, Clone, Default)]
pub struct KeyRing {
    inner: Arc<RwLock<Vec<KeyCredential>>>,
}

impl KeyRing {
    /// An empty ring.
    pub fn new() -> KeyRing {
        KeyRing::default()
    }

    /// Register a credential. The key's public id is its
    /// [`key_fingerprint`]; clients present that id with their MAC so
    /// the server can select the credential without a trial pass.
    pub fn register(&self, method: &str, subject_name: &str, key: &[u8]) {
        let mut ring = self.inner.write().expect("keyring poisoned");
        ring.push(KeyCredential {
            method: method.to_string(),
            subject_name: subject_name.to_string(),
            key: key.to_vec(),
        });
    }

    /// Replace the key for `(method, subject_name)` with `new_key`,
    /// changing its fingerprint — the old key stops verifying the
    /// moment this returns. Returns `false` if no such credential is
    /// registered.
    pub fn rotate(&self, method: &str, subject_name: &str, new_key: &[u8]) -> bool {
        let mut ring = self.inner.write().expect("keyring poisoned");
        for cred in ring.iter_mut() {
            if cred.method == method && cred.subject_name == subject_name {
                cred.key = new_key.to_vec();
                return true;
            }
        }
        false
    }

    /// Remove the credential for `(method, subject_name)`. Returns
    /// `false` if none was registered.
    pub fn remove(&self, method: &str, subject_name: &str) -> bool {
        let mut ring = self.inner.write().expect("keyring poisoned");
        let before = ring.len();
        ring.retain(|c| !(c.method == method && c.subject_name == subject_name));
        ring.len() != before
    }

    /// Find the credential registered under `method` whose key
    /// fingerprint is `key_id`.
    pub fn lookup(&self, method: &str, key_id: &str) -> Option<KeyCredential> {
        let ring = self.inner.read().expect("keyring poisoned");
        ring.iter()
            .find(|c| c.method == method && key_fingerprint(&c.key) == key_id)
            .cloned()
    }

    /// Number of registered credentials.
    pub fn len(&self) -> usize {
        self.inner.read().expect("keyring poisoned").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which connection-serving core a [`crate::FileServer`] runs.
///
/// Both cores speak the identical wire protocol through the identical
/// [`crate::handlers::Session`] — the differential oracle replays the
/// same op sequences against each and demands byte-identical replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoreKind {
    /// Sharded nonblocking event loops multiplexing many connections
    /// per thread (the default; scales to tens of thousands of idle
    /// connections at flat memory).
    #[default]
    Reactor,
    /// One blocking thread per connection (the original core; also
    /// what `service_delay` forces, since an artificial per-RPC sleep
    /// would serialize every connection sharing a reactor worker).
    Threads,
}

/// Configuration for a [`crate::FileServer`].
#[derive(Clone)]
pub struct ServerConfig {
    /// Directory exported as the server root. Existing contents are
    /// exported in place (recursive abstraction: no copies, no
    /// transformation).
    pub root: PathBuf,
    /// Address to bind; use port 0 for an ephemeral port.
    pub bind: SocketAddr,
    /// Human name of the owner, published to catalogs.
    pub owner: String,
    /// Subject patterns with implicit full rights everywhere — the
    /// owner "retains access to all data on that server".
    pub superuser: Vec<String>,
    /// ACL installed at the root directory on startup if none exists.
    pub root_acl: Acl,
    /// Registered challenge–response credentials (see [`KeyRing`]).
    /// The ring is a shared handle: clone it before building the
    /// server to rotate keys while it runs.
    pub keys: KeyRing,
    /// Maps peer IPs to hostnames for the `hostname` method.
    pub hostname_resolver: HostnameResolver,
    /// Directory for `unix` method challenge files; `None` disables the
    /// method. Both client and server must see this directory (it
    /// proves the client shares the local filesystem).
    pub unix_challenge_dir: Option<PathBuf>,
    /// Advertised storage capacity; `STATFS` reports
    /// `free = capacity - bytes currently stored`.
    pub capacity_bytes: u64,
    /// Refuse writes that would exceed `capacity_bytes` with
    /// `NoSpace`, instead of merely advertising the limit. Space-aware
    /// abstractions (GEMS placement, DSFS pools) rely on servers
    /// actually saying no — the Grid3 job failures the paper opens
    /// with were exactly unadvertised full disks.
    pub enforce_capacity: bool,
    /// Maximum descriptors per connection.
    pub max_open_per_connection: usize,
    /// Maximum concurrent connections; further ones are refused.
    pub max_connections: usize,
    /// Drop connections idle longer than this; `None` keeps them
    /// forever. Stuck or abandoned clients otherwise pin a connection
    /// slot (and its thread) indefinitely.
    pub idle_timeout: Option<Duration>,
    /// Catalog addresses to report to (UDP), possibly several — a
    /// server may report to multiple overlapping catalogs.
    pub catalogs: Vec<SocketAddr>,
    /// Interval between catalog reports.
    pub report_interval: Duration,
    /// Server name published to catalogs; defaults to `host:port`.
    pub server_name: Option<String>,
    /// Artificial service time added to each data or stat RPC
    /// (`PREAD`, `PWRITE`, `STAT`). Benchmarks use this to model the
    /// per-request disk and network latency of a real deployment,
    /// which loopback otherwise hides; `None` (the default) adds
    /// nothing.
    pub service_delay: Option<Duration>,
    /// How this server opens its *outbound* connections (`THIRDPUT`
    /// pushes data to another server). TCP by default; the simulation
    /// harness points it at the in-memory network.
    pub dialer: Dialer,
    /// Byte budget for the server-side buffer cache. `None` (the
    /// default) disables caching entirely: every read goes to the
    /// filesystem, bit-identically to pre-cache servers. The paper's
    /// testbed fronted each disk with 512 MB.
    pub cache_bytes: Option<u64>,
    /// Buffer-cache page size in bytes (default 8 KiB — small enough
    /// that cold partial reads stay near the read-through cost).
    pub cache_page_bytes: usize,
    /// Durability-point observer (see [`chirp_proto::persist`]). The
    /// default no-op handle costs one branch per mutation; the crash
    /// harness installs an injector that can kill the server at any
    /// durability point.
    pub persistence: Persist,
    /// Connection-serving core (see [`CoreKind`]). `Reactor` by
    /// default; `service_delay` overrides to `Threads` at startup.
    pub core: CoreKind,
    /// Reactor worker (event-loop shard) count; `0` (the default)
    /// sizes from available parallelism, clamped to `2..=8`.
    pub reactor_workers: usize,
    /// Per-connection queued-reply byte cap under the reactor. A
    /// connection whose untransmitted replies exceed this stops having
    /// further requests read — backpressure for slow readers — until
    /// the queue drains below the cap.
    pub reactor_write_cap: usize,
}

impl ServerConfig {
    /// A localhost configuration exporting `root` on an ephemeral port,
    /// owned by `owner`, with a deny-all root ACL. Tests and examples
    /// layer grants on top.
    pub fn localhost(root: impl Into<PathBuf>, owner: &str) -> ServerConfig {
        ServerConfig {
            root: root.into(),
            bind: "127.0.0.1:0".parse().expect("valid literal"),
            owner: owner.to_string(),
            superuser: Vec::new(),
            root_acl: Acl::new(),
            keys: KeyRing::new(),
            hostname_resolver: Arc::new(default_resolver),
            unix_challenge_dir: None,
            capacity_bytes: 1 << 30,
            enforce_capacity: true,
            max_open_per_connection: 256,
            max_connections: 256,
            idle_timeout: None,
            catalogs: Vec::new(),
            report_interval: Duration::from_secs(300),
            server_name: None,
            service_delay: None,
            dialer: Dialer::tcp(),
            cache_bytes: None,
            cache_page_bytes: 8192,
            persistence: Persist::none(),
            core: CoreKind::default(),
            reactor_workers: 0,
            reactor_write_cap: 1 << 20,
        }
    }

    /// Select the connection-serving core (see [`CoreKind`]).
    pub fn with_core(mut self, core: CoreKind) -> ServerConfig {
        self.core = core;
        self
    }

    /// Install a durability-point observer (see
    /// [`ServerConfig::persistence`]).
    pub fn with_persistence(mut self, persistence: Persist) -> ServerConfig {
        self.persistence = persistence;
        self
    }

    /// Enable the buffer cache with a budget of `bytes` (see
    /// [`ServerConfig::cache_bytes`]).
    pub fn with_cache(mut self, bytes: u64) -> ServerConfig {
        self.cache_bytes = Some(bytes);
        self
    }

    /// Add an artificial per-data-RPC service time (see
    /// [`ServerConfig::service_delay`]).
    pub fn with_service_delay(mut self, delay: Duration) -> ServerConfig {
        self.service_delay = Some(delay);
        self
    }

    /// Set the root ACL installed at startup.
    pub fn with_root_acl(mut self, acl: Acl) -> ServerConfig {
        self.root_acl = acl;
        self
    }

    /// Register a challenge–response key credential.
    pub fn with_key(self, method: &str, subject_name: &str, key: &[u8]) -> ServerConfig {
        self.keys.register(method, subject_name, key);
        self
    }

    /// Grant a subject pattern implicit full rights (the owner role).
    pub fn with_superuser(mut self, pattern: &str) -> ServerConfig {
        self.superuser.push(pattern.to_string());
        self
    }

    /// Report to a catalog at `addr` every `interval`.
    pub fn with_catalog(mut self, addr: SocketAddr, interval: Duration) -> ServerConfig {
        self.catalogs.push(addr);
        self.report_interval = interval;
        self
    }
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("root", &self.root)
            .field("bind", &self.bind)
            .field("owner", &self.owner)
            .field("capacity_bytes", &self.capacity_bytes)
            .field("catalogs", &self.catalogs)
            .finish_non_exhaustive()
    }
}

/// Default hostname resolver: loopback becomes `localhost`, everything
/// else is named by its address.
pub fn default_resolver(ip: IpAddr) -> String {
    if ip.is_loopback() {
        "localhost".to_string()
    } else {
        ip.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn localhost_defaults_are_sane() {
        let cfg = ServerConfig::localhost("/tmp/x", "alice");
        assert_eq!(cfg.owner, "alice");
        assert_eq!(cfg.bind.port(), 0);
        assert!(cfg.root_acl.entries().is_empty());
        assert!(cfg.max_open_per_connection > 0);
    }

    #[test]
    fn default_resolver_names_loopback() {
        assert_eq!(default_resolver("127.0.0.1".parse().unwrap()), "localhost");
        assert_eq!(default_resolver("10.1.2.3".parse().unwrap()), "10.1.2.3");
    }

    #[test]
    fn builders_accumulate() {
        let cfg = ServerConfig::localhost("/tmp/x", "o")
            .with_key("globus", "/O=ND/CN=a", b"k3y-material")
            .with_superuser("unix:owner")
            .with_catalog("127.0.0.1:9097".parse().unwrap(), Duration::from_secs(5));
        assert_eq!(cfg.keys.len(), 1);
        assert_eq!(cfg.superuser.len(), 1);
        assert_eq!(cfg.catalogs.len(), 1);
        assert_eq!(cfg.report_interval, Duration::from_secs(5));
    }

    #[test]
    fn keyring_is_a_shared_handle() {
        let ring = KeyRing::new();
        let cfg = ServerConfig::localhost("/tmp/x", "o");
        let cfg = ServerConfig {
            keys: ring.clone(),
            ..cfg
        };
        ring.register("globus", "/O=ND/CN=a", b"first");
        assert_eq!(cfg.keys.len(), 1);

        let id = key_fingerprint(b"first");
        assert!(cfg.keys.lookup("globus", &id).is_some());
        assert!(cfg.keys.lookup("kerberos", &id).is_none());

        // Rotation changes the fingerprint through every handle.
        assert!(ring.rotate("globus", "/O=ND/CN=a", b"second"));
        assert!(cfg.keys.lookup("globus", &id).is_none());
        assert!(cfg
            .keys
            .lookup("globus", &key_fingerprint(b"second"))
            .is_some());

        assert!(ring.remove("globus", "/O=ND/CN=a"));
        assert!(cfg.keys.is_empty());
        assert!(!ring.rotate("globus", "/O=ND/CN=a", b"third"));
    }
}

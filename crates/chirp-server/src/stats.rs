//! Server activity counters.
//!
//! Plain relaxed atomics: the counters are monotonic telemetry, never
//! used for synchronization, so `Relaxed` ordering is sufficient and
//! keeps them off the hot path's critical section.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing a server's lifetime activity,
/// published in catalog reports and inspectable in tests.
#[derive(Debug, Default)]
pub struct ServerStats {
    connections: AtomicU64,
    requests: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    errors: AtomicU64,
}

/// A point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Requests served (successful or not).
    pub requests: u64,
    /// File bytes sent to clients.
    pub bytes_read: u64,
    /// File bytes received from clients.
    pub bytes_written: u64,
    /// Requests that returned an error.
    pub errors: u64,
}

impl ServerStats {
    /// Record an accepted connection.
    pub fn connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a served request.
    pub fn request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Record file bytes sent to a client.
    pub fn read_bytes(&self, n: u64) {
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Record file bytes received from a client.
    pub fn wrote_bytes(&self, n: u64) {
        self.bytes_written.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a request that failed.
    pub fn error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the current values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = ServerStats::default();
        s.connection();
        s.request();
        s.request();
        s.read_bytes(100);
        s.wrote_bytes(7);
        s.error();
        let snap = s.snapshot();
        assert_eq!(snap.connections, 1);
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.bytes_read, 100);
        assert_eq!(snap.bytes_written, 7);
        assert_eq!(snap.errors, 1);
    }

    #[test]
    fn counters_are_thread_safe() {
        let s = std::sync::Arc::new(ServerStats::default());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.request();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().requests, 8000);
    }
}

//! Server activity counters and the per-server telemetry registry.
//!
//! Plain relaxed atomics: the counters are monotonic telemetry, never
//! used for synchronization, so `Relaxed` ordering is sufficient and
//! keeps them off the hot path's critical section.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use telemetry::{Counter, Gauge, Histogram, Outcome, Registry, TraceEvent};

/// Per-server observability: a [`Registry`] of per-op request counts,
/// RPC latency histograms, byte counters, and error/ACL-denial
/// counts, plus the registry's trace ring of recent RPCs. Handles are
/// pre-registered at startup so the request loop's cost per RPC is a
/// handful of relaxed atomic adds plus one ring push.
#[derive(Debug)]
pub struct ServerTelemetry {
    registry: Registry,
    ops: BTreeMap<&'static str, Counter>,
    errors: Counter,
    acl_denied: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    latency: Histogram,
    data_latency: Histogram,
    reactor_loops: Counter,
    reactor_wakeups: Counter,
    reactor_backpressure: Counter,
    reactor_wq_peak: Gauge,
    auth_success: Counter,
    auth_failure: Counter,
    auth_challenge: Counter,
}

impl Default for ServerTelemetry {
    fn default() -> ServerTelemetry {
        let registry = Registry::new();
        let ops = chirp_proto::message::OP_NAMES
            .iter()
            .map(|op| (*op, registry.counter(&format!("rpc.{op}.count"))))
            .collect();
        ServerTelemetry {
            ops,
            errors: registry.counter("rpc.errors"),
            acl_denied: registry.counter("rpc.acl_denied"),
            bytes_in: registry.counter("rpc.bytes_in"),
            bytes_out: registry.counter("rpc.bytes_out"),
            latency: registry.histogram("rpc.latency_ns"),
            data_latency: registry.histogram("rpc.data.latency_ns"),
            reactor_loops: registry.counter("reactor.loop_iterations"),
            reactor_wakeups: registry.counter("reactor.wakeups"),
            reactor_backpressure: registry.counter("reactor.backpressure"),
            reactor_wq_peak: registry.gauge("reactor.wq_peak_bytes"),
            auth_success: registry.counter("auth.success"),
            auth_failure: registry.counter("auth.failure"),
            auth_challenge: registry.counter("auth.challenge"),
            registry,
        }
    }
}

impl ServerTelemetry {
    /// The backing registry (snapshot it for catalog reports).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// One reactor event-loop iteration completed.
    pub fn reactor_loop(&self) {
        self.reactor_loops.inc();
    }

    /// One readiness event batch woke a reactor worker.
    pub fn reactor_wakeup(&self, events: u64) {
        self.reactor_wakeups.add(events);
    }

    /// A connection hit its queued-reply cap and stopped being read.
    pub fn reactor_backpressure(&self) {
        self.reactor_backpressure.inc();
    }

    /// Track the largest per-connection reply queue seen, in bytes —
    /// the observable ceiling the backpressure cap enforces.
    pub fn reactor_wq_high_water(&self, bytes: u64) {
        if (self.reactor_wq_peak.get() as u64) < bytes {
            self.reactor_wq_peak.set(bytes as i64);
        }
    }

    /// An authentication attempt fixed a subject.
    pub fn auth_success(&self) {
        self.auth_success.inc();
    }

    /// An authentication attempt was refused.
    pub fn auth_failure(&self) {
        self.auth_failure.inc();
    }

    /// An authentication round answered with a challenge (the nonce
    /// of a key handshake or the file path of the `unix` method).
    pub fn auth_challenge(&self) {
        self.auth_challenge.inc();
    }

    /// Record one served RPC.
    pub fn record(
        &self,
        op: &str,
        subject: Option<&str>,
        dur_ns: u64,
        bytes_in: u64,
        bytes_out: u64,
        error: Option<chirp_proto::ChirpError>,
    ) {
        if let Some(c) = self.ops.get(op) {
            c.inc();
        }
        self.latency.record(dur_ns);
        if matches!(op, "pread" | "pwrite" | "getfile" | "putfile") {
            self.data_latency.record(dur_ns);
        }
        self.bytes_in.add(bytes_in);
        self.bytes_out.add(bytes_out);
        if error.is_some() {
            self.errors.inc();
        }
        if matches!(error, Some(chirp_proto::ChirpError::NotAuthorized)) {
            self.acl_denied.inc();
        }
        self.registry.record_event(TraceEvent {
            op: op.to_string(),
            subject: subject.unwrap_or("-").to_string(),
            dur_ns,
            bytes: bytes_in + bytes_out,
            outcome: if error.is_none() {
                Outcome::Ok
            } else {
                Outcome::Error
            },
        });
    }
}

/// Monotonic counters describing a server's lifetime activity,
/// published in catalog reports and inspectable in tests.
#[derive(Debug, Default)]
pub struct ServerStats {
    connections: AtomicU64,
    requests: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    errors: AtomicU64,
}

/// A point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Requests served (successful or not).
    pub requests: u64,
    /// File bytes sent to clients.
    pub bytes_read: u64,
    /// File bytes received from clients.
    pub bytes_written: u64,
    /// Requests that returned an error.
    pub errors: u64,
}

impl ServerStats {
    /// Record an accepted connection.
    pub fn connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a served request.
    pub fn request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Record file bytes sent to a client.
    pub fn read_bytes(&self, n: u64) {
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Record file bytes received from a client.
    pub fn wrote_bytes(&self, n: u64) {
        self.bytes_written.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a request that failed.
    pub fn error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the current values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = ServerStats::default();
        s.connection();
        s.request();
        s.request();
        s.read_bytes(100);
        s.wrote_bytes(7);
        s.error();
        let snap = s.snapshot();
        assert_eq!(snap.connections, 1);
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.bytes_read, 100);
        assert_eq!(snap.bytes_written, 7);
        assert_eq!(snap.errors, 1);
    }

    #[test]
    fn telemetry_records_per_op_counts_latency_and_denials() {
        let t = ServerTelemetry::default();
        t.record("open", Some("unix:alice"), 1_000, 0, 0, None);
        t.record("pread", Some("unix:alice"), 2_000, 0, 4096, None);
        t.record(
            "open",
            None,
            500,
            0,
            0,
            Some(chirp_proto::ChirpError::NotAuthorized),
        );
        let snap = t.registry().snapshot();
        assert_eq!(snap.counter("rpc.open.count"), Some(2));
        assert_eq!(snap.counter("rpc.pread.count"), Some(1));
        assert_eq!(snap.counter("rpc.errors"), Some(1));
        assert_eq!(snap.counter("rpc.acl_denied"), Some(1));
        assert_eq!(snap.counter("rpc.bytes_out"), Some(4096));
        let h = snap.histogram("rpc.latency_ns").unwrap();
        assert_eq!(h.count, 3);
        let data = snap.histogram("rpc.data.latency_ns").unwrap();
        assert_eq!(data.count, 1);
        // The flight recorder kept all three events, newest last.
        let ring = t.registry().ring().recent();
        assert_eq!(ring.len(), 3);
        assert_eq!(ring[1].op, "pread");
        assert_eq!(ring[1].bytes, 4096);
        assert_eq!(ring[2].outcome, telemetry::Outcome::Error);
    }

    #[test]
    fn counters_are_thread_safe() {
        let s = std::sync::Arc::new(ServerStats::default());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.request();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().requests, 8000);
    }
}

//! Per-connection descriptor table.
//!
//! Descriptors are connection-scoped: when the connection drops, the
//! whole table drops with it and every file closes. A descriptor
//! returned by `OPEN` is therefore only valid for the life of the
//! connection, and clients must re-open after a disconnection — the
//! paper's deliberately simple server-side failure semantics.

use std::fs::File;
use std::sync::Arc;

use chirp_proto::{ChirpError, ChirpResult};

use crate::cache::{file_key, FileKey, FileState};

/// One open file.
#[derive(Debug)]
pub struct OpenFile {
    /// The backing host file.
    pub file: File,
    /// Flush to stable storage after every write (`OpenFlags::SYNC`).
    pub sync: bool,
    /// Writes go to the current EOF (`OpenFlags::APPEND`).
    pub append: bool,
    /// Opened with `OpenFlags::READ` (a cache hit on a write-only
    /// descriptor must still fail the way `read(2)` would).
    pub readable: bool,
    /// The file's `(device, inode)` identity — the buffer cache key.
    pub key: FileKey,
    /// Size and liveness shared by every descriptor on this inode,
    /// so the hot write path computes growth without an `fstat`.
    pub state: Arc<FileState>,
}

impl OpenFile {
    /// The current tracked size.
    pub fn size(&self) -> u64 {
        self.state.size.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// A plain read-write descriptor on `file` for tests: fstats once
    /// to seed the key and size, shares no state with other opens.
    pub fn for_tests(file: File) -> OpenFile {
        let meta = file.metadata().expect("fstat test file");
        OpenFile {
            key: file_key(&meta),
            state: Arc::new(FileState {
                size: std::sync::atomic::AtomicU64::new(meta.len()),
                ..FileState::default()
            }),
            file,
            sync: false,
            append: false,
            readable: true,
        }
    }
}

/// A table of open descriptors, bounded by the server's
/// `max_open_per_connection`.
#[derive(Debug)]
pub struct FdTable {
    slots: Vec<Option<OpenFile>>,
    max: usize,
}

impl FdTable {
    /// An empty table allowing at most `max` concurrent descriptors.
    pub fn new(max: usize) -> FdTable {
        FdTable {
            slots: Vec::new(),
            max,
        }
    }

    /// Insert a file, returning its descriptor. Reuses the lowest free
    /// slot, like Unix.
    pub fn insert(&mut self, open: OpenFile) -> ChirpResult<i32> {
        if let Some(i) = self.slots.iter().position(Option::is_none) {
            self.slots[i] = Some(open);
            return Ok(i as i32);
        }
        if self.slots.len() >= self.max {
            return Err(ChirpError::TooManyOpen);
        }
        self.slots.push(Some(open));
        Ok((self.slots.len() - 1) as i32)
    }

    /// Look up a descriptor.
    pub fn get(&self, fd: i32) -> ChirpResult<&OpenFile> {
        usize::try_from(fd)
            .ok()
            .and_then(|i| self.slots.get(i))
            .and_then(Option::as_ref)
            .ok_or(ChirpError::BadFd)
    }

    /// Remove a descriptor, closing the file when the returned value
    /// drops.
    pub fn remove(&mut self, fd: i32) -> ChirpResult<OpenFile> {
        usize::try_from(fd)
            .ok()
            .and_then(|i| self.slots.get_mut(i))
            .and_then(Option::take)
            .ok_or(ChirpError::BadFd)
    }

    /// Number of currently open descriptors.
    pub fn open_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_proto::testutil::TempDir;

    fn open_file(dir: &TempDir, name: &str) -> OpenFile {
        OpenFile::for_tests(File::create(dir.path().join(name)).unwrap())
    }

    #[test]
    fn descriptors_are_dense_and_reused() {
        let dir = TempDir::new();
        let mut t = FdTable::new(8);
        let a = t.insert(open_file(&dir, "a")).unwrap();
        let b = t.insert(open_file(&dir, "b")).unwrap();
        assert_eq!((a, b), (0, 1));
        t.remove(a).unwrap();
        let c = t.insert(open_file(&dir, "c")).unwrap();
        assert_eq!(c, 0, "lowest free slot is reused");
        assert_eq!(t.open_count(), 2);
    }

    #[test]
    fn limit_is_enforced() {
        let dir = TempDir::new();
        let mut t = FdTable::new(2);
        t.insert(open_file(&dir, "a")).unwrap();
        t.insert(open_file(&dir, "b")).unwrap();
        assert_eq!(
            t.insert(open_file(&dir, "c")).unwrap_err(),
            ChirpError::TooManyOpen
        );
    }

    #[test]
    fn bad_descriptors_rejected() {
        let mut t = FdTable::new(2);
        assert_eq!(t.get(0).unwrap_err(), ChirpError::BadFd);
        assert_eq!(t.get(-1).unwrap_err(), ChirpError::BadFd);
        assert_eq!(t.remove(5).unwrap_err(), ChirpError::BadFd);
    }
}

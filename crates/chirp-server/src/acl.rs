//! Per-directory access control lists over a virtual user space.
//!
//! Subjects are free-form `method:name` strings produced by the
//! authentication layer — never local uids — so sharing works across
//! administrative domains. ACL entries may use `*` wildcards
//! (`hostname:*.cse.nd.edu`, `globus:/O=NotreDame/*`), and a subject's
//! effective rights are the union over all matching entries.
//!
//! Rights (paper §4):
//!
//! | letter | right |
//! |--------|-------|
//! | `r` | read files |
//! | `w` | write or create files |
//! | `l` | list the directory |
//! | `a` | administer (modify the ACL) |
//! | `d` | delete (but not modify) files |
//! | `v(...)` | *reserve*: `mkdir` creates a fresh namespace whose ACL grants the caller exactly the parenthesized rights |
//!
//! Each directory stores its ACL in a private `.__acl` file. A
//! directory with no ACL file inherits the nearest ancestor's ACL,
//! which is how pre-existing data exported in place gets protection
//! from the root ACL.

use std::fmt;
use std::path::Path;

use chirp_proto::{ChirpError, ChirpResult};

use crate::jail::ACL_FILE;

/// A set of ACL rights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Rights(u8);

impl Rights {
    /// Read files in the directory.
    pub const READ: Rights = Rights(1 << 0);
    /// Write and create files.
    pub const WRITE: Rights = Rights(1 << 1);
    /// List directory contents.
    pub const LIST: Rights = Rights(1 << 2);
    /// Administer: modify the ACL.
    pub const ADMIN: Rights = Rights(1 << 3);
    /// Delete (but not modify) files.
    pub const DELETE: Rights = Rights(1 << 4);
    /// Reserve: create a private sub-namespace via `mkdir`.
    pub const RESERVE: Rights = Rights(1 << 5);

    /// The empty set.
    pub fn empty() -> Rights {
        Rights(0)
    }

    /// Every right including reserve.
    pub fn all() -> Rights {
        Rights::READ
            | Rights::WRITE
            | Rights::LIST
            | Rights::ADMIN
            | Rights::DELETE
            | Rights::RESERVE
    }

    /// True if every bit of `other` is present.
    pub fn contains(self, other: Rights) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if *any* bit of `other` is present.
    pub fn intersects(self, other: Rights) -> bool {
        self.0 & other.0 != 0
    }

    /// True if no rights are present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Parse a rights string such as `rwl`. Does not accept `v(...)`;
    /// that syntax belongs to the full entry parser, which needs to
    /// capture the reserve sub-rights.
    pub fn parse_simple(s: &str) -> ChirpResult<Rights> {
        let mut r = Rights::empty();
        for c in s.chars() {
            r |= match c.to_ascii_lowercase() {
                'r' => Rights::READ,
                'w' => Rights::WRITE,
                'l' => Rights::LIST,
                'a' => Rights::ADMIN,
                'd' => Rights::DELETE,
                _ => return Err(ChirpError::InvalidRequest),
            };
        }
        Ok(r)
    }
}

impl std::ops::BitOr for Rights {
    type Output = Rights;
    fn bitor(self, rhs: Rights) -> Rights {
        Rights(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for Rights {
    fn bitor_assign(&mut self, rhs: Rights) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for Rights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (bit, c) in [
            (Rights::READ, 'r'),
            (Rights::WRITE, 'w'),
            (Rights::LIST, 'l'),
            (Rights::ADMIN, 'a'),
            (Rights::DELETE, 'd'),
        ] {
            if self.contains(bit) {
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

/// One ACL entry: a subject pattern granting rights, possibly including
/// a reserve grant with its own sub-rights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AclEntry {
    /// Subject pattern, e.g. `hostname:*.cse.nd.edu`. `*` matches any
    /// run of characters (including none).
    pub subject: String,
    /// Directly granted rights (`r w l a d`).
    pub rights: Rights,
    /// Rights placed in new directories created under the reserve
    /// right; empty when the entry has no `v(...)` grant.
    pub reserve: Rights,
}

impl AclEntry {
    /// Parse the rights portion of an entry: `rwl`, `v(rwla)`,
    /// `rwlv(rwl)` and combinations.
    pub fn parse_rights(spec: &str) -> ChirpResult<(Rights, Rights)> {
        let mut rights = Rights::empty();
        let mut reserve = Rights::empty();
        let mut chars = spec.chars().peekable();
        while let Some(c) = chars.next() {
            match c.to_ascii_lowercase() {
                'r' => rights |= Rights::READ,
                'w' => rights |= Rights::WRITE,
                'l' => rights |= Rights::LIST,
                'a' => rights |= Rights::ADMIN,
                'd' => rights |= Rights::DELETE,
                'v' => {
                    rights |= Rights::RESERVE;
                    if chars.peek() == Some(&'(') {
                        chars.next();
                        let mut inner = String::new();
                        loop {
                            match chars.next() {
                                Some(')') => break,
                                Some(c) => inner.push(c),
                                None => return Err(ChirpError::InvalidRequest),
                            }
                        }
                        reserve |= Rights::parse_simple(&inner)?;
                    }
                }
                _ => return Err(ChirpError::InvalidRequest),
            }
        }
        Ok((rights, reserve))
    }

    /// Render the rights portion, inverse of [`AclEntry::parse_rights`].
    pub fn rights_string(&self) -> String {
        let mut s = self.rights.to_string();
        if self.rights.contains(Rights::RESERVE) {
            if self.reserve.is_empty() {
                s.push('v');
            } else {
                s.push_str(&format!("v({})", self.reserve));
            }
        }
        s
    }

    /// Whether this entry's pattern matches a concrete subject.
    pub fn matches(&self, subject: &str) -> bool {
        wildcard_match(&self.subject, subject)
    }
}

/// Glob-style match where `*` matches any (possibly empty) substring.
///
/// Classic two-pointer algorithm with backtracking to the most recent
/// star; linear in practice for ACL-sized inputs.
pub fn wildcard_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// A directory's access control list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Acl {
    entries: Vec<AclEntry>,
}

impl Acl {
    /// The empty ACL (denies everything).
    pub fn new() -> Acl {
        Acl::default()
    }

    /// An ACL with a single entry.
    pub fn single(subject: &str, spec: &str) -> ChirpResult<Acl> {
        let mut acl = Acl::new();
        acl.set(subject, spec)?;
        Ok(acl)
    }

    /// The entries, in file order.
    pub fn entries(&self) -> &[AclEntry] {
        &self.entries
    }

    /// Effective rights of `subject`: the union over matching entries.
    pub fn rights_of(&self, subject: &str) -> Rights {
        let mut r = Rights::empty();
        for e in &self.entries {
            if e.matches(subject) {
                r |= e.rights;
            }
        }
        r
    }

    /// Union of reserve sub-rights over entries matching `subject`.
    pub fn reserve_rights_of(&self, subject: &str) -> Rights {
        let mut r = Rights::empty();
        for e in &self.entries {
            if e.matches(subject) && e.rights.contains(Rights::RESERVE) {
                r |= e.reserve;
            }
        }
        r
    }

    /// Add or replace the entry for `subject`. An empty `spec` removes
    /// the entry.
    pub fn set(&mut self, subject: &str, spec: &str) -> ChirpResult<()> {
        if subject.is_empty() {
            return Err(ChirpError::InvalidRequest);
        }
        if spec.is_empty() {
            self.entries.retain(|e| e.subject != subject);
            return Ok(());
        }
        let (rights, reserve) = AclEntry::parse_rights(spec)?;
        if let Some(e) = self.entries.iter_mut().find(|e| e.subject == subject) {
            e.rights = rights;
            e.reserve = reserve;
        } else {
            self.entries.push(AclEntry {
                subject: subject.to_string(),
                rights,
                reserve,
            });
        }
        Ok(())
    }

    /// Parse the textual form: one `subject rights` pair per line.
    pub fn parse(text: &str) -> ChirpResult<Acl> {
        let mut acl = Acl::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let subject = it.next().ok_or(ChirpError::InvalidRequest)?;
            let spec = it.next().ok_or(ChirpError::InvalidRequest)?;
            if it.next().is_some() {
                return Err(ChirpError::InvalidRequest);
            }
            acl.set(subject, spec)?;
        }
        Ok(acl)
    }

    /// Render the textual form stored in `.__acl` and returned by the
    /// `GETACL` RPC.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.subject);
            out.push(' ');
            out.push_str(&e.rights_string());
            out.push('\n');
        }
        out
    }

    /// Load the ACL governing `dir`: its own `.__acl` if present, else
    /// the nearest ancestor's, searching no higher than `root`.
    pub fn load_effective(root: &Path, dir: &Path) -> ChirpResult<Acl> {
        let mut cur = dir.to_path_buf();
        loop {
            let f = cur.join(ACL_FILE);
            match std::fs::read_to_string(&f) {
                Ok(text) => return Acl::parse(&text),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(ChirpError::from_io(&e)),
            }
            if cur == root {
                // No ACL anywhere up to the root: deny-all. The server
                // always writes a root ACL at startup, so this means
                // someone deleted it out from under us.
                return Ok(Acl::new());
            }
            if !cur.pop() {
                return Ok(Acl::new());
            }
        }
    }

    /// Write this ACL as `dir`'s own `.__acl`.
    pub fn store(&self, dir: &Path) -> ChirpResult<()> {
        std::fs::write(dir.join(ACL_FILE), self.render()).map_err(|e| ChirpError::from_io(&e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_proto::testutil::TempDir;
    use proptest::prelude::*;

    #[test]
    fn rights_parse_and_render() {
        let (r, v) = AclEntry::parse_rights("rwla").unwrap();
        assert!(r.contains(Rights::READ | Rights::WRITE | Rights::LIST | Rights::ADMIN));
        assert!(v.is_empty());
        let (r, v) = AclEntry::parse_rights("v(rwl)").unwrap();
        assert!(r.contains(Rights::RESERVE));
        assert!(v.contains(Rights::READ | Rights::WRITE | Rights::LIST));
        assert!(!v.contains(Rights::ADMIN));
    }

    #[test]
    fn combined_direct_and_reserve() {
        let (r, v) = AclEntry::parse_rights("rlv(rwla)").unwrap();
        assert!(r.contains(Rights::READ | Rights::LIST | Rights::RESERVE));
        assert!(!r.contains(Rights::WRITE));
        assert!(v.contains(Rights::ADMIN));
    }

    #[test]
    fn bad_rights_rejected() {
        assert!(AclEntry::parse_rights("rwx").is_err());
        assert!(AclEntry::parse_rights("v(rw").is_err());
        assert!(AclEntry::parse_rights("v(q)").is_err());
    }

    #[test]
    fn wildcard_semantics() {
        assert!(wildcard_match(
            "hostname:*.cse.nd.edu",
            "hostname:laptop.cse.nd.edu"
        ));
        assert!(!wildcard_match(
            "hostname:*.cse.nd.edu",
            "hostname:evil.example.com"
        ));
        assert!(wildcard_match(
            "globus:/O=NotreDame/*",
            "globus:/O=NotreDame/CN=alice"
        ));
        assert!(wildcard_match("*", "anything:at all"));
        assert!(wildcard_match("a*b*c", "aXXbYYc"));
        assert!(!wildcard_match("a*b*c", "aXXbYY"));
        assert!(wildcard_match("abc", "abc"));
        assert!(!wildcard_match("abc", "ab"));
        // `*` may match the empty string.
        assert!(wildcard_match("ab*", "ab"));
    }

    #[test]
    fn union_over_matching_entries() {
        let acl = Acl::parse(
            "hostname:*.nd.edu rl\n\
             hostname:laptop.nd.edu w\n",
        )
        .unwrap();
        let r = acl.rights_of("hostname:laptop.nd.edu");
        assert!(r.contains(Rights::READ | Rights::LIST | Rights::WRITE));
        let r2 = acl.rights_of("hostname:other.nd.edu");
        assert!(r2.contains(Rights::READ));
        assert!(!r2.contains(Rights::WRITE));
        assert!(acl.rights_of("unix:alice").is_empty());
    }

    #[test]
    fn paper_example_acl() {
        // The root ACL from §4 of the paper.
        let acl = Acl::parse(
            "hostname:*.cse.nd.edu v(rwl)\n\
             globus:/O=Notre_Dame/* v(rwla)\n",
        )
        .unwrap();
        let laptop = "hostname:laptop.cse.nd.edu";
        assert!(acl.rights_of(laptop).contains(Rights::RESERVE));
        assert!(!acl.rights_of(laptop).contains(Rights::WRITE));
        let v = acl.reserve_rights_of(laptop);
        assert!(v.contains(Rights::READ | Rights::WRITE | Rights::LIST));
        assert!(!v.contains(Rights::ADMIN));
        let grid = "globus:/O=Notre_Dame/CN=alice";
        assert!(acl.reserve_rights_of(grid).contains(Rights::ADMIN));
    }

    #[test]
    fn set_replaces_and_removes() {
        let mut acl = Acl::new();
        acl.set("unix:alice", "rwl").unwrap();
        acl.set("unix:alice", "r").unwrap();
        assert_eq!(acl.entries().len(), 1);
        assert!(!acl.rights_of("unix:alice").contains(Rights::WRITE));
        acl.set("unix:alice", "").unwrap();
        assert!(acl.entries().is_empty());
    }

    #[test]
    fn parse_render_round_trip() {
        let text = "hostname:*.cse.nd.edu rwl\nglobus:/O=ND/* rv(rwla)\nunix:bob d\n";
        let acl = Acl::parse(text).unwrap();
        let again = Acl::parse(&acl.render()).unwrap();
        assert_eq!(acl, again);
    }

    #[test]
    fn parse_skips_comments_and_blank_lines() {
        let acl = Acl::parse("# a comment\n\nunix:alice rl\n").unwrap();
        assert_eq!(acl.entries().len(), 1);
    }

    #[test]
    fn effective_acl_inherits_from_ancestors() {
        let dir = TempDir::new();
        let root = dir.path();
        Acl::single("unix:alice", "rwl")
            .unwrap()
            .store(root)
            .unwrap();
        let deep = root.join("a/b/c");
        std::fs::create_dir_all(&deep).unwrap();
        let acl = Acl::load_effective(root, &deep).unwrap();
        assert!(acl.rights_of("unix:alice").contains(Rights::READ));
        // A closer ACL overrides.
        Acl::single("unix:bob", "r")
            .unwrap()
            .store(&root.join("a/b"))
            .unwrap();
        let acl = Acl::load_effective(root, &deep).unwrap();
        assert!(acl.rights_of("unix:alice").is_empty());
        assert!(acl.rights_of("unix:bob").contains(Rights::READ));
    }

    proptest! {
        #[test]
        fn rights_round_trip(bits in 0u8..64) {
            let entry = AclEntry {
                subject: "x:y".into(),
                rights: Rights(bits),
                reserve: if Rights(bits).contains(Rights::RESERVE) {
                    Rights::READ | Rights::LIST
                } else {
                    Rights::empty()
                },
            };
            let spec = entry.rights_string();
            prop_assume!(!spec.is_empty());
            let (r, v) = AclEntry::parse_rights(&spec).unwrap();
            prop_assert_eq!(r, entry.rights);
            prop_assert_eq!(v, entry.reserve);
        }

        #[test]
        fn wildcard_literal_matches_self(s in "[a-z:./]{0,32}") {
            prop_assert!(wildcard_match(&s, &s));
        }

        #[test]
        fn wildcard_star_prefix(s in "[a-z]{0,16}", t in "[a-z]{0,16}") {
            let pattern = format!("{s}*");
            let text = format!("{s}{t}");
            let matched = wildcard_match(&pattern, &text);
            prop_assert!(matched);
        }
    }
}

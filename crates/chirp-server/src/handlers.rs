//! Per-connection request handling: authentication gate, ACL
//! enforcement, and dispatch to jailed filesystem operations.

use std::fs::{File, OpenOptions};
use std::io::BufRead;
use std::path::{Path, PathBuf};

use chirp_proto::escape::escape;
use chirp_proto::persist::DurabilityPoint;
use chirp_proto::stat::FileType;
use chirp_proto::{ChirpError, ChirpResult, OpenFlags, Request, StatBuf, StatFs};

use crate::acl::{wildcard_match, Acl, Rights};
use crate::auth::{AuthOutcome, Authenticator};
use crate::cache::{file_key, PageReply};
use crate::fdtable::{FdTable, OpenFile};
use crate::jail::ACL_FILE;
use crate::server::Shared;

/// Counted wrapper around descriptor `fstat` calls. The write path's
/// freedom from per-write metadata syscalls is a performance contract;
/// routing every fd-level `metadata()` through here lets a regression
/// test assert the count stays zero across a burst of writes.
pub mod syscount {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Total fd-level `fstat` calls made by handlers in this process.
    pub static FSTAT_CALLS: AtomicU64 = AtomicU64::new(0);

    /// `file.metadata()`, counted.
    pub fn fstat(file: &std::fs::File) -> std::io::Result<std::fs::Metadata> {
        FSTAT_CALLS.fetch_add(1, Ordering::Relaxed);
        file.metadata()
    }
}

/// What the connection loop should send back for one request.
#[derive(Debug)]
pub enum Reply {
    /// A bare status value (`0` for plain success, a descriptor, a
    /// byte count, or `1` for an auth challenge).
    Value(i64),
    /// Status `value` followed by pre-escaped result words.
    Words(i64, String),
    /// Status = payload length, then the raw payload bytes.
    Data(Vec<u8>),
    /// Status = `n`, then the first `n` bytes of the session's scratch
    /// buffer. Lets `PREAD` reuse one allocation across calls instead
    /// of building a fresh `Vec` per RPC.
    Scratch(usize),
    /// Status = file length, then the file streamed from disk.
    FileStream(File, u64),
    /// Status = total length, then buffer-cache pages scatter-gathered
    /// to the socket — a hot read does zero disk I/O and at most one
    /// copy (into the socket buffer).
    Pages(PageReply),
}

/// An in-progress streamed `PUTFILE` payload (see
/// [`Session::begin_putfile`]). The blocking core pumps it from its
/// `BufRead` in one call; the reactor core feeds it chunks as they
/// arrive off the wire.
#[derive(Debug)]
pub struct PutfileUpload {
    /// Payload bytes the connection still owes.
    remaining: u64,
    /// Total payload length named on the request line.
    length: u64,
    fate: UploadFate,
}

#[derive(Debug)]
enum UploadFate {
    /// Pre-checks failed: the payload is still consumed (the stream
    /// owes `length` bytes of framing), then the error is reported.
    Discard(ChirpError),
    /// Checks passed: bytes stream straight into the opened file.
    Write {
        file: File,
        /// Size the path held before the upload, for capacity
        /// accounting (a replaced file frees its old bytes).
        old_size: u64,
    },
}

impl PutfileUpload {
    fn discard(length: u64, e: ChirpError) -> PutfileUpload {
        PutfileUpload {
            remaining: length,
            length,
            fate: UploadFate::Discard(e),
        }
    }

    /// Payload bytes not yet delivered via [`Session::feed_putfile`].
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

/// The state of one client connection.
pub struct Session {
    shared: std::sync::Arc<Shared>,
    auth: Authenticator,
    subject: Option<String>,
    fds: FdTable,
    /// Reusable read buffer for `PREAD` replies (see [`Reply::Scratch`]).
    /// Grows to the largest read this connection has served and stays
    /// there, bounded by [`chirp_proto::MAX_PAYLOAD`].
    scratch: Vec<u8>,
}

impl Session {
    /// A fresh session for a connection from `peer_ip`.
    pub fn new(shared: std::sync::Arc<Shared>, peer_ip: std::net::IpAddr) -> Session {
        let max_open = shared.config.max_open_per_connection;
        Session {
            shared,
            auth: Authenticator::new(peer_ip),
            subject: None,
            fds: FdTable::new(max_open),
            scratch: Vec::new(),
        }
    }

    /// The scratch bytes a [`Reply::Scratch`] refers to.
    pub fn scratch(&self) -> &[u8] {
        &self.scratch
    }

    /// Scratch watermark: a connection's reusable read buffer shrinks
    /// back to this after serving an oversized reply, so one
    /// `MAX_PAYLOAD` read doesn't pin 64 MB for the connection's
    /// lifetime.
    pub const SCRATCH_WATERMARK: usize = 64 * 1024;

    /// Release scratch memory above [`Session::SCRATCH_WATERMARK`].
    /// The connection loop calls this after each reply is written.
    pub fn trim_scratch(&mut self) {
        if self.scratch.capacity() > Self::SCRATCH_WATERMARK {
            self.scratch.truncate(Self::SCRATCH_WATERMARK);
            self.scratch.shrink_to(Self::SCRATCH_WATERMARK);
        }
    }

    /// The authenticated subject, if any.
    pub fn subject(&self) -> Option<&str> {
        self.subject.as_deref()
    }

    /// Announce a durability point to the configured observer, before
    /// the mutation it names. An error means the simulated process is
    /// dead: surface it and mutate nothing.
    fn durability(&self, point: DurabilityPoint, path: &str) -> ChirpResult<()> {
        self.shared
            .config
            .persistence
            .reached(point, path)
            .map_err(|e| ChirpError::from_io(&e))
    }

    /// Handle one request. `payload` carries the body of a `PWRITE`.
    /// (`PUTFILE` is streamed through [`Session::handle_putfile`]
    /// instead, so large uploads never sit in memory.)
    pub fn handle(&mut self, req: Request, payload: Option<Vec<u8>>) -> ChirpResult<Reply> {
        match req {
            Request::Auth {
                method,
                name,
                credential,
            } => self.do_auth(&method, &name, &credential),
            Request::Whoami => {
                let s = self.require_subject()?.to_string();
                Ok(Reply::Words(0, escape(s.as_bytes())))
            }
            Request::Open { path, flags, mode } => self.do_open(&path, flags, mode),
            Request::Close { fd } => {
                self.require_subject()?;
                self.fds.remove(fd)?;
                Ok(Reply::Value(0))
            }
            Request::Pread { fd, length, offset } => self.do_pread(fd, length, offset),
            Request::Pwrite { fd, offset, .. } => {
                let data = payload.ok_or(ChirpError::InvalidRequest)?;
                self.do_pwrite(fd, &data, offset)
            }
            Request::Fstat { fd } => {
                self.require_subject()?;
                let f = self.fds.get(fd)?;
                let meta = syscount::fstat(&f.file).map_err(|e| ChirpError::from_io(&e))?;
                Ok(Reply::Words(0, meta_to_stat(&meta).to_words()))
            }
            Request::Fsync { fd } => {
                self.require_subject()?;
                if self.shared.config.persistence.is_enabled() {
                    self.durability(DurabilityPoint::Fsync, &format!("fd{fd}"))?;
                }
                let f = self.fds.get(fd)?;
                f.file.sync_all().map_err(|e| ChirpError::from_io(&e))?;
                Ok(Reply::Value(0))
            }
            Request::Ftruncate { fd, size } => {
                self.require_subject()?;
                let f = self.fds.get(fd)?;
                let old = f.size();
                if size > old && self.shared.over_capacity(size - old) {
                    return Err(ChirpError::NoSpace);
                }
                if self.shared.config.persistence.is_enabled() {
                    self.shared
                        .config
                        .persistence
                        .reached(DurabilityPoint::Truncate, &format!("fd{fd}"))
                        .map_err(|e| ChirpError::from_io(&e))?;
                }
                f.file.set_len(size).map_err(|e| ChirpError::from_io(&e))?;
                if let Some(cache) = &self.shared.cache {
                    cache.truncate(f.key, old, size);
                }
                f.state
                    .size
                    .store(size, std::sync::atomic::Ordering::Relaxed);
                self.shared.adjust_usage(size as i64 - old as i64);
                Ok(Reply::Value(0))
            }
            Request::Stat { path } => self.do_stat(&path),
            Request::Unlink { path } => self.do_unlink(&path),
            Request::Rename { from, to } => self.do_rename(&from, &to),
            Request::Mkdir { path, mode: _ } => self.do_mkdir(&path),
            Request::Rmdir { path } => self.do_rmdir(&path),
            Request::Getdir { path } => self.do_getdir(&path),
            Request::Getlongdir { path } => self.do_getlongdir(&path),
            Request::GetdirStat { path } => self.do_getdirstat(&path),
            Request::StatMulti { paths } => self.do_stat_multi(&paths),
            Request::Getfile { path } => self.do_getfile(&path),
            Request::Putfile { .. } => {
                // The connection loop routes PUTFILE to handle_putfile;
                // reaching here is a framing bug.
                Err(ChirpError::InvalidRequest)
            }
            Request::Getacl { path } => self.do_getacl(&path),
            Request::Setacl {
                path,
                subject,
                rights,
            } => self.do_setacl(&path, &subject, &rights),
            Request::Checksum { path } => self.do_checksum(&path),
            Request::Statfs => self.do_statfs(),
            Request::Truncate { path, size } => self.do_truncate(&path, size),
            Request::Utime { path, mtime } => self.do_utime(&path, mtime),
            Request::Thirdput {
                path,
                target,
                target_path,
            } => self.do_thirdput(&path, &target, &target_path),
        }
    }

    /// Start a `PUTFILE`: run every pre-payload check and open the
    /// target. `Ok` always consumes the payload — either into the file
    /// or down the drain (a rejected upload still owes the stream
    /// `length` bytes of framing). `Err` means the open itself failed
    /// *after* the checks passed; no payload has been consumed, which
    /// replicates the historical blocking-path behavior exactly.
    pub fn begin_putfile(
        &mut self,
        path: &str,
        mode: u32,
        length: u64,
    ) -> ChirpResult<PutfileUpload> {
        let checked = (|| -> ChirpResult<PathBuf> {
            self.require_subject()?;
            let (dir, leaf) = self.shared.jail.resolve_parent(path)?;
            self.require_rights(&dir, Rights::WRITE)?;
            Ok(dir.join(leaf))
        })();
        let host = match checked {
            Ok(p) => p,
            Err(e) => return Ok(PutfileUpload::discard(length, e)),
        };
        // Capacity policy: a replaced file frees its old bytes first.
        let old_size = std::fs::metadata(&host).map(|m| m.len()).unwrap_or(0);
        let growth = length.saturating_sub(old_size);
        if self.shared.over_capacity(growth) {
            return Ok(PutfileUpload::discard(length, ChirpError::NoSpace));
        }
        // One durability point for the whole streamed upload: the crash
        // harness drives writes through OPEN/PWRITE, where every step
        // is individually killable.
        if let Err(e) = self.durability(DurabilityPoint::Create, path) {
            return Ok(PutfileUpload::discard(length, e));
        }
        let file = open_with_mode(
            OpenOptions::new().write(true).create(true).truncate(true),
            &host,
            mode,
        )?;
        Ok(PutfileUpload {
            remaining: length,
            length,
            fate: UploadFate::Write { file, old_size },
        })
    }

    /// Deliver the next payload chunk of an upload started by
    /// [`Session::begin_putfile`]. Consumes at most
    /// [`PutfileUpload::remaining`] bytes of `buf`; returns how many.
    pub fn feed_putfile(&mut self, upload: &mut PutfileUpload, buf: &[u8]) -> ChirpResult<usize> {
        let n = (upload.remaining.min(buf.len() as u64)) as usize;
        if let UploadFate::Write { file, .. } = &mut upload.fate {
            use std::io::Write;
            file.write_all(&buf[..n])
                .map_err(|e| ChirpError::from_io(&e))?;
        }
        upload.remaining -= n as u64;
        Ok(n)
    }

    /// Complete a fully-fed upload: settle caches, sizes, usage, and
    /// stats, and produce the reply (the deferred rejection for a
    /// drained upload).
    pub fn finish_putfile(&mut self, upload: PutfileUpload) -> ChirpResult<Reply> {
        debug_assert_eq!(upload.remaining, 0, "finish before payload fully fed");
        let length = upload.length;
        match upload.fate {
            UploadFate::Discard(e) => Err(e),
            UploadFate::Write { file, old_size } => {
                // The upload truncated and rewrote the inode: stale
                // pages go, and descriptors already open on it learn
                // the new size.
                if let Ok(meta) = syscount::fstat(&file) {
                    let key = file_key(&meta);
                    if let Some(cache) = &self.shared.cache {
                        cache.invalidate(key);
                    }
                    self.shared.sizes.set_size(key, length);
                }
                self.shared.adjust_usage(length as i64 - old_size as i64);
                self.shared.stats.wrote_bytes(length);
                Ok(Reply::Value(0))
            }
        }
    }

    /// Handle a `PUTFILE`, streaming `length` bytes from `reader`
    /// straight into the created file. On an authorization failure the
    /// payload is drained so the stream stays framed.
    pub fn handle_putfile<R: BufRead>(
        &mut self,
        path: &str,
        mode: u32,
        length: u64,
        reader: &mut R,
    ) -> ChirpResult<Reply> {
        let mut upload = self.begin_putfile(path, mode, length)?;
        match &mut upload.fate {
            UploadFate::Discard(_) => {
                chirp_proto::wire::discard_exact(reader, length)
                    .map_err(|e| ChirpError::from_io(&e))?;
            }
            UploadFate::Write { file, .. } => {
                chirp_proto::wire::copy_exact(reader, file, length)
                    .map_err(|e| ChirpError::from_io(&e))?;
            }
        }
        upload.remaining = 0;
        self.finish_putfile(upload)
    }

    // ---- authentication -------------------------------------------------

    fn do_auth(&mut self, method: &str, name: &str, credential: &str) -> ChirpResult<Reply> {
        if self.subject.is_some() {
            // Only one set of credentials per session (the
            // authenticator enforces this too; failing here keeps the
            // telemetry split between refusals and failures clean).
            return Err(ChirpError::InvalidRequest);
        }
        match self
            .auth
            .attempt(&self.shared.config, method, name, credential)
        {
            Ok(AuthOutcome::Subject(s)) => {
                self.shared.telemetry.auth_success();
                self.subject = Some(s.clone());
                Ok(Reply::Words(0, escape(s.as_bytes())))
            }
            Ok(AuthOutcome::Challenge(challenge)) => {
                self.shared.telemetry.auth_challenge();
                Ok(Reply::Words(1, escape(challenge.as_bytes())))
            }
            Err(e) => {
                self.shared.telemetry.auth_failure();
                Err(e)
            }
        }
    }

    fn require_subject(&self) -> ChirpResult<&str> {
        self.subject.as_deref().ok_or(ChirpError::NotAuthenticated)
    }

    // ---- authorization --------------------------------------------------

    /// Effective rights of the session subject in the directory at
    /// host path `dir`. The owner's superuser patterns grant all
    /// rights everywhere ("the owner retains access to all data").
    fn rights_in(&self, dir: &Path) -> ChirpResult<Rights> {
        let subject = self.require_subject()?;
        for pat in &self.shared.config.superuser {
            if wildcard_match(pat, subject) {
                return Ok(Rights::all());
            }
        }
        let acl = Acl::load_effective(self.shared.jail.root(), dir)?;
        Ok(acl.rights_of(subject))
    }

    /// Require at least one of `any_of` in `dir`.
    fn require_rights(&self, dir: &Path, any_of: Rights) -> ChirpResult<Rights> {
        let r = self.rights_in(dir)?;
        if r.intersects(any_of) {
            Ok(r)
        } else {
            Err(ChirpError::NotAuthorized)
        }
    }

    /// The directory whose ACL governs operations on `path`: its
    /// parent, or the root for the root itself.
    fn governing_dir(&self, path: &str) -> ChirpResult<PathBuf> {
        match self.shared.jail.resolve_parent(path) {
            Ok((dir, _leaf)) => Ok(dir),
            Err(_) => Ok(self.shared.jail.root().to_path_buf()),
        }
    }

    // ---- file operations --------------------------------------------------

    fn do_open(&mut self, path: &str, flags: OpenFlags, mode: u32) -> ChirpResult<Reply> {
        self.require_subject()?;
        let (dir, leaf) = self.shared.jail.resolve_parent(path)?;
        let mut need = Rights::empty();
        if flags.contains(OpenFlags::READ) {
            need |= Rights::READ;
        }
        if flags.writes() {
            need |= Rights::WRITE;
        }
        if need.is_empty() {
            return Err(ChirpError::InvalidRequest);
        }
        let have = self.rights_in(&dir)?;
        if !have.contains(need) {
            return Err(ChirpError::NotAuthorized);
        }
        let host = dir.join(leaf);
        if host.is_dir() {
            return Err(ChirpError::IsADirectory);
        }
        // An O_TRUNC open releases the file's old bytes; account for
        // them so the capacity policy sees rewrites as reuse, not
        // growth.
        let truncated_bytes = if flags.contains(OpenFlags::TRUNCATE) {
            std::fs::metadata(&host).map(|m| m.len()).unwrap_or(0)
        } else {
            0
        };
        let mut opts = OpenOptions::new();
        opts.read(flags.contains(OpenFlags::READ));
        opts.write(flags.contains(OpenFlags::WRITE) || flags.contains(OpenFlags::APPEND));
        opts.append(flags.contains(OpenFlags::APPEND));
        if flags.contains(OpenFlags::CREATE) {
            if flags.contains(OpenFlags::EXCLUSIVE) {
                opts.create_new(true);
            } else {
                opts.create(true);
            }
        }
        opts.truncate(flags.contains(OpenFlags::TRUNCATE));
        if self.shared.config.persistence.is_enabled() {
            // Only existence-probe when observed: the branch costs a
            // stat that production opens must not pay.
            let exists = host.exists();
            if flags.contains(OpenFlags::CREATE) && !exists {
                self.durability(DurabilityPoint::Create, path)?;
            } else if flags.contains(OpenFlags::TRUNCATE) && exists {
                self.durability(DurabilityPoint::Truncate, path)?;
            }
        }
        let file = open_with_mode(&mut opts, &host, mode)?;
        self.shared.adjust_usage(-(truncated_bytes as i64));
        // One fstat per open seeds the inode key and tracked size;
        // every later write and ftruncate on the descriptor maintains
        // the size without touching the kernel again.
        let meta = syscount::fstat(&file).map_err(|e| ChirpError::from_io(&e))?;
        let key = file_key(&meta);
        if truncated_bytes > 0 {
            // O_TRUNC reused the inode but emptied it.
            if let Some(cache) = &self.shared.cache {
                cache.truncate(key, truncated_bytes, 0);
            }
            self.shared.sizes.set_size(key, 0);
        }
        let state = self.shared.sizes.track(key, meta.len());
        let fd = self.fds.insert(OpenFile {
            file,
            sync: flags.contains(OpenFlags::SYNC),
            append: flags.contains(OpenFlags::APPEND),
            readable: flags.contains(OpenFlags::READ),
            key,
            state,
        })?;
        Ok(Reply::Value(fd as i64))
    }

    fn do_pread(&mut self, fd: i32, length: u64, offset: u64) -> ChirpResult<Reply> {
        self.require_subject()?;
        if length > chirp_proto::MAX_PAYLOAD as u64 {
            return Err(ChirpError::TooBig);
        }
        if let Some(delay) = self.shared.config.service_delay {
            std::thread::sleep(delay);
        }
        let f = self.fds.get(fd)?;
        if let Some(cache) = &self.shared.cache {
            if !cache.bypass(length) {
                if length == 0 {
                    // The read loop never consults the kernel for an
                    // empty buffer — succeeds even on a write-only fd.
                    return Ok(Reply::Pages(PageReply::default()));
                }
                if !f.readable {
                    // read(2) on a write-only descriptor: EBADF. A
                    // cache hit must fail exactly like the syscall.
                    return Err(ChirpError::Io);
                }
                let doomed = f.state.doomed.load(std::sync::atomic::Ordering::Relaxed);
                let reply =
                    cache.read(&f.file, f.key, offset, length as usize, f.size(), !doomed)?;
                self.shared.stats.read_bytes(reply.total() as u64);
                return Ok(Reply::Pages(reply));
            }
        }
        if self.scratch.len() < length as usize {
            self.scratch.resize(length as usize, 0);
        }
        let n = read_at(&f.file, &mut self.scratch[..length as usize], offset)?;
        self.shared.stats.read_bytes(n as u64);
        Ok(Reply::Scratch(n))
    }

    fn do_pwrite(&mut self, fd: i32, data: &[u8], offset: u64) -> ChirpResult<Reply> {
        self.require_subject()?;
        if let Some(delay) = self.shared.config.service_delay {
            std::thread::sleep(delay);
        }
        let f = self.fds.get(fd)?;
        // Capacity policy applies to the bytes the write would grow
        // the file by, not to overwrites in place. The size comes
        // from the shared per-inode tracker: zero syscalls here.
        let old_size = f.size();
        // pwrite(2) on an O_APPEND descriptor writes at EOF no matter
        // the offset; mirror the kernel so the cache patches the
        // bytes the disk actually took.
        let eff_off = if f.append { old_size } else { offset };
        let new_size = if data.is_empty() {
            old_size
        } else {
            old_size.max(eff_off + data.len() as u64)
        };
        let growth = new_size - old_size;
        if growth > 0 && self.shared.over_capacity(growth) {
            return Err(ChirpError::NoSpace);
        }
        if !data.is_empty() && self.shared.config.persistence.is_enabled() {
            self.shared
                .config
                .persistence
                .reached(DurabilityPoint::Pwrite, &format!("fd{fd}"))
                .map_err(|e| ChirpError::from_io(&e))?;
        }
        write_all_at(&f.file, data, offset)?;
        if f.sync {
            f.file.sync_all().map_err(|e| ChirpError::from_io(&e))?;
        }
        if !data.is_empty() {
            if let Some(cache) = &self.shared.cache {
                cache.write_through(f.key, eff_off, data, old_size);
            }
            f.state
                .size
                .fetch_max(new_size, std::sync::atomic::Ordering::Relaxed);
        }
        self.shared.adjust_usage(growth as i64);
        self.shared.stats.wrote_bytes(data.len() as u64);
        Ok(Reply::Value(data.len() as i64))
    }

    fn do_stat(&self, path: &str) -> ChirpResult<Reply> {
        if let Some(delay) = self.shared.config.service_delay {
            std::thread::sleep(delay);
        }
        Ok(Reply::Words(0, self.stat_words(path)?))
    }

    /// The stat words for one path (the body of `STAT` and of each
    /// `STATMULTI` line), with `STAT`'s exact error ordering.
    fn stat_words(&self, path: &str) -> ChirpResult<String> {
        let dir = self.governing_dir(path)?;
        self.require_rights(&dir, Rights::READ | Rights::LIST)?;
        let host = self.shared.jail.resolve(path)?;
        let meta = std::fs::metadata(&host).map_err(|e| ChirpError::from_io(&e))?;
        Ok(meta_to_stat(&meta).to_words())
    }

    /// `STATMULTI`: one batched exchange, one verdict line per path —
    /// `0 statwords` on success, the bare negative code otherwise, so
    /// a missing path never fails the rest of the batch. The whole
    /// reply is body-framed, keeping the stream trivially pipelinable.
    fn do_stat_multi(&self, paths: &[String]) -> ChirpResult<Reply> {
        self.require_subject()?;
        let lines: Vec<String> = paths
            .iter()
            .map(|p| match self.stat_words(p) {
                Ok(words) => format!("0 {words}"),
                Err(e) => format!("{}", e.code()),
            })
            .collect();
        Ok(Reply::Data(lines.join("\n").into_bytes()))
    }

    fn do_unlink(&self, path: &str) -> ChirpResult<Reply> {
        let (dir, leaf) = self.shared.jail.resolve_parent(path)?;
        self.require_rights(&dir, Rights::WRITE | Rights::DELETE)?;
        let host = dir.join(leaf);
        if host.is_dir() {
            return Err(ChirpError::IsADirectory);
        }
        let meta = std::fs::metadata(&host).ok();
        if meta.is_some() {
            self.durability(DurabilityPoint::Unlink, path)?;
        }
        std::fs::remove_file(&host).map_err(|e| ChirpError::from_io(&e))?;
        if let Some(meta) = &meta {
            // Open descriptors keep the inode readable, but once the
            // last one closes the inode number can be recycled — drop
            // the pages now and doom the incarnation so nothing
            // repopulates them (see the cache module docs).
            let key = file_key(meta);
            self.shared.sizes.doom(key);
            if let Some(cache) = &self.shared.cache {
                cache.invalidate(key);
            }
        }
        let size = meta.map(|m| m.len()).unwrap_or(0);
        self.shared.adjust_usage(-(size as i64));
        Ok(Reply::Value(0))
    }

    fn do_rename(&self, from: &str, to: &str) -> ChirpResult<Reply> {
        let (from_dir, from_leaf) = self.shared.jail.resolve_parent(from)?;
        let (to_dir, to_leaf) = self.shared.jail.resolve_parent(to)?;
        self.require_rights(&from_dir, Rights::WRITE | Rights::DELETE)?;
        self.require_rights(&to_dir, Rights::WRITE)?;
        let src = from_dir.join(from_leaf);
        if !src.exists() {
            return Err(ChirpError::NotFound);
        }
        let dst = to_dir.join(to_leaf);
        let clobbered = std::fs::metadata(&dst).ok().map(|m| file_key(&m));
        self.durability(DurabilityPoint::Rename, from)?;
        std::fs::rename(&src, &dst).map_err(|e| ChirpError::from_io(&e))?;
        if let Some(key) = clobbered {
            // The rename unlinked the old target inode — same
            // treatment as UNLINK, unless the "target" was the source
            // itself (rename onto self replaces nothing).
            let now = std::fs::metadata(&dst).ok().map(|m| file_key(&m));
            if now != Some(key) {
                self.shared.sizes.doom(key);
                if let Some(cache) = &self.shared.cache {
                    cache.invalidate(key);
                }
            }
        }
        Ok(Reply::Value(0))
    }

    fn do_mkdir(&self, path: &str) -> ChirpResult<Reply> {
        let subject = self.require_subject()?.to_string();
        let (dir, leaf) = self.shared.jail.resolve_parent(path)?;
        let have = self.rights_in(&dir)?;
        let host = dir.join(leaf);
        if have.contains(Rights::WRITE) {
            // Ordinary create: the new directory inherits a copy of the
            // parent's effective ACL.
            std::fs::create_dir(&host).map_err(|e| ChirpError::from_io(&e))?;
            let parent_acl = Acl::load_effective(self.shared.jail.root(), &dir)?;
            parent_acl.store(&host)?;
            return Ok(Reply::Value(0));
        }
        if have.contains(Rights::RESERVE) {
            // Reserve: the new directory's ACL grants only the calling
            // subject, with exactly the rights named in the parent's
            // v(...) grant (paper §4).
            let acl = Acl::load_effective(self.shared.jail.root(), &dir)?;
            let granted = acl.reserve_rights_of(&subject);
            if granted.is_empty() {
                return Err(ChirpError::NotAuthorized);
            }
            std::fs::create_dir(&host).map_err(|e| ChirpError::from_io(&e))?;
            let mut fresh = Acl::new();
            fresh
                .set(&subject, &format!("{granted}"))
                .expect("rights render round-trips");
            fresh.store(&host)?;
            return Ok(Reply::Value(0));
        }
        Err(ChirpError::NotAuthorized)
    }

    fn do_rmdir(&self, path: &str) -> ChirpResult<Reply> {
        let (dir, leaf) = self.shared.jail.resolve_parent(path)?;
        self.require_rights(&dir, Rights::WRITE | Rights::DELETE)?;
        let host = dir.join(leaf);
        let meta = std::fs::metadata(&host).map_err(|e| ChirpError::from_io(&e))?;
        if !meta.is_dir() {
            return Err(ChirpError::NotADirectory);
        }
        // A directory holding only its own ACL metadata counts as
        // empty from the protocol's point of view.
        let entries = std::fs::read_dir(&host).map_err(|e| ChirpError::from_io(&e))?;
        for entry in entries {
            let entry = entry.map_err(|e| ChirpError::from_io(&e))?;
            if entry.file_name() != ACL_FILE {
                return Err(ChirpError::NotEmpty);
            }
        }
        std::fs::remove_dir_all(&host).map_err(|e| ChirpError::from_io(&e))?;
        Ok(Reply::Value(0))
    }

    fn do_getdir(&self, path: &str) -> ChirpResult<Reply> {
        let host = self.shared.jail.resolve(path)?;
        self.require_rights(&host, Rights::LIST)?;
        let mut names: Vec<String> = Vec::new();
        let entries = std::fs::read_dir(&host).map_err(|e| ChirpError::from_io(&e))?;
        for entry in entries {
            let entry = entry.map_err(|e| ChirpError::from_io(&e))?;
            let name = entry.file_name();
            if name == ACL_FILE {
                continue;
            }
            names.push(escape(name.to_string_lossy().as_bytes()));
        }
        names.sort();
        Ok(Reply::Data(names.join("\n").into_bytes()))
    }

    fn do_getlongdir(&self, path: &str) -> ChirpResult<Reply> {
        self.listing_with_stats(path)
    }

    /// `GETDIRSTAT`, the batched listing of the pipelined data path:
    /// identical framing to `GETLONGDIR` (its pre-pipelining spelling),
    /// kept as its own verb so telemetry can track adoption of the
    /// batched ops separately.
    fn do_getdirstat(&self, path: &str) -> ChirpResult<Reply> {
        self.listing_with_stats(path)
    }

    /// One `escape(name) statwords` line per entry, sorted.
    fn listing_with_stats(&self, path: &str) -> ChirpResult<Reply> {
        let host = self.shared.jail.resolve(path)?;
        self.require_rights(&host, Rights::LIST)?;
        let mut lines: Vec<String> = Vec::new();
        let entries = std::fs::read_dir(&host).map_err(|e| ChirpError::from_io(&e))?;
        for entry in entries {
            let entry = entry.map_err(|e| ChirpError::from_io(&e))?;
            let name = entry.file_name();
            if name == ACL_FILE {
                continue;
            }
            let meta = entry.metadata().map_err(|e| ChirpError::from_io(&e))?;
            lines.push(format!(
                "{} {}",
                escape(name.to_string_lossy().as_bytes()),
                meta_to_stat(&meta).to_words()
            ));
        }
        lines.sort();
        Ok(Reply::Data(lines.join("\n").into_bytes()))
    }

    fn do_getfile(&self, path: &str) -> ChirpResult<Reply> {
        let (dir, leaf) = self.shared.jail.resolve_parent(path)?;
        self.require_rights(&dir, Rights::READ)?;
        let host = dir.join(leaf);
        let file = File::open(&host).map_err(|e| ChirpError::from_io(&e))?;
        let meta = file.metadata().map_err(|e| ChirpError::from_io(&e))?;
        if meta.is_dir() {
            return Err(ChirpError::IsADirectory);
        }
        self.shared.stats.read_bytes(meta.len());
        if let Some(cache) = &self.shared.cache {
            // Serve a fully-resident file straight from pages; a
            // partial miss streams from disk without populating, so a
            // whole-tree copy can't wipe out the hot working set.
            if let Some(reply) = cache.probe_file(file_key(&meta), meta.len()) {
                return Ok(Reply::Pages(reply));
            }
        }
        Ok(Reply::FileStream(file, meta.len()))
    }

    fn do_getacl(&self, path: &str) -> ChirpResult<Reply> {
        let host = self.shared.jail.resolve(path)?;
        if !host.is_dir() {
            return Err(ChirpError::NotADirectory);
        }
        // Any right on the directory allows inspecting its ACL.
        let r = self.rights_in(&host)?;
        if r.is_empty() {
            return Err(ChirpError::NotAuthorized);
        }
        let acl = Acl::load_effective(self.shared.jail.root(), &host)?;
        Ok(Reply::Data(acl.render().into_bytes()))
    }

    fn do_setacl(&self, path: &str, subject: &str, rights: &str) -> ChirpResult<Reply> {
        let host = self.shared.jail.resolve(path)?;
        if !host.is_dir() {
            return Err(ChirpError::NotADirectory);
        }
        self.require_rights(&host, Rights::ADMIN)?;
        // Materialize the inherited ACL on first modification so the
        // change is scoped to this directory.
        let mut acl = Acl::load_effective(self.shared.jail.root(), &host)?;
        acl.set(subject, rights)?;
        acl.store(&host)?;
        Ok(Reply::Value(0))
    }

    fn do_checksum(&self, path: &str) -> ChirpResult<Reply> {
        let (dir, leaf) = self.shared.jail.resolve_parent(path)?;
        self.require_rights(&dir, Rights::READ)?;
        let host = dir.join(leaf);
        let mut file = File::open(&host).map_err(|e| ChirpError::from_io(&e))?;
        let mut crc = chirp_proto::checksum::Crc64::new();
        let mut buf = [0u8; 64 * 1024];
        loop {
            let n =
                std::io::Read::read(&mut file, &mut buf).map_err(|e| ChirpError::from_io(&e))?;
            if n == 0 {
                break;
            }
            crc.update(&buf[..n]);
        }
        Ok(Reply::Words(0, format!("{:016x}", crc.finish())))
    }

    fn do_statfs(&self) -> ChirpResult<Reply> {
        self.require_subject()?;
        let total = self.shared.config.capacity_bytes;
        // Reconcile the approximate counter with a real walk, so any
        // drift from untracked mutations is bounded by the statfs
        // interval.
        let used = disk_usage(self.shared.jail.root());
        self.shared
            .used_bytes
            .store(used, std::sync::atomic::Ordering::Relaxed);
        let st = StatFs {
            total_bytes: total,
            free_bytes: total.saturating_sub(used),
        };
        Ok(Reply::Words(0, st.to_words()))
    }

    fn do_truncate(&self, path: &str, size: u64) -> ChirpResult<Reply> {
        let (dir, leaf) = self.shared.jail.resolve_parent(path)?;
        self.require_rights(&dir, Rights::WRITE)?;
        let file = OpenOptions::new()
            .write(true)
            .open(dir.join(leaf))
            .map_err(|e| ChirpError::from_io(&e))?;
        let meta = syscount::fstat(&file).map_err(|e| ChirpError::from_io(&e))?;
        let old = meta.len();
        if size > old && self.shared.over_capacity(size - old) {
            return Err(ChirpError::NoSpace);
        }
        self.durability(DurabilityPoint::Truncate, path)?;
        file.set_len(size).map_err(|e| ChirpError::from_io(&e))?;
        let key = file_key(&meta);
        if let Some(cache) = &self.shared.cache {
            cache.truncate(key, old, size);
        }
        self.shared.sizes.set_size(key, size);
        self.shared.adjust_usage(size as i64 - old as i64);
        Ok(Reply::Value(0))
    }

    /// Third-party transfer: push a local file straight to another
    /// server. The caller needs only the read right here; what it may
    /// create on the target is the target's ACL decision, made against
    /// *this server's* hostname identity.
    fn do_thirdput(&self, path: &str, target: &str, target_path: &str) -> ChirpResult<Reply> {
        // THIRDPUT moves file data like PREAD/PWRITE do, so the
        // injected service time applies here too — benches that price
        // replica placement in transfer units depend on it.
        if let Some(delay) = self.shared.config.service_delay {
            std::thread::sleep(delay);
        }
        let (dir, leaf) = self.shared.jail.resolve_parent(path)?;
        self.require_rights(&dir, Rights::READ)?;
        let host = dir.join(leaf);
        let mut file = File::open(&host).map_err(|e| ChirpError::from_io(&e))?;
        let meta = file.metadata().map_err(|e| ChirpError::from_io(&e))?;
        if meta.is_dir() {
            return Err(ChirpError::IsADirectory);
        }
        let timeout = std::time::Duration::from_secs(30);
        let mut conn =
            chirp_client::Connection::connect_via(&self.shared.config.dialer, target, timeout)?;
        conn.authenticate(&[chirp_client::AuthMethod::Hostname])?;
        conn.putfile_from(target_path, 0o644, meta.len(), &mut file)?;
        self.shared.stats.read_bytes(meta.len());
        Ok(Reply::Value(meta.len() as i64))
    }

    fn do_utime(&self, path: &str, mtime: u64) -> ChirpResult<Reply> {
        let (dir, leaf) = self.shared.jail.resolve_parent(path)?;
        self.require_rights(&dir, Rights::WRITE)?;
        let file = OpenOptions::new()
            .write(true)
            .open(dir.join(leaf))
            .map_err(|e| ChirpError::from_io(&e))?;
        let t = std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(mtime);
        file.set_times(std::fs::FileTimes::new().set_modified(t))
            .map_err(|e| ChirpError::from_io(&e))?;
        Ok(Reply::Value(0))
    }
}

/// Total bytes of file data stored under `root` (recursive walk; the
/// exported trees in a personal server are small enough that a walk
/// beats tracking every mutation).
pub fn disk_usage(root: &Path) -> u64 {
    let mut total = 0;
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let Ok(meta) = entry.metadata() else { continue };
            if meta.is_dir() {
                stack.push(entry.path());
            } else {
                total += meta.len();
            }
        }
    }
    total
}

fn open_with_mode(opts: &mut OpenOptions, path: &Path, mode: u32) -> ChirpResult<File> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::OpenOptionsExt;
        if mode != 0 {
            opts.mode(mode);
        }
    }
    opts.open(path).map_err(|e| ChirpError::from_io(&e))
}

fn read_at(file: &File, buf: &mut [u8], offset: u64) -> ChirpResult<usize> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        // Loop: read_at may return short counts before EOF.
        let mut filled = 0;
        while filled < buf.len() {
            match file.read_at(&mut buf[filled..], offset + filled as u64) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ChirpError::from_io(&e)),
            }
        }
        Ok(filled)
    }
    #[cfg(not(unix))]
    {
        compile_error!("chirp-server requires a unix host");
    }
}

fn write_all_at(file: &File, buf: &[u8], offset: u64) -> ChirpResult<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.write_all_at(buf, offset)
            .map_err(|e| ChirpError::from_io(&e))
    }
    #[cfg(not(unix))]
    {
        compile_error!("chirp-server requires a unix host");
    }
}

/// Convert host metadata to the protocol stat structure.
pub fn meta_to_stat(meta: &std::fs::Metadata) -> StatBuf {
    #[cfg(unix)]
    let (device, inode, nlink, mode, mtime) = {
        use std::os::unix::fs::MetadataExt;
        (
            meta.dev(),
            meta.ino(),
            meta.nlink(),
            meta.mode() & 0o7777,
            meta.mtime().max(0) as u64,
        )
    };
    StatBuf {
        device,
        inode,
        file_type: if meta.is_dir() {
            FileType::Dir
        } else if meta.is_file() {
            FileType::File
        } else {
            FileType::Other
        },
        mode,
        nlink,
        size: meta.len(),
        mtime,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_proto::testutil::TempDir;

    #[test]
    fn disk_usage_sums_recursively() {
        let dir = TempDir::new();
        std::fs::write(dir.path().join("a"), vec![0u8; 100]).unwrap();
        let sub = dir.subdir("s");
        std::fs::write(sub.join("b"), vec![0u8; 50]).unwrap();
        assert_eq!(disk_usage(dir.path()), 150);
    }

    /// One session, end to end at the handler layer: a burst of
    /// writes, reads, and ftruncates on an open descriptor must make
    /// zero `fstat` calls (the fd table tracks the size), and an
    /// oversized read must not pin its scratch buffer after trimming.
    ///
    /// A single combined test because [`syscount::FSTAT_CALLS`] is
    /// process-global: two tests measuring it in parallel would see
    /// each other's opens.
    #[test]
    fn hot_io_burst_is_fstat_free_and_scratch_shrinks() {
        use chirp_proto::message::Request;
        use chirp_proto::OpenFlags;

        let dir = TempDir::new();
        let cfg = crate::config::ServerConfig::localhost(dir.path(), "o")
            .with_root_acl(crate::acl::Acl::single("hostname:*", "rwlda").unwrap())
            .with_cache(64 * 1024);
        let shared = crate::server::Shared::new(cfg).unwrap();
        let mut s = Session::new(shared, "127.0.0.1".parse().unwrap());
        s.handle(
            Request::Auth {
                method: "hostname".into(),
                name: "localhost".into(),
                credential: String::new(),
            },
            None,
        )
        .unwrap();
        let open = s
            .handle(
                Request::Open {
                    path: "/f".into(),
                    flags: OpenFlags::READ | OpenFlags::WRITE | OpenFlags::CREATE,
                    mode: 0o644,
                },
                None,
            )
            .unwrap();
        let Reply::Value(fd) = open else {
            panic!("open reply");
        };
        let fd = fd as i32;

        let before = syscount::FSTAT_CALLS.load(std::sync::atomic::Ordering::Relaxed);
        for i in 0..256u64 {
            s.handle(
                Request::Pwrite {
                    fd,
                    length: 100,
                    offset: i * 100,
                },
                Some(vec![7u8; 100]),
            )
            .unwrap();
        }
        for i in 0..64u64 {
            s.handle(
                Request::Pread {
                    fd,
                    length: 400,
                    offset: i * 400,
                },
                None,
            )
            .unwrap();
        }
        s.handle(Request::Ftruncate { fd, size: 10_000 }, None)
            .unwrap();
        s.handle(Request::Ftruncate { fd, size: 40_000 }, None)
            .unwrap();
        let after = syscount::FSTAT_CALLS.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "the hot read/write/ftruncate path must not fstat"
        );

        // An oversized read (past the cache bypass threshold) lands in
        // scratch and grows it; the post-reply trim must release it.
        let big = 4 << 20;
        s.handle(
            Request::Pwrite {
                fd,
                length: big,
                offset: 0,
            },
            Some(vec![9u8; big as usize]),
        )
        .unwrap();
        let reply = s
            .handle(
                Request::Pread {
                    fd,
                    length: big,
                    offset: 0,
                },
                None,
            )
            .unwrap();
        assert!(matches!(reply, Reply::Scratch(n) if n == big as usize));
        assert!(s.scratch.capacity() >= big as usize);
        s.trim_scratch();
        assert!(
            s.scratch.capacity() <= Session::SCRATCH_WATERMARK,
            "scratch must shrink to the watermark, got {}",
            s.scratch.capacity()
        );
    }

    #[test]
    fn meta_to_stat_distinguishes_types() {
        let dir = TempDir::new();
        std::fs::write(dir.path().join("f"), b"xyz").unwrap();
        let f = meta_to_stat(&std::fs::metadata(dir.path().join("f")).unwrap());
        assert!(f.is_file());
        assert_eq!(f.size, 3);
        let d = meta_to_stat(&std::fs::metadata(dir.path()).unwrap());
        assert!(d.is_dir());
        assert!(f.inode != 0);
    }
}

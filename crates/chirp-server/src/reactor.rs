//! The event-driven connection core: sharded nonblocking readiness
//! loops multiplexing many connections per thread.
//!
//! Each accepted connection lands on one worker shard (round-robin)
//! and stays there: no cross-shard migration, no locking on the hot
//! path. A shard owns a [`Poller`] watching two kinds of streams
//! through the [`chirp_proto::ready`] seam:
//!
//! * **fd-backed** transports (real sockets) are registered with a
//!   vendored `epoll` wrapper on Linux — level-triggered for reads,
//!   with `EPOLLOUT` interest armed only while a connection has
//!   queued reply bytes it could not transmit.
//! * **watcher-backed** transports ([`MemStream`]) register a
//!   [`ReadyWatcher`] that pushes `(token, readable, writable)` hints
//!   into the shard's ready-set and kicks the poller awake. The
//!   reactor treats every hint as level-triggered (it reads and writes
//!   until `WouldBlock` or a short read — either one proves the stream
//!   was drained at that instant), so coalesced or duplicated hints
//!   cannot change behavior — which is what keeps the simulation
//!   harness deterministic while driving this exact state machine.
//! * transports supporting neither (fault-injection wrappers, TCP on
//!   non-Linux hosts) fall back to a dedicated blocking thread running
//!   the classic per-connection loop.
//!
//! Per connection, a read/write state machine replays the blocking
//! core's contract op-for-op: one `stats.request()` per line, the same
//! silent close on oversized or non-UTF-8 lines, the same
//! error-then-close on an over-cap `PWRITE`, the PR-5 flush deferral
//! (replies coalesce while further requests are already buffered), and
//! the PR-6 scatter-gather page replies. Reply bytes that cannot be
//! transmitted yet queue on the connection; when the queue passes
//! [`crate::config::ServerConfig::reactor_write_cap`] the reactor
//! stops *reading* from that connection — bounded backpressure for a
//! slow reader — until the queue drains.
//!
//! [`MemStream`]: chirp_proto::transport::MemStream
//! [`ReadyWatcher`]: chirp_proto::ready::ReadyWatcher

use std::collections::HashMap;
use std::io::{self, Read};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use chirp_proto::ready::{ReadyWatcher, Token, Watcher};
use chirp_proto::transport::Transport;
use chirp_proto::{ChirpError, Request, MAX_LINE, MAX_PAYLOAD};
use telemetry::SpanTimer;

use crate::cache::PageReply;
use crate::config::CoreKind;
use crate::handlers::{PutfileUpload, Reply, Session};
use crate::server::Shared;

/// Token reserved for the poller's own wake channel.
const WAKE_TOKEN: Token = usize::MAX;
/// Bytes read from a stream per `read` call.
const READ_CHUNK: usize = 64 * 1024;
/// Stop reading a connection once this many unparsed request bytes are
/// buffered (mirrors the blocking core's 256 KiB `BufReader`).
const RBUF_CAP: usize = 256 * 1024;
/// Shrink an empty read buffer whose capacity grew past this.
const RBUF_WATERMARK: usize = 16 * 1024;

/// The sharded reactor serving one [`crate::FileServer`].
pub(crate) struct Reactor {
    shards: Vec<Arc<Shard>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    next: AtomicUsize,
}

impl Reactor {
    /// Resolve the worker-shard count for `config`.
    pub(crate) fn worker_count(configured: usize) -> usize {
        if configured > 0 {
            return configured;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .clamp(2, 8)
    }

    /// Decide which core a server config actually runs: an artificial
    /// per-RPC `service_delay` would serialize every connection
    /// sharing a reactor worker, so it forces the threaded core.
    pub(crate) fn effective_core(config: &crate::config::ServerConfig) -> CoreKind {
        if config.service_delay.is_some() {
            CoreKind::Threads
        } else {
            config.core
        }
    }

    /// Start the worker shards.
    pub(crate) fn start(shared: &Arc<Shared>) -> io::Result<Reactor> {
        let workers = Reactor::worker_count(shared.config.reactor_workers);
        let mut shards = Vec::with_capacity(workers);
        let mut threads = Vec::with_capacity(workers);
        for i in 0..workers {
            let shard = Arc::new(Shard {
                shared: shared.clone(),
                poller: Arc::new(Poller::new()?),
                inbox: Mutex::new(Vec::new()),
            });
            shards.push(shard.clone());
            threads.push(
                std::thread::Builder::new()
                    .name(format!("chirp-react-{i}"))
                    .spawn(move || shard.run())?,
            );
        }
        Ok(Reactor {
            shards,
            threads: Mutex::new(threads),
            next: AtomicUsize::new(0),
        })
    }

    /// Hand an accepted connection to the next shard (round-robin).
    /// The caller has already counted it in `shared.active`.
    pub(crate) fn dispatch(&self, stream: Box<dyn Transport>, peer: SocketAddr) {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.shards[i].inbox.lock().unwrap().push((stream, peer));
        self.shards[i].poller.wake();
    }

    /// Wake every shard (so it observes the server's shutdown flag,
    /// closes its connections, and exits) and join the workers.
    pub(crate) fn join(&self) {
        for shard in &self.shards {
            shard.poller.wake();
        }
        for handle in self.threads.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
    }
}

/// One worker: a poller plus the connections pinned to it.
struct Shard {
    shared: Arc<Shared>,
    poller: Arc<Poller>,
    inbox: Mutex<Vec<(Box<dyn Transport>, SocketAddr)>>,
}

/// Watcher handed to in-process transports: forwards readiness hints
/// into the shard's ready-set and kicks the poller.
struct MemWatcher {
    poller: Arc<Poller>,
}

impl ReadyWatcher for MemWatcher {
    fn notify(&self, token: Token, readable: bool, writable: bool) {
        self.poller.push_mem(token, readable, writable);
        self.poller.wake();
    }
}

impl Shard {
    fn run(self: Arc<Shard>) {
        let shared = &self.shared;
        let mut conns: HashMap<Token, Conn> = HashMap::new();
        let mut next_token: Token = 0;
        let mut events: Vec<(Token, bool, bool)> = Vec::new();
        let mut dirty: Vec<Token> = Vec::new();
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                for (_, conn) in conns.drain() {
                    self.retire(conn);
                }
                for (stream, _) in self.inbox.lock().unwrap().drain(..) {
                    let _ = stream.shutdown();
                    shared.active.fetch_sub(1, Ordering::Relaxed);
                }
                return;
            }
            // Adopt newly dispatched connections.
            let fresh = std::mem::take(&mut *self.inbox.lock().unwrap());
            for (stream, peer) in fresh {
                let token = next_token;
                next_token = next_token.wrapping_add(1);
                if next_token == WAKE_TOKEN {
                    next_token = 0;
                }
                if let Some(mut conn) = self.adopt(stream, peer, token) {
                    // Pump immediately: bytes may already be buffered
                    // (epoll level-triggering will also re-report them,
                    // but the mem path's initial hint was consumed into
                    // the ready-set before the conn existed in rare
                    // interleavings — a free pump is always sound).
                    conn.pump(shared);
                    self.settle(&mut conn);
                    if conn.dead {
                        self.retire(conn);
                    } else {
                        conns.insert(token, conn);
                    }
                }
            }
            // Wait for readiness. 25 ms tick while an idle policy needs
            // enforcing; a lazy 500 ms safety tick otherwise (shutdown
            // and dispatch both wake the poller explicitly).
            let timeout_ms = if shared.config.idle_timeout.is_some() {
                25
            } else {
                500
            };
            events.clear();
            self.poller.wait(timeout_ms, &mut events);
            shared.telemetry.reactor_loop();
            shared.telemetry.reactor_wakeup(events.len() as u64);
            dirty.clear();
            for &(token, readable, writable) in &events {
                if let Some(conn) = conns.get_mut(&token) {
                    conn.readable |= readable;
                    conn.writable |= writable;
                    // The epoll path reports each fd once per wait;
                    // only watcher pushes can repeat a token, and a
                    // repeated pump is a cheap no-op — not worth a
                    // quadratic dedup scan over a large ready batch.
                    dirty.push(token);
                }
            }
            for token in dirty.drain(..) {
                let Some(conn) = conns.get_mut(&token) else {
                    continue;
                };
                conn.pump(shared);
                self.settle(conn);
                if conn.dead {
                    let conn = conns.remove(&token).expect("present");
                    self.retire(conn);
                }
            }
            // Idle policy: a connection quiet past the timeout ends
            // exactly like a disconnect (the blocking core's read
            // timeout), freeing its slot and descriptors.
            if let Some(idle) = shared.config.idle_timeout {
                let now = Instant::now();
                let expired: Vec<Token> = conns
                    .iter()
                    .filter(|(_, c)| now.duration_since(c.last_active) > idle)
                    .map(|(t, _)| *t)
                    .collect();
                for token in expired {
                    let conn = conns.remove(&token).expect("present");
                    self.retire(conn);
                }
            }
        }
    }

    /// Register a fresh connection with the poller, choosing the fd
    /// path, the watcher path, or the dedicated-thread fallback.
    /// Returns `None` when the connection is fully handed off (thread
    /// fallback) or could not be set up.
    fn adopt(&self, stream: Box<dyn Transport>, peer: SocketAddr, token: Token) -> Option<Conn> {
        if Poller::SUPPORTS_FDS {
            if let Some(fd) = stream.readiness_fd() {
                if stream.set_nonblocking(true).is_ok()
                    && self.poller.add_fd(fd, token, false).is_ok()
                {
                    return Some(Conn::new(
                        stream,
                        peer,
                        token,
                        Some(fd),
                        false,
                        &self.shared,
                    ));
                }
                let _ = stream.set_nonblocking(false);
                self.fallback_thread(stream, peer);
                return None;
            }
        }
        if stream.set_nonblocking(true).is_ok() {
            let watcher: Watcher = Arc::new(MemWatcher {
                poller: self.poller.clone(),
            });
            if stream.register_ready(token, watcher) {
                return Some(Conn::new(stream, peer, token, None, true, &self.shared));
            }
            let _ = stream.set_nonblocking(false);
        }
        self.fallback_thread(stream, peer);
        None
    }

    /// Serve a transport with no readiness support on its own blocking
    /// thread — the classic core, one connection's worth.
    fn fallback_thread(&self, stream: Box<dyn Transport>, peer: SocketAddr) {
        let shared = self.shared.clone();
        let spawned = std::thread::Builder::new()
            .name("chirp-conn".to_string())
            .spawn(move || {
                let _ = crate::server::serve_connection(stream, peer, &shared);
                shared.active.fetch_sub(1, Ordering::Relaxed);
            });
        if spawned.is_err() {
            self.shared.active.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Reconcile a connection's epoll write interest with its queue:
    /// `EPOLLOUT` is armed only while untransmitted bytes wait on an
    /// unwritable stream (level-triggered `EPOLLOUT` would otherwise
    /// fire on every wait).
    fn settle(&self, conn: &mut Conn) {
        let Some(fd) = conn.fd else { return };
        if conn.dead {
            return;
        }
        let want = !conn.wq.is_empty() && !conn.writable;
        if want != conn.want_write && self.poller.mod_fd(fd, conn.token, want).is_ok() {
            conn.want_write = want;
        }
    }

    /// Tear down a finished connection and release its slot.
    fn retire(&self, conn: Conn) {
        if let Some(fd) = conn.fd {
            self.poller.del_fd(fd);
        }
        if conn.mem {
            conn.stream.deregister_ready();
        }
        let _ = conn.stream.shutdown();
        self.shared.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// What one connection still owes the wire.
enum WItem {
    /// Plain reply bytes (status lines, inline data), partially sent
    /// up to the offset.
    Bytes(Vec<u8>, usize),
    /// A file streamed from disk in bounded chunks.
    File(std::fs::File, u64),
    /// Cache pages scatter-gathered with vectored writes, positioned
    /// at (slice index, offset within slice).
    Pages(PageReply, usize, usize),
}

/// Read-side position in the request stream.
enum RState {
    /// Between requests: scanning for the next `\n`.
    Line,
    /// Accumulating a `PWRITE` payload.
    Payload {
        req: Request,
        buf: Vec<u8>,
        span: SpanTimer,
        bytes_in: u64,
    },
    /// Streaming a `PUTFILE` payload straight into the file.
    Putfile {
        upload: PutfileUpload,
        span: SpanTimer,
        bytes_in: u64,
    },
}

/// One multiplexed connection: transport, session, and the
/// read/write state machines.
struct Conn {
    stream: Box<dyn Transport>,
    token: Token,
    fd: Option<i32>,
    mem: bool,
    session: Session,
    rbuf: Vec<u8>,
    rpos: usize,
    /// Scan cursor for `\n` (everything before it is known clean), so
    /// repeated partial arrivals stay O(bytes) not O(bytes²).
    scan: usize,
    rstate: RState,
    wq: std::collections::VecDeque<WItem>,
    /// Total untransmitted bytes across `wq` (the backpressure gauge).
    wq_bytes: u64,
    readable: bool,
    writable: bool,
    /// Whether `EPOLLOUT` interest is currently armed (fd path).
    want_write: bool,
    /// Peer sent EOF; serve what is buffered, then close.
    eof: bool,
    /// Protocol violation answered: flush the queue, then close.
    closing: bool,
    dead: bool,
    backpressured: bool,
    last_active: Instant,
}

impl Conn {
    fn new(
        stream: Box<dyn Transport>,
        peer: SocketAddr,
        token: Token,
        fd: Option<i32>,
        mem: bool,
        shared: &Arc<Shared>,
    ) -> Conn {
        Conn {
            stream,
            token,
            fd,
            mem,
            session: Session::new(shared.clone(), peer.ip()),
            rbuf: Vec::new(),
            rpos: 0,
            scan: 0,
            rstate: RState::Line,
            wq: std::collections::VecDeque::new(),
            wq_bytes: 0,
            // Optimistic: a fresh stream is writable until proven
            // otherwise; fd readability arrives level-triggered, mem
            // readability via the registration-time hint.
            readable: false,
            writable: true,
            want_write: false,
            eof: false,
            closing: false,
            dead: false,
            backpressured: false,
            last_active: Instant::now(),
        }
    }

    /// Drive the connection until it can make no further progress
    /// without new readiness events.
    fn pump(&mut self, shared: &Arc<Shared>) {
        loop {
            let mut progress = false;
            progress |= self.drain_writes();
            if self.dead {
                return;
            }
            if self.closing {
                if self.wq.is_empty() {
                    self.dead = true;
                    return;
                }
            } else {
                progress |= self.process(shared);
                if self.dead {
                    return;
                }
                progress |= self.fill(shared);
                if self.dead {
                    return;
                }
            }
            if !progress {
                break;
            }
        }
        self.compact();
    }

    /// Parse and serve whatever complete requests the read buffer
    /// holds. Returns whether anything advanced.
    fn process(&mut self, shared: &Arc<Shared>) -> bool {
        let cap = shared.config.reactor_write_cap as u64;
        let mut progress = false;
        loop {
            if self.dead || self.closing {
                return progress;
            }
            if self.wq_bytes > cap {
                // Slow reader: stop consuming requests until the
                // queued replies drain below the cap.
                if !self.backpressured {
                    self.backpressured = true;
                    shared.telemetry.reactor_backpressure();
                }
                return progress;
            }
            self.backpressured = false;
            match &mut self.rstate {
                RState::Line => {
                    let nl = self.rbuf[self.scan..]
                        .iter()
                        .position(|&b| b == b'\n')
                        .map(|i| self.scan + i);
                    match nl {
                        Some(nl) => {
                            self.scan = nl + 1;
                            if nl - self.rpos > MAX_LINE {
                                // Oversized line: drop the connection
                                // with no reply (wire::read_line).
                                self.dead = true;
                                return progress;
                            }
                            let line = match std::str::from_utf8(&self.rbuf[self.rpos..nl]) {
                                Ok(s) => s.to_owned(),
                                Err(_) => {
                                    // Non-UTF-8: same silent close.
                                    self.dead = true;
                                    return progress;
                                }
                            };
                            self.rpos = nl + 1;
                            self.dispatch_line(shared, &line);
                            progress = true;
                        }
                        None => {
                            let unparsed = self.rbuf.len() - self.rpos;
                            if unparsed > MAX_LINE {
                                self.dead = true;
                                return progress;
                            }
                            if self.eof {
                                // Clean disconnect at a line boundary;
                                // EOF mid-line is the same silent close
                                // the blocking core's error path takes.
                                self.dead = true;
                            }
                            return progress;
                        }
                    }
                }
                RState::Payload { req, buf, .. } => {
                    let need = (req.payload_len() as usize) - buf.len();
                    let avail = self.rbuf.len() - self.rpos;
                    let take = need.min(avail);
                    buf.extend_from_slice(&self.rbuf[self.rpos..self.rpos + take]);
                    self.rpos += take;
                    self.scan = self.scan.max(self.rpos);
                    if take > 0 {
                        progress = true;
                    }
                    if take == need {
                        let RState::Payload {
                            req,
                            buf,
                            span,
                            bytes_in,
                        } = std::mem::replace(&mut self.rstate, RState::Line)
                        else {
                            unreachable!("matched Payload above");
                        };
                        let op = req.op_name();
                        let reply = self.session.handle(req, Some(buf));
                        self.queue_reply(shared, op, bytes_in, span, reply);
                        progress = true;
                    } else if self.eof {
                        // Payload cut short: the blocking core reports
                        // the read error and closes (`read_payload`
                        // failure path).
                        let e = ChirpError::from_io(&io::Error::from(io::ErrorKind::UnexpectedEof));
                        self.push_error_line(shared, e);
                        self.closing = true;
                        return progress;
                    } else {
                        return progress;
                    }
                }
                RState::Putfile { upload, .. } => {
                    let avail = &self.rbuf[self.rpos..];
                    if !avail.is_empty() && upload.remaining() > 0 {
                        match self.session.feed_putfile(upload, avail) {
                            Ok(n) => {
                                self.rpos += n;
                                self.scan = self.scan.max(self.rpos);
                                progress = true;
                            }
                            Err(e) => {
                                // A failed file write surfaces as the
                                // request's error reply; the unread
                                // payload remainder stays on the wire
                                // (the blocking core does not drain it
                                // either — framing is lost the same
                                // way on both cores).
                                let RState::Putfile { span, bytes_in, .. } =
                                    std::mem::replace(&mut self.rstate, RState::Line)
                                else {
                                    unreachable!("matched Putfile above");
                                };
                                self.queue_reply(shared, "putfile", bytes_in, span, Err(e));
                                progress = true;
                                continue;
                            }
                        }
                    }
                    if upload.remaining() == 0 {
                        let RState::Putfile {
                            upload,
                            span,
                            bytes_in,
                        } = std::mem::replace(&mut self.rstate, RState::Line)
                        else {
                            unreachable!("matched Putfile above");
                        };
                        let reply = self.session.finish_putfile(upload);
                        self.queue_reply(shared, "putfile", bytes_in, span, reply);
                        progress = true;
                    } else if self.rbuf.len() == self.rpos {
                        if self.eof {
                            // Upload cut short: error reply, then the
                            // line loop observes EOF and closes.
                            let e =
                                ChirpError::from_io(&io::Error::from(io::ErrorKind::UnexpectedEof));
                            let RState::Putfile { span, bytes_in, .. } =
                                std::mem::replace(&mut self.rstate, RState::Line)
                            else {
                                unreachable!("matched Putfile above");
                            };
                            self.queue_reply(shared, "putfile", bytes_in, span, Err(e));
                            continue;
                        }
                        return progress;
                    }
                }
            }
        }
    }

    /// Serve one request line, mirroring the blocking core's loop body
    /// decision for decision.
    fn dispatch_line(&mut self, shared: &Arc<Shared>, line: &str) {
        shared.stats.request();
        let span = SpanTimer::start();
        let parsed = Request::parse(line);
        let (op, bytes_in) = match &parsed {
            Ok(req) => (req.op_name(), req.payload_len()),
            Err(_) => ("invalid", 0),
        };
        match parsed {
            Err(e) => self.queue_reply(shared, op, bytes_in, span, Err(e)),
            Ok(Request::Putfile { path, mode, length }) => {
                match self.session.begin_putfile(&path, mode, length) {
                    Err(e) => self.queue_reply(shared, op, bytes_in, span, Err(e)),
                    Ok(upload) if upload.remaining() == 0 => {
                        let reply = self.session.finish_putfile(upload);
                        self.queue_reply(shared, op, bytes_in, span, reply);
                    }
                    Ok(upload) => {
                        self.rstate = RState::Putfile {
                            upload,
                            span,
                            bytes_in,
                        };
                    }
                }
            }
            Ok(req @ Request::Pwrite { .. }) => {
                let length = req.payload_len();
                if length > MAX_PAYLOAD as u64 {
                    // `read_payload`'s cap check: error, flush, close —
                    // with no error-counter bump and no telemetry
                    // record, exactly like the blocking core.
                    self.push_error_line(shared, ChirpError::TooBig);
                    self.closing = true;
                } else {
                    self.rstate = RState::Payload {
                        buf: Vec::with_capacity(length as usize),
                        req,
                        span,
                        bytes_in,
                    };
                }
            }
            Ok(req) => {
                let reply = self.session.handle(req, None);
                self.queue_reply(shared, op, bytes_in, span, reply);
            }
        }
    }

    /// Queue a reply's bytes and account for it — the reactor's
    /// equivalent of the blocking core's reply write + `trim_scratch`
    /// + telemetry record.
    fn queue_reply(
        &mut self,
        shared: &Arc<Shared>,
        op: &str,
        bytes_in: u64,
        span: SpanTimer,
        reply: Result<Reply, ChirpError>,
    ) {
        let bytes_out = match &reply {
            Ok(Reply::Data(data)) => data.len() as u64,
            Ok(Reply::Scratch(n)) => *n as u64,
            Ok(Reply::FileStream(_, len)) => *len,
            Ok(Reply::Pages(p)) => p.total() as u64,
            _ => 0,
        };
        let error = reply.as_ref().err().copied();
        match reply {
            Ok(Reply::Value(v)) => self.push_bytes(format!("{v}\n").into_bytes()),
            Ok(Reply::Words(v, words)) => self.push_bytes(format!("{v} {words}\n").into_bytes()),
            Ok(Reply::Data(data)) => {
                self.push_bytes(format!("{}\n", data.len()).into_bytes());
                self.push_bytes(data);
            }
            Ok(Reply::Scratch(n)) => {
                let mut out = format!("{n}\n").into_bytes();
                out.extend_from_slice(&self.session.scratch()[..n]);
                self.push_bytes(out);
            }
            Ok(Reply::FileStream(file, len)) => {
                self.push_bytes(format!("{len}\n").into_bytes());
                if len > 0 {
                    self.wq.push_back(WItem::File(file, len));
                    self.wq_bytes += len;
                }
            }
            Ok(Reply::Pages(p)) => {
                self.push_bytes(format!("{}\n", p.total()).into_bytes());
                if p.total() > 0 {
                    self.wq_bytes += p.total() as u64;
                    self.wq.push_back(WItem::Pages(p, 0, 0));
                }
            }
            Err(e) => {
                shared.stats.error();
                self.push_bytes(format!("{}\n", e.code()).into_bytes());
            }
        }
        shared.telemetry.reactor_wq_high_water(self.wq_bytes);
        self.session.trim_scratch();
        shared.telemetry.record(
            op,
            self.session.subject(),
            span.elapsed_ns(),
            bytes_in,
            bytes_out,
            error,
        );
    }

    /// Queue a bare error status line with no telemetry side effects
    /// (the pre-dispatch protocol-violation path).
    fn push_error_line(&mut self, shared: &Arc<Shared>, e: ChirpError) {
        self.push_bytes(format!("{}\n", e.code()).into_bytes());
        shared.telemetry.reactor_wq_high_water(self.wq_bytes);
    }

    /// Append reply bytes, coalescing into the queue's tail buffer so
    /// a status line and its data ride one `write` (the `BufWriter`
    /// behavior of the blocking core).
    fn push_bytes(&mut self, data: Vec<u8>) {
        if data.is_empty() {
            return;
        }
        self.wq_bytes += data.len() as u64;
        if let Some(WItem::Bytes(tail, _)) = self.wq.back_mut() {
            if tail.len() + data.len() <= RBUF_CAP {
                tail.extend_from_slice(&data);
                return;
            }
        }
        self.wq.push_back(WItem::Bytes(data, 0));
    }

    /// Transmit queued reply bytes until the stream would block or the
    /// queue empties. Returns whether anything was written.
    fn drain_writes(&mut self) -> bool {
        let mut progress = false;
        while self.writable && !self.dead {
            let Some(item) = self.wq.pop_front() else {
                break;
            };
            match item {
                WItem::Bytes(vec, mut off) => {
                    while off < vec.len() && self.writable && !self.dead {
                        match self.stream.write(&vec[off..]) {
                            Ok(0) => self.dead = true,
                            Ok(n) => {
                                off += n;
                                self.wq_bytes -= n as u64;
                                progress = true;
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                self.writable = false;
                            }
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(_) => self.dead = true,
                        }
                    }
                    if off < vec.len() && !self.dead {
                        self.wq.push_front(WItem::Bytes(vec, off));
                    }
                }
                WItem::File(mut file, remaining) => {
                    // One bounded chunk per round: read from disk, then
                    // transmit, parking any unwritten tail in front of
                    // the file so ordering holds.
                    let mut chunk = vec![0u8; READ_CHUNK.min(remaining as usize)];
                    match file.read(&mut chunk) {
                        Ok(0) => {
                            // File shrank mid-stream: the blocking
                            // core's copy_exact fails and the
                            // connection dies; replicate.
                            self.dead = true;
                        }
                        Ok(n) => {
                            chunk.truncate(n);
                            let left = remaining - n as u64;
                            if left > 0 {
                                self.wq.push_front(WItem::File(file, left));
                            }
                            // Re-enter through push of the chunk ahead
                            // of the remaining file bytes.
                            self.wq_bytes -= n as u64;
                            self.wq.push_front(WItem::Bytes(chunk, 0));
                            self.wq_bytes += n as u64;
                            progress = true;
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                            self.wq.push_front(WItem::File(file, remaining));
                        }
                        Err(_) => self.dead = true,
                    }
                }
                WItem::Pages(reply, mut slice, mut off) => {
                    while self.writable && !self.dead {
                        let slices = reply.slices();
                        if slice >= slices.len() {
                            break;
                        }
                        let bufs: Vec<io::IoSlice> =
                            std::iter::once(io::IoSlice::new(&slices[slice].as_slice()[off..]))
                                .chain(
                                    slices[slice + 1..]
                                        .iter()
                                        .map(|s| io::IoSlice::new(s.as_slice())),
                                )
                                .collect();
                        match self.stream.write_vectored(&bufs) {
                            Ok(0) => self.dead = true,
                            Ok(mut n) => {
                                self.wq_bytes -= n as u64;
                                progress = true;
                                while n > 0 && slice < slices.len() {
                                    let left = slices[slice].len() - off;
                                    if n >= left {
                                        n -= left;
                                        slice += 1;
                                        off = 0;
                                    } else {
                                        off += n;
                                        n = 0;
                                    }
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                self.writable = false;
                            }
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(_) => self.dead = true,
                        }
                    }
                    if slice < reply.slices().len() && !self.dead {
                        self.wq.push_front(WItem::Pages(reply, slice, off));
                    }
                }
            }
        }
        progress
    }

    /// Read newly arrived bytes into the request buffer, up to the
    /// buffering cap. Returns whether anything arrived (or EOF did).
    fn fill(&mut self, _shared: &Arc<Shared>) -> bool {
        let mut progress = false;
        while self.readable && !self.eof && !self.dead {
            if self.rbuf.len() - self.rpos >= RBUF_CAP {
                // Plenty buffered; stay marked readable and come back
                // once the parser catches up.
                break;
            }
            self.compact();
            let old = self.rbuf.len();
            self.rbuf.resize(old + READ_CHUNK, 0);
            match self.stream.read(&mut self.rbuf[old..]) {
                Ok(0) => {
                    self.rbuf.truncate(old);
                    self.eof = true;
                    progress = true;
                }
                Ok(n) => {
                    self.rbuf.truncate(old + n);
                    self.last_active = Instant::now();
                    progress = true;
                    if n < READ_CHUNK {
                        // A short read drained the stream at that
                        // instant; skip the confirming WouldBlock
                        // syscall. Level-triggered epoll (and the
                        // watcher's notify-on-write) re-report the
                        // moment more bytes arrive.
                        self.readable = false;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.rbuf.truncate(old);
                    self.readable = false;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    self.rbuf.truncate(old);
                }
                Err(_) => {
                    self.rbuf.truncate(old);
                    self.dead = true;
                }
            }
        }
        progress
    }

    /// Reclaim consumed read-buffer space; shrink an idle buffer back
    /// to the watermark so 50k quiet connections stay flat in memory.
    fn compact(&mut self) {
        if self.rpos == self.rbuf.len() {
            self.rbuf.clear();
            self.rpos = 0;
            self.scan = 0;
            if self.rbuf.capacity() > RBUF_WATERMARK {
                self.rbuf.shrink_to(RBUF_WATERMARK);
            }
        } else if self.rpos >= READ_CHUNK {
            self.rbuf.drain(..self.rpos);
            self.scan -= self.rpos;
            self.rpos = 0;
        }
    }
}

// ---- the poller --------------------------------------------------------

#[cfg(target_os = "linux")]
use sys_epoll as sys;
#[cfg(not(target_os = "linux"))]
use sys_fallback as sys;

use sys::Poller;

/// Vendored epoll + eventfd poller (Linux). Raw syscall bindings —
/// the workspace carries no libc crate; these symbols come from the
/// libc the standard library already links.
#[cfg(target_os = "linux")]
mod sys_epoll {
    use super::WAKE_TOKEN;
    use chirp_proto::ready::Token;
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::sync::Mutex;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;
    const MAX_EVENTS: usize = 256;

    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: u32, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    /// One shard's readiness source: an epoll set for fd-backed
    /// streams, an eventfd wake channel, and a ready-list fed by
    /// in-process stream watchers.
    pub(crate) struct Poller {
        epfd: c_int,
        wakefd: c_int,
        mem: Mutex<Vec<(Token, bool, bool)>>,
    }

    impl Poller {
        pub(crate) const SUPPORTS_FDS: bool = true;

        pub(crate) fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            let wakefd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if wakefd < 0 {
                let e = io::Error::last_os_error();
                unsafe { close(epfd) };
                return Err(e);
            }
            let poller = Poller {
                epfd,
                wakefd,
                mem: Mutex::new(Vec::new()),
            };
            poller.ctl(EPOLL_CTL_ADD, wakefd, WAKE_TOKEN, false)?;
            Ok(poller)
        }

        fn ctl(&self, op: c_int, fd: c_int, token: Token, want_write: bool) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: EPOLLIN | EPOLLRDHUP | if want_write { EPOLLOUT } else { 0 },
                data: token as u64,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(())
            }
        }

        pub(crate) fn add_fd(&self, fd: i32, token: Token, want_write: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, want_write)
        }

        pub(crate) fn mod_fd(&self, fd: i32, token: Token, want_write: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, want_write)
        }

        pub(crate) fn del_fd(&self, fd: i32) {
            let mut ev = EpollEvent { events: 0, data: 0 };
            unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
        }

        pub(crate) fn push_mem(&self, token: Token, readable: bool, writable: bool) {
            self.mem.lock().unwrap().push((token, readable, writable));
        }

        pub(crate) fn wake(&self) {
            let one: u64 = 1;
            unsafe { write(self.wakefd, &one as *const u64 as *const c_void, 8) };
        }

        /// Collect ready tokens, blocking up to `timeout_ms` (0 polls).
        pub(crate) fn wait(&self, timeout_ms: i32, out: &mut Vec<(Token, bool, bool)>) {
            let timeout = if self.mem.lock().unwrap().is_empty() {
                timeout_ms
            } else {
                0
            };
            let mut events = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let n =
                unsafe { epoll_wait(self.epfd, events.as_mut_ptr(), MAX_EVENTS as c_int, timeout) };
            if n > 0 {
                for ev in events.iter().take(n as usize) {
                    let mask = { ev.events };
                    let token = { ev.data } as usize;
                    if token == WAKE_TOKEN {
                        let mut buf = 0u64;
                        unsafe { read(self.wakefd, &mut buf as *mut u64 as *mut c_void, 8) };
                        continue;
                    }
                    let readable = mask & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                    let writable = mask & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0;
                    out.push((token, readable, writable));
                }
            }
            out.append(&mut self.mem.lock().unwrap());
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.wakefd);
                close(self.epfd);
            }
        }
    }
}

/// Portable poller for hosts without epoll: watcher-backed streams
/// work exactly as on Linux; fd-backed streams fall back to dedicated
/// threads (the shard reports no fd support).
#[cfg(not(target_os = "linux"))]
mod sys_fallback {
    use chirp_proto::ready::Token;
    use std::io;
    use std::sync::{Condvar, Mutex};
    use std::time::Duration;

    struct State {
        mem: Vec<(Token, bool, bool)>,
        woken: bool,
    }

    pub(crate) struct Poller {
        state: Mutex<State>,
        cond: Condvar,
    }

    impl Poller {
        pub(crate) const SUPPORTS_FDS: bool = false;

        pub(crate) fn new() -> io::Result<Poller> {
            Ok(Poller {
                state: Mutex::new(State {
                    mem: Vec::new(),
                    woken: false,
                }),
                cond: Condvar::new(),
            })
        }

        pub(crate) fn add_fd(&self, _fd: i32, _token: Token, _w: bool) -> io::Result<()> {
            Err(io::ErrorKind::Unsupported.into())
        }

        pub(crate) fn mod_fd(&self, _fd: i32, _token: Token, _w: bool) -> io::Result<()> {
            Err(io::ErrorKind::Unsupported.into())
        }

        pub(crate) fn del_fd(&self, _fd: i32) {}

        pub(crate) fn push_mem(&self, token: Token, readable: bool, writable: bool) {
            self.state
                .lock()
                .unwrap()
                .mem
                .push((token, readable, writable));
        }

        pub(crate) fn wake(&self) {
            self.state.lock().unwrap().woken = true;
            self.cond.notify_all();
        }

        pub(crate) fn wait(&self, timeout_ms: i32, out: &mut Vec<(Token, bool, bool)>) {
            let mut st = self.state.lock().unwrap();
            if st.mem.is_empty() && !st.woken {
                let (next, _) = self
                    .cond
                    .wait_timeout(st, Duration::from_millis(timeout_ms.max(0) as u64))
                    .unwrap();
                st = next;
            }
            st.woken = false;
            out.append(&mut st.mem);
        }
    }
}

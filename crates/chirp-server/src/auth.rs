//! Authentication: turning a connection into a virtual-user subject.
//!
//! A client may attempt any number of methods in any order; the first
//! success fixes the connection's subject as `method:name` and further
//! attempts are refused (one set of credentials per session, which the
//! paper notes "simplifies troubleshooting and file ownership").
//!
//! Methods:
//!
//! * **hostname** — identity is the resolved name of the connecting
//!   host (pluggable resolver; reverse DNS in the original system).
//! * **unix** — a challenge/response through the local filesystem: the
//!   server asks the client to create a server-chosen file in a shared
//!   directory and infers the client's identity from the created
//!   file's owner uid. Proves the peer holds a local account.
//! * **ticket** — shared-secret credentials standing in for the GSI
//!   (`globus`) and Kerberos methods of the original system; the
//!   subject carries whatever free-form name (e.g. an X.509 DN) was
//!   registered with the secret. See DESIGN.md §4 for why this
//!   substitution preserves the property under test: free-form external
//!   identities flowing into ACL checks.

use std::net::IpAddr;
use std::path::PathBuf;

use chirp_proto::{ChirpError, ChirpResult};
use rand::RngCore;

use crate::config::ServerConfig;

/// Result of one authentication attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthOutcome {
    /// Authentication succeeded; the connection's subject is fixed.
    Subject(String),
    /// The `unix` method needs the client to create this file and
    /// retry with the same path as its credential.
    Challenge(String),
}

/// Per-connection authentication state machine.
#[derive(Debug)]
pub struct Authenticator {
    peer_ip: IpAddr,
    pending_unix: Option<PendingUnix>,
}

#[derive(Debug)]
struct PendingUnix {
    claimed_name: String,
    challenge_path: PathBuf,
}

impl Authenticator {
    /// A fresh authenticator for a connection from `peer_ip`.
    pub fn new(peer_ip: IpAddr) -> Authenticator {
        Authenticator {
            peer_ip,
            pending_unix: None,
        }
    }

    /// Process one `AUTH` request.
    pub fn attempt(
        &mut self,
        config: &ServerConfig,
        method: &str,
        name: &str,
        credential: &str,
    ) -> ChirpResult<AuthOutcome> {
        match method {
            "hostname" => {
                let resolved = (config.hostname_resolver)(self.peer_ip);
                Ok(AuthOutcome::Subject(format!("hostname:{resolved}")))
            }
            "unix" => self.attempt_unix(config, name, credential),
            _ => self.attempt_ticket(config, method, name, credential),
        }
    }

    fn attempt_unix(
        &mut self,
        config: &ServerConfig,
        name: &str,
        credential: &str,
    ) -> ChirpResult<AuthOutcome> {
        let dir = config
            .unix_challenge_dir
            .as_ref()
            .ok_or(ChirpError::NotSupported)?;
        if credential.is_empty() {
            // Phase one: issue a challenge.
            let mut rng = rand::thread_rng();
            let token = format!("chirp-challenge-{:016x}", rng.next_u64());
            let path = dir.join(&token);
            self.pending_unix = Some(PendingUnix {
                claimed_name: name.to_string(),
                challenge_path: path.clone(),
            });
            return Ok(AuthOutcome::Challenge(path.to_string_lossy().into_owned()));
        }
        // Phase two: verify the touched file.
        let pending = self.pending_unix.take().ok_or(ChirpError::AuthFailed)?;
        if pending.claimed_name != name || pending.challenge_path.to_string_lossy() != credential {
            return Err(ChirpError::AuthFailed);
        }
        let meta = std::fs::metadata(&pending.challenge_path).map_err(|_| ChirpError::AuthFailed);
        let _ = std::fs::remove_file(&pending.challenge_path);
        let meta = meta?;
        let uid = file_owner_uid(&meta);
        // Without root we cannot consult the password database, so the
        // virtual identity is the uid itself unless the claimed name is
        // the matching `uid<N>` form. Identity stays fully virtual
        // either way.
        let derived = format!("uid{uid}");
        if name != derived && !name.is_empty() {
            return Err(ChirpError::AuthFailed);
        }
        Ok(AuthOutcome::Subject(format!("unix:{derived}")))
    }

    fn attempt_ticket(
        &mut self,
        config: &ServerConfig,
        method: &str,
        name: &str,
        credential: &str,
    ) -> ChirpResult<AuthOutcome> {
        for t in &config.tickets {
            if t.method == method && constant_time_eq(t.secret.as_bytes(), credential.as_bytes()) {
                if !name.is_empty() && name != t.subject_name {
                    continue;
                }
                return Ok(AuthOutcome::Subject(format!(
                    "{}:{}",
                    t.method, t.subject_name
                )));
            }
        }
        Err(ChirpError::AuthFailed)
    }
}

fn file_owner_uid(meta: &std::fs::Metadata) -> u32 {
    #[cfg(unix)]
    {
        use std::os::unix::fs::MetadataExt;
        meta.uid()
    }
    #[cfg(not(unix))]
    {
        let _ = meta;
        0
    }
}

/// Compare secrets without early exit, so a listener on the loopback
/// cannot time-probe ticket bytes.
fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (&x, &y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_proto::testutil::TempDir;

    fn config() -> ServerConfig {
        ServerConfig::localhost("/tmp/unused", "owner")
            .with_ticket("globus", "/O=NotreDame/CN=alice", "s3cret")
            .with_ticket("kerberos", "bob@ND.EDU", "hunter2")
    }

    fn auth() -> Authenticator {
        Authenticator::new("127.0.0.1".parse().unwrap())
    }

    #[test]
    fn hostname_uses_resolver_not_claim() {
        let out = auth()
            .attempt(&config(), "hostname", "spoofed.example.com", "")
            .unwrap();
        assert_eq!(out, AuthOutcome::Subject("hostname:localhost".into()));
    }

    #[test]
    fn ticket_grants_registered_subject() {
        let out = auth().attempt(&config(), "globus", "", "s3cret").unwrap();
        assert_eq!(
            out,
            AuthOutcome::Subject("globus:/O=NotreDame/CN=alice".into())
        );
    }

    #[test]
    fn ticket_rejects_wrong_secret_and_method() {
        assert_eq!(
            auth()
                .attempt(&config(), "globus", "", "wrong")
                .unwrap_err(),
            ChirpError::AuthFailed
        );
        assert_eq!(
            auth()
                .attempt(&config(), "kerberos", "", "s3cret")
                .unwrap_err(),
            ChirpError::AuthFailed
        );
    }

    #[test]
    fn ticket_rejects_mismatched_claimed_name() {
        assert!(auth()
            .attempt(&config(), "globus", "/O=Elsewhere/CN=eve", "s3cret")
            .is_err());
        // Matching claim is fine.
        assert!(auth()
            .attempt(&config(), "globus", "/O=NotreDame/CN=alice", "s3cret")
            .is_ok());
    }

    #[test]
    fn unix_requires_configured_dir() {
        assert_eq!(
            auth().attempt(&config(), "unix", "uid0", "").unwrap_err(),
            ChirpError::NotSupported
        );
    }

    #[test]
    fn unix_challenge_round_trip() {
        let dir = TempDir::new();
        let mut cfg = config();
        cfg.unix_challenge_dir = Some(dir.path().to_path_buf());
        let mut a = auth();
        let me = format!("uid{}", current_uid());
        let challenge = match a.attempt(&cfg, "unix", &me, "").unwrap() {
            AuthOutcome::Challenge(p) => p,
            other => panic!("expected challenge, got {other:?}"),
        };
        std::fs::write(&challenge, b"").unwrap();
        let out = a.attempt(&cfg, "unix", &me, &challenge).unwrap();
        assert_eq!(out, AuthOutcome::Subject(format!("unix:{me}")));
        // Challenge file is consumed.
        assert!(!std::path::Path::new(&challenge).exists());
    }

    #[test]
    fn unix_fails_without_touch() {
        let dir = TempDir::new();
        let mut cfg = config();
        cfg.unix_challenge_dir = Some(dir.path().to_path_buf());
        let mut a = auth();
        let me = format!("uid{}", current_uid());
        let challenge = match a.attempt(&cfg, "unix", &me, "").unwrap() {
            AuthOutcome::Challenge(p) => p,
            other => panic!("expected challenge, got {other:?}"),
        };
        assert_eq!(
            a.attempt(&cfg, "unix", &me, &challenge).unwrap_err(),
            ChirpError::AuthFailed
        );
    }

    #[test]
    fn unix_rejects_identity_mismatch() {
        let dir = TempDir::new();
        let mut cfg = config();
        cfg.unix_challenge_dir = Some(dir.path().to_path_buf());
        let mut a = auth();
        let claim = "uid999999";
        let challenge = match a.attempt(&cfg, "unix", claim, "").unwrap() {
            AuthOutcome::Challenge(p) => p,
            other => panic!("expected challenge, got {other:?}"),
        };
        std::fs::write(&challenge, b"").unwrap();
        if current_uid() != 999_999 {
            assert!(a.attempt(&cfg, "unix", claim, &challenge).is_err());
        }
    }

    fn current_uid() -> u32 {
        let dir = TempDir::new();
        let probe = dir.path().join("probe");
        std::fs::write(&probe, b"").unwrap();
        file_owner_uid(&std::fs::metadata(&probe).unwrap())
    }

    #[test]
    fn constant_time_eq_basics() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"ab"));
        assert!(constant_time_eq(b"", b""));
    }
}

//! Authentication: turning a connection into a virtual-user subject.
//!
//! A client may attempt any number of methods in any order; the first
//! success fixes the connection's subject as `method:name` and further
//! attempts are refused (one set of credentials per session, which the
//! paper notes "simplifies troubleshooting and file ownership").
//!
//! Methods:
//!
//! * **hostname** — identity is the resolved name of the connecting
//!   host (pluggable resolver; reverse DNS in the original system).
//! * **unix** — a challenge/response through the local filesystem: the
//!   server asks the client to create a server-chosen file in a shared
//!   directory and infers the client's identity from the created
//!   file's owner uid. Proves the peer holds a local account.
//! * **key** (any other method label, e.g. `globus`, `kerberos`) — a
//!   cryptographic challenge/response standing in for the GSI and
//!   Kerberos methods of the original system. The server issues a
//!   random nonce; the client answers with `<key_id>:<hex_mac>` where
//!   the MAC is HMAC-SHA256 of the domain-separated handshake
//!   transcript under a key registered in the server's
//!   [`KeyRing`](crate::config::KeyRing). The key never crosses the
//!   wire, each nonce verifies exactly once (replays fail), and
//!   rotating a ring entry invalidates the old key immediately. The
//!   subject carries whatever free-form name (e.g. an X.509 DN) was
//!   registered with the key — see DESIGN.md §4 for why this
//!   substitution preserves the property under test: free-form
//!   external identities flowing into ACL checks.

use std::net::IpAddr;
use std::path::{Component, Path, PathBuf};

use chirp_proto::crypto::{auth_mac, constant_time_eq, hex};
use chirp_proto::{ChirpError, ChirpResult};
use rand::RngCore;

use crate::config::ServerConfig;

/// Result of one authentication attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthOutcome {
    /// Authentication succeeded; the connection's subject is fixed.
    Subject(String),
    /// The method needs another round: for `unix`, the client must
    /// create this file and retry with the path as its credential;
    /// for key methods, this is the nonce the client must MAC.
    Challenge(String),
}

/// Per-connection authentication state machine.
#[derive(Debug)]
pub struct Authenticator {
    peer_ip: IpAddr,
    pending_unix: Option<PendingUnix>,
    pending_key: Option<PendingKey>,
    fixed: Option<String>,
}

#[derive(Debug)]
struct PendingUnix {
    claimed_name: String,
    challenge_path: PathBuf,
}

#[derive(Debug)]
struct PendingKey {
    method: String,
    claimed_name: String,
    nonce_hex: String,
}

impl Authenticator {
    /// A fresh authenticator for a connection from `peer_ip`.
    pub fn new(peer_ip: IpAddr) -> Authenticator {
        Authenticator {
            peer_ip,
            pending_unix: None,
            pending_key: None,
            fixed: None,
        }
    }

    /// The subject fixed by a successful attempt, if any.
    pub fn subject(&self) -> Option<&str> {
        self.fixed.as_deref()
    }

    /// Process one `AUTH` request.
    ///
    /// Once a method has succeeded the subject is fixed: any further
    /// attempt — even with valid credentials for another identity —
    /// is refused as an invalid request.
    pub fn attempt(
        &mut self,
        config: &ServerConfig,
        method: &str,
        name: &str,
        credential: &str,
    ) -> ChirpResult<AuthOutcome> {
        if self.fixed.is_some() {
            return Err(ChirpError::InvalidRequest);
        }
        let outcome = match method {
            "hostname" => {
                let resolved = (config.hostname_resolver)(self.peer_ip);
                Ok(AuthOutcome::Subject(format!("hostname:{resolved}")))
            }
            "unix" => self.attempt_unix(config, name, credential),
            _ => self.attempt_key(config, method, name, credential),
        }?;
        if let AuthOutcome::Subject(subject) = &outcome {
            self.fixed = Some(subject.clone());
        }
        Ok(outcome)
    }

    fn attempt_unix(
        &mut self,
        config: &ServerConfig,
        name: &str,
        credential: &str,
    ) -> ChirpResult<AuthOutcome> {
        let dir = config
            .unix_challenge_dir
            .as_ref()
            .ok_or(ChirpError::NotSupported)?;
        if credential.is_empty() {
            // Phase one: issue a challenge.
            let mut rng = rand::thread_rng();
            let token = format!("chirp-challenge-{:016x}", rng.next_u64());
            let path = dir.join(&token);
            self.pending_unix = Some(PendingUnix {
                claimed_name: name.to_string(),
                challenge_path: path.clone(),
            });
            return Ok(AuthOutcome::Challenge(path.to_string_lossy().into_owned()));
        }
        // Phase two: verify the touched file. The pending challenge is
        // consumed up front so a failed round cannot be retried, and
        // the presented path must be free of `..` components — the
        // server only ever issues single-filename challenges inside
        // the configured directory, so a traversing path is forged.
        let pending = self.pending_unix.take().ok_or(ChirpError::AuthFailed)?;
        if Path::new(credential)
            .components()
            .any(|c| matches!(c, Component::ParentDir))
        {
            return Err(ChirpError::AuthFailed);
        }
        if pending.claimed_name != name || pending.challenge_path.to_string_lossy() != credential {
            return Err(ChirpError::AuthFailed);
        }
        let meta = std::fs::metadata(&pending.challenge_path).map_err(|_| ChirpError::AuthFailed);
        let _ = std::fs::remove_file(&pending.challenge_path);
        let meta = meta?;
        let uid = file_owner_uid(&meta);
        // Without root we cannot consult the password database, so the
        // virtual identity is the uid itself unless the claimed name is
        // the matching `uid<N>` form. Identity stays fully virtual
        // either way.
        let derived = format!("uid{uid}");
        if name != derived && !name.is_empty() {
            return Err(ChirpError::AuthFailed);
        }
        Ok(AuthOutcome::Subject(format!("unix:{derived}")))
    }

    /// Challenge–response over a registered key. Phase one (empty
    /// credential) issues a random nonce; phase two expects
    /// `<key_id>:<hex_mac>` where the MAC covers the handshake
    /// transcript (method, claimed name, key id, nonce) under the
    /// ring key whose fingerprint is `key_id`.
    fn attempt_key(
        &mut self,
        config: &ServerConfig,
        method: &str,
        name: &str,
        credential: &str,
    ) -> ChirpResult<AuthOutcome> {
        if credential.is_empty() {
            // Phase one: issue a fresh nonce. Issuing a new challenge
            // discards any prior pending one, so a client cannot bank
            // nonces.
            let mut rng = rand::thread_rng();
            let mut nonce = [0u8; 16];
            rng.fill_bytes(&mut nonce);
            let nonce_hex = hex(&nonce);
            self.pending_key = Some(PendingKey {
                method: method.to_string(),
                claimed_name: name.to_string(),
                nonce_hex: nonce_hex.clone(),
            });
            return Ok(AuthOutcome::Challenge(nonce_hex));
        }
        // Phase two. The pending nonce is consumed before any
        // verification: a replayed response — even a previously valid
        // one — finds no challenge outstanding and fails.
        let pending = self.pending_key.take().ok_or(ChirpError::AuthFailed)?;
        if pending.method != method || pending.claimed_name != name {
            return Err(ChirpError::AuthFailed);
        }
        let (key_id, mac_hex) = credential.split_once(':').ok_or(ChirpError::AuthFailed)?;
        let cred = config
            .keys
            .lookup(method, key_id)
            .ok_or(ChirpError::AuthFailed)?;
        if !name.is_empty() && name != cred.subject_name {
            return Err(ChirpError::AuthFailed);
        }
        let expected = auth_mac(&cred.key, method, name, key_id, &pending.nonce_hex);
        if !constant_time_eq(expected.as_bytes(), mac_hex.as_bytes()) {
            return Err(ChirpError::AuthFailed);
        }
        Ok(AuthOutcome::Subject(format!(
            "{}:{}",
            cred.method, cred.subject_name
        )))
    }
}

fn file_owner_uid(meta: &std::fs::Metadata) -> u32 {
    #[cfg(unix)]
    {
        use std::os::unix::fs::MetadataExt;
        meta.uid()
    }
    #[cfg(not(unix))]
    {
        let _ = meta;
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_proto::crypto::key_fingerprint;
    use chirp_proto::testutil::TempDir;

    const ALICE_KEY: &[u8] = b"alice-key-material-0123456789abcdef";
    const BOB_KEY: &[u8] = b"bob-key-material-fedcba9876543210";

    fn config() -> ServerConfig {
        ServerConfig::localhost("/tmp/unused", "owner")
            .with_key("globus", "/O=NotreDame/CN=alice", ALICE_KEY)
            .with_key("kerberos", "bob@ND.EDU", BOB_KEY)
    }

    fn auth() -> Authenticator {
        Authenticator::new("127.0.0.1".parse().unwrap())
    }

    /// Run the two-round key handshake with `key`, returning the
    /// outcome of the response round.
    fn handshake(
        a: &mut Authenticator,
        cfg: &ServerConfig,
        method: &str,
        name: &str,
        key: &[u8],
    ) -> ChirpResult<AuthOutcome> {
        let nonce = match a.attempt(cfg, method, name, "")? {
            AuthOutcome::Challenge(n) => n,
            other => panic!("expected challenge, got {other:?}"),
        };
        let key_id = key_fingerprint(key);
        let mac = auth_mac(key, method, name, &key_id, &nonce);
        a.attempt(cfg, method, name, &format!("{key_id}:{mac}"))
    }

    #[test]
    fn hostname_uses_resolver_not_claim() {
        let out = auth()
            .attempt(&config(), "hostname", "spoofed.example.com", "")
            .unwrap();
        assert_eq!(out, AuthOutcome::Subject("hostname:localhost".into()));
    }

    #[test]
    fn key_handshake_grants_registered_subject() {
        let cfg = config();
        let mut a = auth();
        let out = handshake(&mut a, &cfg, "globus", "", ALICE_KEY).unwrap();
        assert_eq!(
            out,
            AuthOutcome::Subject("globus:/O=NotreDame/CN=alice".into())
        );
        assert_eq!(a.subject(), Some("globus:/O=NotreDame/CN=alice"));
    }

    #[test]
    fn key_handshake_rejects_wrong_key_and_method() {
        let cfg = config();
        // MAC under a key the ring does not hold for this method.
        assert_eq!(
            handshake(&mut auth(), &cfg, "globus", "", BOB_KEY).unwrap_err(),
            ChirpError::AuthFailed
        );
        // Right key, wrong method label: transcript and lookup differ.
        assert_eq!(
            handshake(&mut auth(), &cfg, "kerberos", "", ALICE_KEY).unwrap_err(),
            ChirpError::AuthFailed
        );
    }

    #[test]
    fn key_handshake_rejects_forged_mac() {
        let cfg = config();
        let mut a = auth();
        let nonce = match a.attempt(&cfg, "globus", "", "").unwrap() {
            AuthOutcome::Challenge(n) => n,
            other => panic!("expected challenge, got {other:?}"),
        };
        let key_id = key_fingerprint(ALICE_KEY);
        // Right key id, attacker-guessed MAC.
        let forged = auth_mac(b"not-the-key", "globus", "", &key_id, &nonce);
        assert_eq!(
            a.attempt(&cfg, "globus", "", &format!("{key_id}:{forged}"))
                .unwrap_err(),
            ChirpError::AuthFailed
        );
    }

    #[test]
    fn key_handshake_rejects_replayed_nonce() {
        let cfg = config();
        let mut a = auth();
        let nonce = match a.attempt(&cfg, "globus", "", "").unwrap() {
            AuthOutcome::Challenge(n) => n,
            other => panic!("expected challenge, got {other:?}"),
        };
        let key_id = key_fingerprint(ALICE_KEY);
        let mac = auth_mac(ALICE_KEY, "globus", "", &key_id, &nonce);
        let credential = format!("{key_id}:{mac}");
        assert!(a.attempt(&cfg, "globus", "", &credential).is_ok());

        // Replaying the captured (valid!) response on a fresh
        // connection fails: no challenge is outstanding there.
        let mut fresh = auth();
        assert_eq!(
            fresh.attempt(&cfg, "globus", "", &credential).unwrap_err(),
            ChirpError::AuthFailed
        );

        // And a failed response consumes the nonce: retrying the same
        // response after a failure also finds nothing pending.
        let mut b = auth();
        let nonce_b = match b.attempt(&cfg, "globus", "", "").unwrap() {
            AuthOutcome::Challenge(n) => n,
            other => panic!("expected challenge, got {other:?}"),
        };
        assert!(b.attempt(&cfg, "globus", "", "garbage:mac").is_err());
        let mac_b = auth_mac(ALICE_KEY, "globus", "", &key_id, &nonce_b);
        assert_eq!(
            b.attempt(&cfg, "globus", "", &format!("{key_id}:{mac_b}"))
                .unwrap_err(),
            ChirpError::AuthFailed
        );
    }

    #[test]
    fn key_handshake_rejects_rotated_out_key() {
        let cfg = config();
        let mut a = auth();
        let nonce = match a.attempt(&cfg, "globus", "", "").unwrap() {
            AuthOutcome::Challenge(n) => n,
            other => panic!("expected challenge, got {other:?}"),
        };
        // Key rotates while the handshake is in flight.
        assert!(cfg
            .keys
            .rotate("globus", "/O=NotreDame/CN=alice", b"new-key"));
        let old_id = key_fingerprint(ALICE_KEY);
        let mac = auth_mac(ALICE_KEY, "globus", "", &old_id, &nonce);
        assert_eq!(
            a.attempt(&cfg, "globus", "", &format!("{old_id}:{mac}"))
                .unwrap_err(),
            ChirpError::AuthFailed
        );
        // The new key verifies.
        let mut b = auth();
        assert!(handshake(&mut b, &cfg, "globus", "", b"new-key").is_ok());
    }

    #[test]
    fn key_handshake_rejects_mismatched_claimed_name() {
        let cfg = config();
        assert!(handshake(
            &mut auth(),
            &cfg,
            "globus",
            "/O=Elsewhere/CN=eve",
            ALICE_KEY
        )
        .is_err());
        // Matching claim is fine.
        assert!(handshake(
            &mut auth(),
            &cfg,
            "globus",
            "/O=NotreDame/CN=alice",
            ALICE_KEY
        )
        .is_ok());
    }

    #[test]
    fn key_response_must_match_challenged_name_and_method() {
        let cfg = config();
        let mut a = auth();
        let nonce = match a.attempt(&cfg, "globus", "", "").unwrap() {
            AuthOutcome::Challenge(n) => n,
            other => panic!("expected challenge, got {other:?}"),
        };
        let key_id = key_fingerprint(ALICE_KEY);
        // MAC is honest, but the response names a different identity
        // than the challenge round did.
        let mac = auth_mac(
            ALICE_KEY,
            "globus",
            "/O=NotreDame/CN=alice",
            &key_id,
            &nonce,
        );
        assert_eq!(
            a.attempt(
                &cfg,
                "globus",
                "/O=NotreDame/CN=alice",
                &format!("{key_id}:{mac}")
            )
            .unwrap_err(),
            ChirpError::AuthFailed
        );
    }

    #[test]
    fn second_method_after_success_is_refused() {
        let cfg = config();
        let mut a = auth();
        assert!(a.attempt(&cfg, "hostname", "", "").is_ok());
        // Even a fully valid handshake for another identity is refused
        // once the subject is fixed — including its challenge round.
        assert_eq!(
            a.attempt(&cfg, "globus", "", "").unwrap_err(),
            ChirpError::InvalidRequest
        );
        assert_eq!(
            a.attempt(&cfg, "hostname", "", "").unwrap_err(),
            ChirpError::InvalidRequest
        );
        assert_eq!(a.subject(), Some("hostname:localhost"));
    }

    #[test]
    fn failed_attempts_do_not_fix_subject() {
        let cfg = config();
        let mut a = auth();
        assert!(handshake(&mut a, &cfg, "globus", "", BOB_KEY).is_err());
        assert_eq!(a.subject(), None);
        // Can still succeed afterwards.
        assert!(handshake(&mut a, &cfg, "globus", "", ALICE_KEY).is_ok());
    }

    #[test]
    fn unix_requires_configured_dir() {
        assert_eq!(
            auth().attempt(&config(), "unix", "uid0", "").unwrap_err(),
            ChirpError::NotSupported
        );
    }

    #[test]
    fn unix_challenge_round_trip() {
        let dir = TempDir::new();
        let mut cfg = config();
        cfg.unix_challenge_dir = Some(dir.path().to_path_buf());
        let mut a = auth();
        let me = format!("uid{}", current_uid());
        let challenge = match a.attempt(&cfg, "unix", &me, "").unwrap() {
            AuthOutcome::Challenge(p) => p,
            other => panic!("expected challenge, got {other:?}"),
        };
        std::fs::write(&challenge, b"").unwrap();
        let out = a.attempt(&cfg, "unix", &me, &challenge).unwrap();
        assert_eq!(out, AuthOutcome::Subject(format!("unix:{me}")));
        // Challenge file is consumed.
        assert!(!std::path::Path::new(&challenge).exists());
    }

    #[test]
    fn unix_fails_without_touch() {
        let dir = TempDir::new();
        let mut cfg = config();
        cfg.unix_challenge_dir = Some(dir.path().to_path_buf());
        let mut a = auth();
        let me = format!("uid{}", current_uid());
        let challenge = match a.attempt(&cfg, "unix", &me, "").unwrap() {
            AuthOutcome::Challenge(p) => p,
            other => panic!("expected challenge, got {other:?}"),
        };
        assert_eq!(
            a.attempt(&cfg, "unix", &me, &challenge).unwrap_err(),
            ChirpError::AuthFailed
        );
    }

    #[test]
    fn unix_rejects_traversing_challenge_path() {
        let dir = TempDir::new();
        let mut cfg = config();
        cfg.unix_challenge_dir = Some(dir.path().to_path_buf());
        let mut a = auth();
        let me = format!("uid{}", current_uid());
        let challenge = match a.attempt(&cfg, "unix", &me, "").unwrap() {
            AuthOutcome::Challenge(p) => p,
            other => panic!("expected challenge, got {other:?}"),
        };
        // A `..`-bearing path that still *resolves* to the issued
        // challenge file must be rejected before any filesystem
        // access: the server compares literally and refuses parent
        // components outright.
        let file = Path::new(&challenge).file_name().unwrap().to_str().unwrap();
        let sneaky = format!("{}/subdir/../{}", dir.path().display(), file);
        std::fs::write(&challenge, b"").unwrap();
        assert_eq!(
            a.attempt(&cfg, "unix", &me, &sneaky).unwrap_err(),
            ChirpError::AuthFailed
        );
        // An absolute traversal out of the challenge dir fails too
        // (fresh round: the failed attempt consumed the last one).
        let challenge2 = match a.attempt(&cfg, "unix", &me, "").unwrap() {
            AuthOutcome::Challenge(p) => p,
            other => panic!("expected challenge, got {other:?}"),
        };
        let _ = challenge2;
        assert_eq!(
            a.attempt(&cfg, "unix", &me, "/etc/../etc/passwd")
                .unwrap_err(),
            ChirpError::AuthFailed
        );
    }

    #[test]
    fn unix_rejects_identity_mismatch() {
        let dir = TempDir::new();
        let mut cfg = config();
        cfg.unix_challenge_dir = Some(dir.path().to_path_buf());
        let mut a = auth();
        let claim = "uid999999";
        let challenge = match a.attempt(&cfg, "unix", claim, "").unwrap() {
            AuthOutcome::Challenge(p) => p,
            other => panic!("expected challenge, got {other:?}"),
        };
        std::fs::write(&challenge, b"").unwrap();
        if current_uid() != 999_999 {
            assert!(a.attempt(&cfg, "unix", claim, &challenge).is_err());
        }
    }

    fn current_uid() -> u32 {
        let dir = TempDir::new();
        let probe = dir.path().join("probe");
        std::fs::write(&probe, b"").unwrap();
        file_owner_uid(&std::fs::metadata(&probe).unwrap())
    }
}

//! Periodic catalog reporting.
//!
//! Each file server describes itself to one or more catalogs over UDP:
//! owner, address, capacity, free space, top-level ACL, and activity
//! counters. Catalogs expire servers that stop reporting, so a report
//! is sent immediately at startup and then on a fixed interval. All
//! catalog data is necessarily stale; abstractions must re-verify
//! anything they learn from it.

use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use chirp_proto::escape::escape;

use crate::acl::Acl;
use crate::handlers::disk_usage;
use crate::server::Shared;

/// Compose one report packet in the `key value` line format the
/// catalog ingests.
pub fn compose_report(shared: &Shared, addr: SocketAddr) -> String {
    let name = shared
        .config
        .server_name
        .clone()
        .unwrap_or_else(|| addr.to_string());
    let used = disk_usage(shared.jail.root());
    let total = shared.config.capacity_bytes;
    let topacl = Acl::load_effective(shared.jail.root(), shared.jail.root())
        .map(|a| a.render())
        .unwrap_or_default();
    let stats = shared.stats.snapshot();
    let mut out = String::new();
    out.push_str("type chirp\n");
    out.push_str(&format!("name {}\n", escape(name.as_bytes())));
    out.push_str(&format!(
        "owner {}\n",
        escape(shared.config.owner.as_bytes())
    ));
    out.push_str(&format!("address {addr}\n"));
    out.push_str(&format!("version {}\n", chirp_proto::PROTOCOL_VERSION));
    out.push_str(&format!("total {total}\n"));
    out.push_str(&format!("free {}\n", total.saturating_sub(used)));
    out.push_str(&format!("topacl {}\n", escape(topacl.as_bytes())));
    out.push_str(&format!("connections {}\n", stats.connections));
    out.push_str(&format!("requests {}\n", stats.requests));
    // Fold the telemetry registry in under `m.` keys: per-op counts,
    // error/denial counters, and latency histograms, all as single
    // space-free tokens so the report stays a flat `key value` packet
    // that old catalogs pass through as unknown keys.
    for (name, value) in shared.telemetry.registry().snapshot().metrics {
        out.push_str(&format!("m.{name} {}\n", value.encode()));
    }
    out
}

/// Send one report to every configured catalog. Best-effort: a dead
/// catalog must never take the file server down with it.
pub fn send_report(shared: &Shared, addr: SocketAddr) {
    let Ok(socket) = UdpSocket::bind("0.0.0.0:0") else {
        return;
    };
    let packet = compose_report(shared, addr);
    for catalog in &shared.config.catalogs {
        let _ = socket.send_to(packet.as_bytes(), catalog);
    }
}

/// Body of the reporting thread: report immediately, then on the
/// configured interval, polling the shutdown flag often enough to exit
/// promptly.
pub fn report_loop(shared: Arc<Shared>, addr: SocketAddr) {
    send_report(&shared, addr);
    let tick = Duration::from_millis(25);
    let mut since_report = Duration::ZERO;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(tick);
        since_report += tick;
        if since_report >= shared.config.report_interval {
            send_report(&shared, addr);
            since_report = Duration::ZERO;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use chirp_proto::testutil::TempDir;

    fn shared(root: &std::path::Path) -> Arc<Shared> {
        Shared::new(ServerConfig::localhost(root, "alice")).unwrap()
    }

    #[test]
    fn report_contains_vitals() {
        let dir = TempDir::new();
        std::fs::write(dir.path().join("data"), vec![0u8; 1000]).unwrap();
        let sh = shared(dir.path());
        let report = compose_report(&sh, "127.0.0.1:9094".parse().unwrap());
        assert!(report.contains("type chirp"));
        assert!(report.contains("owner alice"));
        assert!(report.contains("address 127.0.0.1:9094"));
        let free_line = report
            .lines()
            .find(|l| l.starts_with("free "))
            .expect("free line");
        let free: u64 = free_line[5..].parse().unwrap();
        assert_eq!(free, sh.config.capacity_bytes - 1000);
    }

    #[test]
    fn report_is_one_udp_packet_sized() {
        let dir = TempDir::new();
        let sh = shared(dir.path());
        let report = compose_report(&sh, "127.0.0.1:9094".parse().unwrap());
        assert!(report.len() < 8192, "report must fit a UDP datagram");
    }
}

//! The NFS client, exposing the common [`FileSystem`] trait.

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use chirp_proto::stat::FileType;
use chirp_proto::wire::{self, StatusLine};
use chirp_proto::{OpenFlags, StatBuf};
use parking_lot::Mutex;
use tss_core::fs::{normalize_path, FileHandle, FileSystem};

use crate::proto::{Fh, NfsRequest, ROOT_FH};
use crate::MAX_TRANSFER;

struct Conn {
    reader: std::io::BufReader<TcpStream>,
    writer: std::io::BufWriter<TcpStream>,
}

impl Conn {
    fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<Conn> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Conn {
            reader: std::io::BufReader::with_capacity(64 * 1024, stream.try_clone()?),
            writer: std::io::BufWriter::with_capacity(64 * 1024, stream),
        })
    }

    /// One strict request/response round trip.
    fn rpc(&mut self, req: &NfsRequest, payload: Option<&[u8]>) -> io::Result<StatusLine> {
        use std::io::Write;
        self.writer.write_all(req.encode().as_bytes())?;
        if let Some(p) = payload {
            self.writer.write_all(p)?;
        }
        self.writer.flush()?;
        wire::read_status(&mut self.reader).map_err(io::Error::from)
    }

    fn read_body(&mut self, len: u64) -> io::Result<Vec<u8>> {
        wire::read_payload(&mut self.reader, len).map_err(io::Error::from)
    }
}

/// An NFS-shaped remote filesystem client.
///
/// One TCP connection, one outstanding RPC — the protocol property
/// that caps NFS bandwidth in Figure 5.
pub struct NfsFs {
    conn: Arc<Mutex<Conn>>,
}

impl NfsFs {
    /// Connect to an [`crate::NfsServer`].
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<NfsFs> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::from(io::ErrorKind::InvalidInput))?;
        Ok(NfsFs {
            conn: Arc::new(Mutex::new(Conn::connect(addr, timeout)?)),
        })
    }

    /// Resolve a path one LOOKUP per component, the NFS way. Returns
    /// the final handle and its attribute words.
    fn lookup_path(&self, path: &str) -> io::Result<(Fh, Vec<String>)> {
        let norm = normalize_path(path);
        let mut conn = self.conn.lock();
        let mut fh = ROOT_FH;
        let mut last_words: Vec<String> = Vec::new();
        for comp in norm.split('/').filter(|c| !c.is_empty()) {
            let st = conn.rpc(
                &NfsRequest::Lookup {
                    dir: fh,
                    name: comp.to_string(),
                },
                None,
            )?;
            fh = st
                .words
                .first()
                .and_then(|w| w.parse().ok())
                .ok_or_else(|| io::Error::from(io::ErrorKind::InvalidData))?;
            last_words = st.words[1..].to_vec();
        }
        if norm == "/" {
            let st = conn.rpc(&NfsRequest::Getattr { fh: ROOT_FH }, None)?;
            last_words = st.words;
        }
        Ok((fh, last_words))
    }

    /// Resolve the parent directory of `path`, returning `(dir_fh,
    /// leaf_name)`.
    fn lookup_parent(&self, path: &str) -> io::Result<(Fh, String)> {
        let (parent, leaf) = tss_core::fs::split_parent(path)
            .ok_or_else(|| io::Error::from(io::ErrorKind::InvalidInput))?;
        let (fh, _) = self.lookup_path(&parent)?;
        Ok((fh, leaf))
    }
}

fn words_to_stat(words: &[String]) -> io::Result<StatBuf> {
    let bad = || io::Error::from(io::ErrorKind::InvalidData);
    if words.len() < 4 {
        return Err(bad());
    }
    let kind = match words[0].as_str() {
        "f" => FileType::File,
        "d" => FileType::Dir,
        _ => FileType::Other,
    };
    Ok(StatBuf {
        device: 0,
        inode: words[3].parse().map_err(|_| bad())?,
        file_type: kind,
        mode: 0o644,
        nlink: 1,
        size: words[1].parse().map_err(|_| bad())?,
        mtime: words[2].parse().map_err(|_| bad())?,
    })
}

struct NfsHandle {
    conn: Arc<Mutex<Conn>>,
    fh: Fh,
}

impl FileHandle for NfsHandle {
    fn pread(&mut self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        // Serial 4 KiB RPCs: the bandwidth-limiting chain of Figure 5.
        let mut filled = 0;
        while filled < buf.len() {
            let want = (buf.len() - filled).min(MAX_TRANSFER) as u32;
            let mut conn = self.conn.lock();
            let st = conn.rpc(
                &NfsRequest::Read {
                    fh: self.fh,
                    offset: offset + filled as u64,
                    count: want,
                },
                None,
            )?;
            let data = conn.read_body(st.value as u64)?;
            drop(conn);
            if data.is_empty() {
                break;
            }
            buf[filled..filled + data.len()].copy_from_slice(&data);
            filled += data.len();
        }
        Ok(filled)
    }

    fn pwrite(&mut self, buf: &[u8], offset: u64) -> io::Result<usize> {
        let mut written = 0;
        while written < buf.len() {
            let chunk = &buf[written..(written + MAX_TRANSFER).min(buf.len())];
            let mut conn = self.conn.lock();
            conn.rpc(
                &NfsRequest::Write {
                    fh: self.fh,
                    offset: offset + written as u64,
                    count: chunk.len() as u32,
                },
                Some(chunk),
            )?;
            written += chunk.len();
        }
        Ok(buf.len())
    }

    fn fstat(&mut self) -> io::Result<StatBuf> {
        let mut conn = self.conn.lock();
        let st = conn.rpc(&NfsRequest::Getattr { fh: self.fh }, None)?;
        words_to_stat(&st.words)
    }

    fn fsync(&mut self) -> io::Result<()> {
        // NFSv2 writes are synchronous at the server; nothing to do.
        Ok(())
    }

    fn ftruncate(&mut self, size: u64) -> io::Result<()> {
        let mut conn = self.conn.lock();
        conn.rpc(&NfsRequest::Setattr { fh: self.fh, size }, None)?;
        Ok(())
    }
}

impl FileSystem for NfsFs {
    fn open(&self, path: &str, flags: OpenFlags, _mode: u32) -> io::Result<Box<dyn FileHandle>> {
        if flags.contains(OpenFlags::CREATE) {
            let (dir, leaf) = self.lookup_parent(path)?;
            let mut conn = self.conn.lock();
            let res = conn.rpc(
                &NfsRequest::Create {
                    dir,
                    name: leaf,
                    exclusive: flags.contains(OpenFlags::EXCLUSIVE),
                },
                None,
            );
            drop(conn);
            match res {
                Ok(st) => {
                    let fh = st
                        .words
                        .first()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| io::Error::from(io::ErrorKind::InvalidData))?;
                    return Ok(Box::new(NfsHandle {
                        conn: self.conn.clone(),
                        fh,
                    }));
                }
                Err(e) => return Err(e),
            }
        }
        let (fh, words) = self.lookup_path(path)?;
        let stat = words_to_stat(&words)?;
        if stat.is_dir() {
            return Err(io::ErrorKind::IsADirectory.into());
        }
        if flags.contains(OpenFlags::TRUNCATE) {
            let mut conn = self.conn.lock();
            conn.rpc(&NfsRequest::Setattr { fh, size: 0 }, None)?;
        }
        Ok(Box::new(NfsHandle {
            conn: self.conn.clone(),
            fh,
        }))
    }

    fn stat(&self, path: &str) -> io::Result<StatBuf> {
        let (_fh, words) = self.lookup_path(path)?;
        words_to_stat(&words)
    }

    fn unlink(&self, path: &str) -> io::Result<()> {
        let (dir, leaf) = self.lookup_parent(path)?;
        let mut conn = self.conn.lock();
        conn.rpc(&NfsRequest::Remove { dir, name: leaf }, None)?;
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let (from_dir, from_name) = self.lookup_parent(from)?;
        let (to_dir, to_name) = self.lookup_parent(to)?;
        let mut conn = self.conn.lock();
        conn.rpc(
            &NfsRequest::Rename {
                from_dir,
                from_name,
                to_dir,
                to_name,
            },
            None,
        )?;
        Ok(())
    }

    fn mkdir(&self, path: &str, _mode: u32) -> io::Result<()> {
        let (dir, leaf) = self.lookup_parent(path)?;
        let mut conn = self.conn.lock();
        conn.rpc(&NfsRequest::Mkdir { dir, name: leaf }, None)?;
        Ok(())
    }

    fn rmdir(&self, path: &str) -> io::Result<()> {
        let (dir, leaf) = self.lookup_parent(path)?;
        let mut conn = self.conn.lock();
        conn.rpc(&NfsRequest::Rmdir { dir, name: leaf }, None)?;
        Ok(())
    }

    fn readdir(&self, path: &str) -> io::Result<Vec<String>> {
        let (fh, _) = self.lookup_path(path)?;
        let mut conn = self.conn.lock();
        let st = conn.rpc(&NfsRequest::Readdir { dir: fh }, None)?;
        let body = conn.read_body(st.value as u64)?;
        let text =
            String::from_utf8(body).map_err(|_| io::Error::from(io::ErrorKind::InvalidData))?;
        text.split('\n')
            .filter(|s| !s.is_empty())
            .map(|w| {
                chirp_proto::escape::unescape(w)
                    .and_then(|b| String::from_utf8(b).ok())
                    .ok_or_else(|| io::Error::from(io::ErrorKind::InvalidData))
            })
            .collect()
    }

    fn truncate(&self, path: &str, size: u64) -> io::Result<()> {
        let (fh, _) = self.lookup_path(path)?;
        let mut conn = self.conn.lock();
        conn.rpc(&NfsRequest::Setattr { fh, size }, None)?;
        Ok(())
    }
}

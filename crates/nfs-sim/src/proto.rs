//! The NFS-shaped wire protocol: line-framed RPCs over TCP, payloads
//! following the line, mirroring NFSv2/3 procedure semantics.

use std::io;

use chirp_proto::escape::{escape, split_words, unescape};

/// A file handle: an opaque server-issued identifier, as in NFS. The
/// root export is always handle 0.
pub type Fh = u64;

/// The root file handle.
pub const ROOT_FH: Fh = 0;

/// One NFS RPC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NfsRequest {
    /// Resolve one name within a directory — one component per RPC.
    Lookup {
        /// Directory handle.
        dir: Fh,
        /// Single path component.
        name: String,
    },
    /// Attributes of a handle.
    Getattr {
        /// File handle.
        fh: Fh,
    },
    /// Read at most [`crate::MAX_TRANSFER`] bytes.
    Read {
        /// File handle.
        fh: Fh,
        /// Byte offset.
        offset: u64,
        /// Requested count (server clamps to the transfer limit).
        count: u32,
    },
    /// Write at most [`crate::MAX_TRANSFER`] bytes; payload follows.
    Write {
        /// File handle.
        fh: Fh,
        /// Byte offset.
        offset: u64,
        /// Payload length.
        count: u32,
    },
    /// Create a file in a directory.
    Create {
        /// Directory handle.
        dir: Fh,
        /// New file name.
        name: String,
        /// Fail if the name exists (exclusive create).
        exclusive: bool,
    },
    /// Remove a file.
    Remove {
        /// Directory handle.
        dir: Fh,
        /// File name.
        name: String,
    },
    /// Rename within the export.
    Rename {
        /// Source directory handle.
        from_dir: Fh,
        /// Source name.
        from_name: String,
        /// Destination directory handle.
        to_dir: Fh,
        /// Destination name.
        to_name: String,
    },
    /// Create a directory.
    Mkdir {
        /// Parent directory handle.
        dir: Fh,
        /// New directory name.
        name: String,
    },
    /// Remove an empty directory.
    Rmdir {
        /// Parent directory handle.
        dir: Fh,
        /// Directory name.
        name: String,
    },
    /// List a directory.
    Readdir {
        /// Directory handle.
        dir: Fh,
    },
    /// Truncate to a size (the SETATTR we need).
    Setattr {
        /// File handle.
        fh: Fh,
        /// New size.
        size: u64,
    },
}

impl NfsRequest {
    /// Payload bytes following the request line.
    pub fn payload_len(&self) -> u64 {
        match self {
            NfsRequest::Write { count, .. } => *count as u64,
            _ => 0,
        }
    }

    /// Encode as one protocol line.
    pub fn encode(&self) -> String {
        let e = |s: &str| escape(s.as_bytes());
        match self {
            NfsRequest::Lookup { dir, name } => format!("LOOKUP {dir} {}\n", e(name)),
            NfsRequest::Getattr { fh } => format!("GETATTR {fh}\n"),
            NfsRequest::Read { fh, offset, count } => format!("READ {fh} {offset} {count}\n"),
            NfsRequest::Write { fh, offset, count } => format!("WRITE {fh} {offset} {count}\n"),
            NfsRequest::Create {
                dir,
                name,
                exclusive,
            } => format!("CREATE {dir} {} {}\n", e(name), u8::from(*exclusive)),
            NfsRequest::Remove { dir, name } => format!("REMOVE {dir} {}\n", e(name)),
            NfsRequest::Rename {
                from_dir,
                from_name,
                to_dir,
                to_name,
            } => format!(
                "RENAME {from_dir} {} {to_dir} {}\n",
                e(from_name),
                e(to_name)
            ),
            NfsRequest::Mkdir { dir, name } => format!("MKDIR {dir} {}\n", e(name)),
            NfsRequest::Rmdir { dir, name } => format!("RMDIR {dir} {}\n", e(name)),
            NfsRequest::Readdir { dir } => format!("READDIR {dir}\n"),
            NfsRequest::Setattr { fh, size } => format!("SETATTR {fh} {size}\n"),
        }
    }

    /// Parse one request line.
    pub fn parse(line: &str) -> io::Result<NfsRequest> {
        let bad = || io::Error::new(io::ErrorKind::InvalidData, "bad nfs request");
        let words = split_words(line);
        let (&verb, args) = words.split_first().ok_or_else(bad)?;
        let num = |i: usize| -> io::Result<u64> {
            args.get(i).and_then(|w| w.parse().ok()).ok_or_else(bad)
        };
        let text = |i: usize| -> io::Result<String> {
            let raw = args.get(i).ok_or_else(bad)?;
            let bytes = unescape(raw).ok_or_else(bad)?;
            String::from_utf8(bytes).map_err(|_| bad())
        };
        Ok(match verb {
            "LOOKUP" => NfsRequest::Lookup {
                dir: num(0)?,
                name: text(1)?,
            },
            "GETATTR" => NfsRequest::Getattr { fh: num(0)? },
            "READ" => NfsRequest::Read {
                fh: num(0)?,
                offset: num(1)?,
                count: num(2)? as u32,
            },
            "WRITE" => NfsRequest::Write {
                fh: num(0)?,
                offset: num(1)?,
                count: num(2)? as u32,
            },
            "CREATE" => NfsRequest::Create {
                dir: num(0)?,
                name: text(1)?,
                exclusive: num(2)? != 0,
            },
            "REMOVE" => NfsRequest::Remove {
                dir: num(0)?,
                name: text(1)?,
            },
            "RENAME" => NfsRequest::Rename {
                from_dir: num(0)?,
                from_name: text(1)?,
                to_dir: num(2)?,
                to_name: text(3)?,
            },
            "MKDIR" => NfsRequest::Mkdir {
                dir: num(0)?,
                name: text(1)?,
            },
            "RMDIR" => NfsRequest::Rmdir {
                dir: num(0)?,
                name: text(1)?,
            },
            "READDIR" => NfsRequest::Readdir { dir: num(0)? },
            "SETATTR" => NfsRequest::Setattr {
                fh: num(0)?,
                size: num(1)?,
            },
            _ => return Err(bad()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for req in [
            NfsRequest::Lookup {
                dir: 0,
                name: "usr local".into(),
            },
            NfsRequest::Getattr { fh: 7 },
            NfsRequest::Read {
                fh: 3,
                offset: 8192,
                count: 4096,
            },
            NfsRequest::Write {
                fh: 3,
                offset: 0,
                count: 4096,
            },
            NfsRequest::Create {
                dir: 1,
                name: "f".into(),
                exclusive: true,
            },
            NfsRequest::Remove {
                dir: 1,
                name: "f".into(),
            },
            NfsRequest::Rename {
                from_dir: 1,
                from_name: "a".into(),
                to_dir: 2,
                to_name: "b".into(),
            },
            NfsRequest::Mkdir {
                dir: 0,
                name: "d".into(),
            },
            NfsRequest::Rmdir {
                dir: 0,
                name: "d".into(),
            },
            NfsRequest::Readdir { dir: 0 },
            NfsRequest::Setattr { fh: 4, size: 100 },
        ] {
            let line = req.encode();
            assert_eq!(NfsRequest::parse(line.trim_end()).unwrap(), req, "{line:?}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(NfsRequest::parse("").is_err());
        assert!(NfsRequest::parse("READ x y z").is_err());
        assert!(NfsRequest::parse("FROB 1").is_err());
    }

    #[test]
    fn only_write_carries_payload() {
        assert_eq!(
            NfsRequest::Write {
                fh: 0,
                offset: 0,
                count: 17
            }
            .payload_len(),
            17
        );
        assert_eq!(NfsRequest::Readdir { dir: 0 }.payload_len(), 0);
    }
}

//! An NFS-shaped baseline filesystem.
//!
//! The paper compares TSS against NFS because NFS is the technology
//! end users would otherwise reach for. Its evaluation isolates
//! *protocol shape*, not kernel engineering, and the comparison turns
//! on three NFS protocol properties, all reproduced here in user
//! space:
//!
//! 1. **Per-component LOOKUP** — every path must be resolved one
//!    component at a time, each a full round trip, before a file can
//!    be opened or stat'ed (CFS sends whole paths in one RPC).
//! 2. **Bounded transfer size** — READ/WRITE move at most 4 KiB per
//!    RPC, so large copies degenerate into a long chain of
//!    request/response pairs (CFS sends variable-sized messages over
//!    one TCP stream).
//! 3. **Strict request/response** — one outstanding RPC per client,
//!    so bandwidth is capped at `transfer_size / round_trip_time`.
//!
//! Caching is deliberately absent, matching the paper's
//! apples-to-apples configuration ("we have turned off caching and
//! synchronous writes in NFS"). There is no authentication: NFS trusts
//! the client-side uid, which is exactly the *exported user space*
//! limitation §3 contrasts with TSS's virtual user space.
//!
//! The client implements the same [`tss_core::fs::FileSystem`] trait
//! as every TSS abstraction, so benches can swap backends freely.

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::NfsFs;
pub use server::{NfsServer, NfsServerConfig};

/// Maximum bytes one READ/WRITE RPC may move (NFSv2's wsize/rsize).
pub const MAX_TRANSFER: usize = 4096;

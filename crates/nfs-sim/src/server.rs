//! The NFS-shaped server: file handles, bounded transfers, no cache.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use chirp_proto::wire;
use parking_lot::RwLock;

use crate::proto::{Fh, NfsRequest, ROOT_FH};
use crate::MAX_TRANSFER;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct NfsServerConfig {
    /// Exported directory.
    pub root: PathBuf,
    /// Bind address; port 0 for ephemeral.
    pub bind: SocketAddr,
}

impl NfsServerConfig {
    /// Export `root` on an ephemeral loopback port.
    pub fn localhost(root: impl Into<PathBuf>) -> NfsServerConfig {
        NfsServerConfig {
            root: root.into(),
            bind: "127.0.0.1:0".parse().expect("valid literal"),
        }
    }
}

struct FhTable {
    by_fh: HashMap<Fh, PathBuf>,
    by_path: HashMap<PathBuf, Fh>,
    next: AtomicU64,
}

impl FhTable {
    fn new(root: PathBuf) -> FhTable {
        let mut t = FhTable {
            by_fh: HashMap::new(),
            by_path: HashMap::new(),
            next: AtomicU64::new(1),
        };
        t.by_fh.insert(ROOT_FH, root.clone());
        t.by_path.insert(root, ROOT_FH);
        t
    }

    fn intern(&mut self, path: PathBuf) -> Fh {
        if let Some(&fh) = self.by_path.get(&path) {
            return fh;
        }
        let fh = self.next.fetch_add(1, Ordering::Relaxed);
        self.by_fh.insert(fh, path.clone());
        self.by_path.insert(path, fh);
        fh
    }

    fn path(&self, fh: Fh) -> Option<PathBuf> {
        self.by_fh.get(&fh).cloned()
    }
}

struct Shared {
    /// File handles are server-global and survive reconnection — the
    /// "stateless" NFS property (handles name files, not sessions).
    fhs: RwLock<FhTable>,
    root: PathBuf,
    shutdown: AtomicBool,
}

/// A running NFS-shaped server.
pub struct NfsServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl NfsServer {
    /// Start serving. Returns once the listener is bound.
    pub fn start(config: NfsServerConfig) -> std::io::Result<NfsServer> {
        std::fs::create_dir_all(&config.root)?;
        let root = config.root.canonicalize()?;
        let listener = TcpListener::bind(config.bind)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            fhs: RwLock::new(FhTable::new(root.clone())),
            root,
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = shared.clone();
        let accept = std::thread::Builder::new()
            .name("nfs-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(stream) = conn else { continue };
                    let shared = accept_shared.clone();
                    let _ = std::thread::Builder::new()
                        .name("nfs-conn".into())
                        .spawn(move || {
                            let _ = serve(stream, &shared);
                        });
                }
            })?;
        Ok(NfsServer {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `host:port` form.
    pub fn endpoint(&self) -> String {
        self.addr.to_string()
    }

    /// Stop accepting connections.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NfsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Attribute words: `<kind> <size> <mtime>`; kind `f`/`d`/`o`.
fn attr_words(meta: &std::fs::Metadata) -> String {
    use std::os::unix::fs::MetadataExt;
    let kind = if meta.is_dir() {
        'd'
    } else if meta.is_file() {
        'f'
    } else {
        'o'
    };
    format!(
        "{kind} {} {} {}",
        meta.len(),
        meta.mtime().max(0),
        meta.ino()
    )
}

fn inside(root: &Path, child: &Path) -> bool {
    child.starts_with(root)
}

fn serve(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::with_capacity(64 * 1024, stream.try_clone()?);
    let mut writer = BufWriter::with_capacity(64 * 1024, stream);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let Some(line) = wire::read_line(&mut reader)? else {
            return Ok(());
        };
        let req = match NfsRequest::parse(&line) {
            Ok(r) => r,
            Err(_) => {
                wire::write_error(&mut writer, chirp_proto::ChirpError::InvalidRequest)?;
                writer.flush()?;
                continue;
            }
        };
        // Writes carry a payload that must be consumed even on error
        // to keep the stream framed.
        let payload = if let NfsRequest::Write { count, .. } = &req {
            if *count as usize > MAX_TRANSFER {
                wire::discard_exact(&mut reader, *count as u64)?;
                wire::write_error(&mut writer, chirp_proto::ChirpError::TooBig)?;
                writer.flush()?;
                continue;
            }
            let mut buf = vec![0u8; *count as usize];
            std::io::Read::read_exact(&mut reader, &mut buf)?;
            Some(buf)
        } else {
            None
        };
        match handle(shared, &req, payload.as_deref()) {
            Ok(Response::Value(v)) => wire::write_status(&mut writer, v)?,
            Ok(Response::Words(words)) => wire::write_status_words(&mut writer, 0, &words)?,
            Ok(Response::Data(data)) => {
                wire::write_status(&mut writer, data.len() as i64)?;
                writer.write_all(&data)?;
            }
            Err(e) => {
                // Reuse the shared protocol error codes so both sides
                // of the workspace decode one status-line vocabulary.
                wire::write_error(&mut writer, chirp_proto::ChirpError::from_io(&e))?;
            }
        }
        writer.flush()?;
    }
}

enum Response {
    Value(i64),
    Words(String),
    Data(Vec<u8>),
}

fn handle(shared: &Shared, req: &NfsRequest, payload: Option<&[u8]>) -> std::io::Result<Response> {
    let not_found = || std::io::Error::from(std::io::ErrorKind::NotFound);
    let path_of = |fh: Fh| shared.fhs.read().path(fh).ok_or_else(not_found);
    match req {
        NfsRequest::Lookup { dir, name } => {
            let dir_path = path_of(*dir)?;
            if name.contains('/') || name == ".." {
                return Err(std::io::ErrorKind::InvalidData.into());
            }
            let child = dir_path.join(name);
            if !inside(&shared.root, &child) {
                return Err(not_found());
            }
            let meta = std::fs::symlink_metadata(&child)?;
            let fh = shared.fhs.write().intern(child);
            Ok(Response::Words(format!("{fh} {}", attr_words(&meta))))
        }
        NfsRequest::Getattr { fh } => {
            let path = path_of(*fh)?;
            let meta = std::fs::metadata(&path)?;
            Ok(Response::Words(attr_words(&meta)))
        }
        NfsRequest::Read { fh, offset, count } => {
            use std::os::unix::fs::FileExt;
            let path = path_of(*fh)?;
            let file = std::fs::File::open(&path)?;
            let want = (*count as usize).min(MAX_TRANSFER);
            let mut buf = vec![0u8; want];
            let mut filled = 0;
            while filled < buf.len() {
                match file.read_at(&mut buf[filled..], offset + filled as u64) {
                    Ok(0) => break,
                    Ok(n) => filled += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            buf.truncate(filled);
            Ok(Response::Data(buf))
        }
        NfsRequest::Write { fh, offset, .. } => {
            use std::os::unix::fs::FileExt;
            let path = path_of(*fh)?;
            let data =
                payload.ok_or_else(|| std::io::Error::from(std::io::ErrorKind::InvalidData))?;
            let file = std::fs::OpenOptions::new().write(true).open(&path)?;
            file.write_all_at(data, *offset)?;
            Ok(Response::Value(data.len() as i64))
        }
        NfsRequest::Create {
            dir,
            name,
            exclusive,
        } => {
            let dir_path = path_of(*dir)?;
            let child = dir_path.join(name);
            let mut opts = std::fs::OpenOptions::new();
            opts.write(true);
            if *exclusive {
                opts.create_new(true);
            } else {
                opts.create(true).truncate(true);
            }
            opts.open(&child)?;
            let fh = shared.fhs.write().intern(child);
            Ok(Response::Words(format!("{fh}")))
        }
        NfsRequest::Remove { dir, name } => {
            let dir_path = path_of(*dir)?;
            std::fs::remove_file(dir_path.join(name))?;
            Ok(Response::Value(0))
        }
        NfsRequest::Rename {
            from_dir,
            from_name,
            to_dir,
            to_name,
        } => {
            let from = path_of(*from_dir)?.join(from_name);
            let to = path_of(*to_dir)?.join(to_name);
            std::fs::rename(from, to)?;
            Ok(Response::Value(0))
        }
        NfsRequest::Mkdir { dir, name } => {
            std::fs::create_dir(path_of(*dir)?.join(name))?;
            Ok(Response::Value(0))
        }
        NfsRequest::Rmdir { dir, name } => {
            std::fs::remove_dir(path_of(*dir)?.join(name))?;
            Ok(Response::Value(0))
        }
        NfsRequest::Readdir { dir } => {
            let path = path_of(*dir)?;
            let mut names: Vec<String> = Vec::new();
            for entry in std::fs::read_dir(&path)? {
                names.push(chirp_proto::escape::escape(
                    entry?.file_name().to_string_lossy().as_bytes(),
                ));
            }
            names.sort();
            Ok(Response::Data(names.join("\n").into_bytes()))
        }
        NfsRequest::Setattr { fh, size } => {
            let path = path_of(*fh)?;
            let file = std::fs::OpenOptions::new().write(true).open(&path)?;
            file.set_len(*size)?;
            Ok(Response::Value(0))
        }
    }
}

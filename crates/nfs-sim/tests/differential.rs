//! Differential property test: the NFS-shaped baseline must agree
//! with `std::fs` on all visible behavior, so the Figure 4/5
//! comparisons measure protocol shape, not semantic bugs.

use std::time::Duration;

use chirp_proto::testutil::TempDir;
use chirp_proto::OpenFlags;
use nfs_sim::{NfsFs, NfsServer, NfsServerConfig};
use proptest::prelude::*;
use tss_core::fs::FileSystem;
use tss_core::LocalFs;

#[derive(Debug, Clone)]
enum Op {
    Write(usize, Vec<u8>),
    Read(usize),
    Stat(usize),
    Unlink(usize),
    Rename(usize, usize),
    Mkdir(usize),
    Rmdir(usize),
    Readdir(usize),
    Truncate(usize, u64),
}

const PATHS: &[&str] = &["/a", "/b", "/dir", "/dir/x", "/dir/y", "/dir2"];

fn op_strategy() -> impl Strategy<Value = Op> {
    let path = 0..PATHS.len();
    prop_oneof![
        (
            path.clone(),
            proptest::collection::vec(any::<u8>(), 0..5000)
        )
            .prop_map(|(p, d)| Op::Write(p, d)),
        path.clone().prop_map(Op::Read),
        path.clone().prop_map(Op::Stat),
        path.clone().prop_map(Op::Unlink),
        (path.clone(), 0..PATHS.len()).prop_map(|(a, b)| Op::Rename(a, b)),
        path.clone().prop_map(Op::Mkdir),
        path.clone().prop_map(Op::Rmdir),
        path.clone().prop_map(Op::Readdir),
        (path, 0u64..8192).prop_map(|(p, s)| Op::Truncate(p, s)),
    ]
}

#[derive(Debug, PartialEq, Eq)]
enum Outcome {
    Bytes(Option<Vec<u8>>),
    IsDirSize(Option<(bool, u64)>),
    Names(Option<Vec<String>>),
    Unit(bool),
}

fn apply(fs: &dyn FileSystem, op: &Op) -> Outcome {
    match op {
        Op::Write(p, d) => Outcome::Unit(fs.write_file(PATHS[*p], d).is_ok()),
        Op::Read(p) => Outcome::Bytes(fs.read_file(PATHS[*p]).ok()),
        Op::Stat(p) => Outcome::IsDirSize(fs.stat(PATHS[*p]).ok().map(|s| (s.is_dir(), s.size))),
        Op::Unlink(p) => Outcome::Unit(fs.unlink(PATHS[*p]).is_ok()),
        Op::Rename(a, b) => Outcome::Unit(fs.rename(PATHS[*a], PATHS[*b]).is_ok()),
        Op::Mkdir(p) => Outcome::Unit(fs.mkdir(PATHS[*p], 0o755).is_ok()),
        Op::Rmdir(p) => Outcome::Unit(fs.rmdir(PATHS[*p]).is_ok()),
        Op::Readdir(p) => Outcome::Names(fs.readdir(PATHS[*p]).ok()),
        Op::Truncate(p, s) => Outcome::Unit(fs.truncate(PATHS[*p], *s).is_ok()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    #[test]
    fn nfs_matches_the_local_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..20)
    ) {
        let ref_dir = TempDir::new();
        let reference = LocalFs::new(ref_dir.path()).unwrap();
        let nfs_dir = TempDir::new();
        let server = NfsServer::start(NfsServerConfig::localhost(nfs_dir.path())).unwrap();
        let subject = NfsFs::connect(server.addr(), Duration::from_secs(5)).unwrap();

        for (i, op) in ops.iter().enumerate() {
            let a = apply(&reference, op);
            let b = apply(&subject, op);
            prop_assert_eq!(a, b, "op {} = {:?} diverged", i, op);
        }
        // Final sweep over all paths.
        for p in PATHS {
            prop_assert_eq!(
                reference.read_file(p).ok(),
                subject.read_file(p).ok(),
                "content of {} diverged", p
            );
        }
    }
}

#[test]
fn open_flag_combinations_match_reference() {
    let ref_dir = TempDir::new();
    let reference = LocalFs::new(ref_dir.path()).unwrap();
    let nfs_dir = TempDir::new();
    let server = NfsServer::start(NfsServerConfig::localhost(nfs_dir.path())).unwrap();
    let subject = NfsFs::connect(server.addr(), Duration::from_secs(5)).unwrap();

    for fs in [&reference as &dyn FileSystem, &subject] {
        fs.write_file("/seed", b"0123456789").unwrap();
    }
    let combos = [
        OpenFlags::READ,
        OpenFlags::read_write(),
        OpenFlags::WRITE | OpenFlags::CREATE,
        OpenFlags::WRITE | OpenFlags::CREATE | OpenFlags::EXCLUSIVE,
        OpenFlags::read_write() | OpenFlags::TRUNCATE,
    ];
    for (i, &flags) in combos.iter().enumerate() {
        for path in ["/seed", &format!("/fresh{i}")] {
            let a = reference.open(path, flags, 0o644).is_ok();
            let b = subject.open(path, flags, 0o644).is_ok();
            assert_eq!(a, b, "flags {flags:?} on {path}");
        }
    }
}

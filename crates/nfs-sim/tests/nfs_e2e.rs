//! End-to-end tests of the NFS-shaped baseline, including the
//! protocol-shape assertions the Figure 4/5 comparisons rest on.

use std::time::Duration;

use chirp_proto::testutil::TempDir;
use chirp_proto::OpenFlags;
use nfs_sim::{NfsFs, NfsServer, NfsServerConfig, MAX_TRANSFER};
use tss_core::fs::FileSystem;

const TIMEOUT: Duration = Duration::from_secs(5);

fn setup() -> (TempDir, NfsServer, NfsFs) {
    let dir = TempDir::new();
    let server = NfsServer::start(NfsServerConfig::localhost(dir.path())).unwrap();
    let fs = NfsFs::connect(server.addr(), TIMEOUT).unwrap();
    (dir, server, fs)
}

#[test]
fn basic_file_round_trip() {
    let (_d, _s, fs) = setup();
    fs.write_file("/f", b"hello nfs").unwrap();
    assert_eq!(fs.read_file("/f").unwrap(), b"hello nfs");
    assert_eq!(fs.stat("/f").unwrap().size, 9);
}

#[test]
fn transfers_larger_than_one_rpc() {
    let (_d, _s, fs) = setup();
    // 10 * MAX_TRANSFER + remainder: exercises the serial RPC chain.
    let data: Vec<u8> = (0..MAX_TRANSFER * 10 + 123)
        .map(|i| (i % 251) as u8)
        .collect();
    fs.write_file("/big", &data).unwrap();
    assert_eq!(fs.read_file("/big").unwrap(), data);
}

#[test]
fn deep_paths_resolve_per_component() {
    let (_d, _s, fs) = setup();
    fs.mkdir("/a", 0o755).unwrap();
    fs.mkdir("/a/b", 0o755).unwrap();
    fs.mkdir("/a/b/c", 0o755).unwrap();
    fs.write_file("/a/b/c/leaf", b"deep").unwrap();
    assert_eq!(fs.read_file("/a/b/c/leaf").unwrap(), b"deep");
    assert_eq!(fs.readdir("/a/b").unwrap(), vec!["c"]);
}

#[test]
fn namespace_operations() {
    let (_d, _s, fs) = setup();
    fs.mkdir("/d", 0o755).unwrap();
    fs.write_file("/d/f", b"1").unwrap();
    fs.rename("/d/f", "/g").unwrap();
    assert!(fs.stat("/d/f").is_err());
    assert_eq!(fs.stat("/g").unwrap().size, 1);
    fs.unlink("/g").unwrap();
    fs.rmdir("/d").unwrap();
    assert!(fs.readdir("/").unwrap().is_empty());
}

#[test]
fn truncate_both_ways() {
    let (_d, _s, fs) = setup();
    fs.write_file("/t", b"0123456789").unwrap();
    fs.truncate("/t", 3).unwrap();
    assert_eq!(fs.read_file("/t").unwrap(), b"012");
    let mut h = fs.open("/t", OpenFlags::read_write(), 0).unwrap();
    h.ftruncate(0).unwrap();
    assert_eq!(h.fstat().unwrap().size, 0);
}

#[test]
fn exclusive_create_collides() {
    let (_d, _s, fs) = setup();
    let fl = OpenFlags::WRITE | OpenFlags::CREATE | OpenFlags::EXCLUSIVE;
    fs.open("/x", fl, 0o644).unwrap();
    assert_eq!(
        fs.open("/x", fl, 0o644).err().map(|e| e.kind()),
        Some(std::io::ErrorKind::AlreadyExists)
    );
}

#[test]
fn file_handles_survive_across_connections() {
    // The NFS property: handles name files, not sessions.
    let dir = TempDir::new();
    let server = NfsServer::start(NfsServerConfig::localhost(dir.path())).unwrap();
    let fs1 = NfsFs::connect(server.addr(), TIMEOUT).unwrap();
    fs1.write_file("/shared", b"from-1").unwrap();
    let fs2 = NfsFs::connect(server.addr(), TIMEOUT).unwrap();
    assert_eq!(fs2.read_file("/shared").unwrap(), b"from-1");
}

#[test]
fn lookup_cannot_escape_export() {
    let (_d, _s, fs) = setup();
    assert!(fs.stat("/../etc/passwd").is_err() || !fs.stat("/../etc/passwd").unwrap().is_dir());
    // normalize_path collapses `..` before it reaches the wire, and
    // the server additionally rejects `..` components.
    assert!(fs.read_file("/../../etc/hostname").is_err());
}

#[test]
fn missing_files_report_not_found() {
    let (_d, _s, fs) = setup();
    assert_eq!(
        fs.stat("/nope").err().map(|e| e.kind()),
        Some(std::io::ErrorKind::NotFound)
    );
    assert_eq!(
        fs.read_file("/a/b/c").err().map(|e| e.kind()),
        Some(std::io::ErrorKind::NotFound)
    );
}

//! Differential suite: generated op sequences replayed against the
//! real server and the model, byte for byte.
//!
//! Seed selection:
//!
//! * `SIM_SEED=<n>` replays exactly one seed (failure reproduction).
//! * `SIM_SEQS=<n>` overrides the sequence count.
//! * Otherwise: 10 000 sequences in release builds (with a wall-clock
//!   budget assertion), 1 000 in debug builds (where the unoptimized
//!   replay loop dominates, not the system under test).

use simharness::diff::{DiffRunner, Divergence};
use simharness::harness::SimTss;

use chirp_server::acl::Acl;

fn default_count() -> u64 {
    if cfg!(debug_assertions) {
        1_000
    } else {
        10_000
    }
}

fn check_range(first_seed: u64, count: u64) -> Result<(), Divergence> {
    // The builder default enables a deliberately tiny cache, so the
    // main suite exercises hits, misses, and evictions throughout.
    check_range_with_cache(first_seed, count, Some(64 * 1024))
}

fn check_range_with_cache(
    first_seed: u64,
    count: u64,
    cache: Option<u64>,
) -> Result<(), Divergence> {
    let root_acl = Acl::single("hostname:*", "rwlda").unwrap();
    let sim = SimTss::builder()
        .root_acl(root_acl.clone())
        .cache_bytes(cache)
        .build();
    let mut runner = DiffRunner::new(&sim, root_acl);
    for seed in first_seed..first_seed + count {
        runner.check_seed(seed)?;
    }
    Ok(())
}

/// Check `count` seeds sharded across worker threads, each worker
/// against its own independent instance. Per-seed behavior is
/// unchanged — a failure still names the seed that reproduces it
/// stand-alone.
fn check_sharded(count: u64) -> Result<(), Divergence> {
    check_sharded_with_cache(count, Some(64 * 1024))
}

fn check_sharded_with_cache(count: u64, cache: Option<u64>) -> Result<(), Divergence> {
    let shards = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(4)
        .clamp(1, 8);
    let per = count.div_ceil(shards);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..shards)
            .map(|i| {
                let first = i * per;
                let n = per.min(count.saturating_sub(first));
                s.spawn(move || {
                    if n == 0 {
                        Ok(())
                    } else {
                        check_range_with_cache(first, n, cache)
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("shard panicked")?;
        }
        Ok(())
    })
}

#[test]
fn generated_sequences_match_the_model() {
    if let Ok(seed) = std::env::var("SIM_SEED") {
        let seed: u64 = seed.parse().expect("SIM_SEED must be a u64");
        if let Err(d) = check_range(seed, 1) {
            panic!("{d}");
        }
        return;
    }
    let count: u64 = std::env::var("SIM_SEQS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(default_count);
    let start = std::time::Instant::now();
    if let Err(d) = check_sharded(count) {
        panic!("{d}");
    }
    let elapsed = start.elapsed();
    eprintln!("differential: {count} sequences in {elapsed:?}");
    if !cfg!(debug_assertions) && count >= 10_000 {
        assert!(
            elapsed < std::time::Duration::from_secs(5),
            "10k sequences took {elapsed:?}, budget is 5s"
        );
    }
}

/// The cache must be invisible at every size: disabled, a pathological
/// two-page budget (one shard, constant eviction, every access racing
/// the LRU), and one large enough that whole working sets stay
/// resident. Same seeds at every size, replayed against the cacheless
/// model. `SIM_SEQS` scales the per-size count like the main suite.
#[test]
fn cache_sizes_are_semantically_invisible() {
    let count: u64 = std::env::var("SIM_SEQS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(default_count);
    for cache in [None, Some(2 * 8192), Some(4 << 20)] {
        let start = std::time::Instant::now();
        if let Err(d) = check_sharded_with_cache(count, cache) {
            panic!("cache={cache:?}: {d}");
        }
        eprintln!(
            "differential: {count} sequences, cache={cache:?}, in {:?}",
            start.elapsed()
        );
    }
}

#[test]
fn replay_is_deterministic() {
    // Same seed range, two independent instances: the generated ops
    // and every observed result must be identical. The sequences
    // include disconnects, ACL edits, and stale-descriptor traffic, so
    // this also pins down that nothing in the in-memory stack leaks
    // wall-clock or scheduling nondeterminism into results.
    let subject = SimTss::builder().build().subject();
    for seed in [0u64, 7, 1234, 99_999] {
        let a = simharness::gen::ops_for_seed(seed, &subject);
        let b = simharness::gen::ops_for_seed(seed, &subject);
        assert_eq!(a, b, "generator nondeterministic at seed {seed}");
    }
    // Full replays agree run-to-run.
    assert!(check_range(5_000, 50).is_ok());
    assert!(check_range(5_000, 50).is_ok());
}

//! Crash-injection sweeps for the striped and mirrored abstractions.
//!
//! Both abstractions inherit the DSFS update ordering: stub first on
//! create, data first on delete. These sweeps kill a simulated
//! deployment at *every* durability point of a striped (resp.
//! mirrored) create+write+delete sequence — including torn-write mode,
//! where the killing write persists a seeded prefix — then restart and
//! check the ordering theorem end to end:
//!
//! * no data part outlives its stub: the first post-crash scan never
//!   reports orphaned data (a part is only created after the stub that
//!   references it is durable, and a stub is only unlinked after its
//!   parts are gone);
//! * a reader sees full-old, full-new, in-flight-empty, or an error —
//!   never a byte mix of two states and never a torn stub's garbage;
//! * `fsck_striped` → `repair_striped` converges: removing a dangling
//!   or corrupt stripe stub surfaces its surviving parts as orphans on
//!   the next scan, so at most two repair rounds reach a clean report
//!   and a third repair removes nothing.
//!
//! Reproduce a failure with `STRIPE_CRASH_SEED=<seed>` (the torn-mode
//! tear offsets are derived from it).

use std::io;
use std::sync::Arc;

use chirp_proto::persist::{CrashPoint, Persist};
use chirp_proto::testutil::TempDir;
use chirp_proto::OpenFlags;
use simharness::SimTss;
use tss_core::fs::FileSystem;
use tss_core::fsck::{fsck_striped, repair_striped, RepairOptions};
use tss_core::localfs::LocalFs;
use tss_core::mirrored::MirroredFs;
use tss_core::striped::StripedFs;

/// RAM-backed scratch when the host offers it (same reasoning as the
/// harness's internal `sim_root`).
fn scratch() -> TempDir {
    let shm = std::path::Path::new("/dev/shm");
    if shm.is_dir() {
        TempDir::new_in(shm)
    } else {
        TempDir::new()
    }
}

/// One stripe of payload: the data write is a single part pwrite, so a
/// clean kill leaves each part fully old or fully new (the data side
/// has no torn mode — only the metadata tree is a `LocalFs`).
const PAYLOAD: &[u8] = b"abcd";
const STRIPE: u64 = 4;
const WIDTH: usize = 2;

struct Sweep {
    sim: SimTss,
    injector: Arc<CrashPoint>,
    persist: Persist,
    run: u64,
}

impl Sweep {
    fn new() -> Sweep {
        let injector = CrashPoint::new();
        let persist = Persist::from_arc(injector.clone());
        let sim = SimTss::builder()
            .servers(WIDTH)
            .cache_bytes(None)
            .persistence(persist.clone())
            .build();
        Sweep {
            sim,
            injector,
            persist,
            run: 0,
        }
    }

    fn striped(&self, meta_dir: &TempDir, volume: &str, instrumented: bool) -> StripedFs {
        let persist = if instrumented {
            self.persist.clone()
        } else {
            Persist::none()
        };
        let meta = LocalFs::with_persistence(meta_dir.path(), persist.clone()).unwrap();
        let mut opts = self.sim.stubfs_options();
        opts.persist = persist;
        opts.breaker_threshold = 0; // crash errors must stay raw
        let pool = (0..WIDTH)
            .map(|i| self.sim.data_server(i, volume))
            .collect();
        StripedFs::new(Arc::new(meta), pool, WIDTH, STRIPE, opts).unwrap()
    }

    fn mirrored(&self, meta_dir: &TempDir, volume: &str, instrumented: bool) -> MirroredFs {
        let persist = if instrumented {
            self.persist.clone()
        } else {
            Persist::none()
        };
        let meta = LocalFs::with_persistence(meta_dir.path(), persist.clone()).unwrap();
        let mut opts = self.sim.stubfs_options();
        opts.persist = persist;
        opts.breaker_threshold = 0;
        let pool = (0..WIDTH)
            .map(|i| self.sim.data_server(i, volume))
            .collect();
        MirroredFs::new(Arc::new(meta), pool, WIDTH, opts).unwrap()
    }

    /// Remove a run's volume from every server root.
    fn cleanup(&self, volume: &str) {
        for i in 0..WIDTH {
            let _ = std::fs::remove_dir_all(self.sim.root(i).join(volume.trim_start_matches('/')));
        }
    }
}

/// The killable sequence: create `/f` with one stripe of payload, then
/// delete it. Stops at the first error (a dead process does nothing
/// further).
fn apply_ops(fs: &dyn FileSystem) -> io::Result<()> {
    let mut h = fs.open("/f", OpenFlags::WRITE | OpenFlags::CREATE, 0o644)?;
    h.pwrite(PAYLOAD, 0)?;
    drop(h);
    fs.unlink("/f")
}

/// What `/f` reads as after a crash. Only four states are legal.
fn check_read_state(fs: &dyn FileSystem, torn: bool, ctx: &str) {
    match fs.read_file("/f") {
        Ok(b) => assert!(
            b == PAYLOAD || b.is_empty(),
            "{ctx}: read {} bytes, legal states are full payload or in-flight empty",
            b.len()
        ),
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) if torn && e.kind() == io::ErrorKind::InvalidData => {}
        Err(e) => panic!("{ctx}: unexpected read error {e}"),
    }
}

#[test]
fn striped_create_delete_survives_a_kill_at_every_durability_point() {
    let seed = std::env::var("STRIPE_CRASH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0u64);
    let mut sweep = Sweep::new();

    // Golden run: journal every durability point the sequence touches.
    let meta_dir = scratch();
    let vol = "/golden";
    let fs = sweep.striped(&meta_dir, vol, true);
    fs.ensure_volumes().unwrap();
    sweep.injector.arm(None);
    apply_ops(&fs).expect("golden run succeeds");
    let points = sweep.injector.points();
    sweep.injector.disarm();
    drop(fs);
    sweep.cleanup(vol);
    assert!(
        points >= 6,
        "a width-{WIDTH} create+delete must cross at least stub, parts, and unlinks ({points})"
    );

    let all = RepairOptions {
        remove_dangling_stubs: true,
        remove_orphans: true,
    };
    for torn in [false, true] {
        for k in 0..points {
            let ctx = format!("kill at point {k}/{points} (torn={torn}, seed {seed})");
            let meta_dir = scratch();
            let vol = format!("/s{}", sweep.run);
            let fs = sweep.striped(&meta_dir, &vol, true);
            fs.ensure_volumes().unwrap();
            if torn {
                sweep.injector.arm_torn(Some(k), seed ^ k);
            } else {
                sweep.injector.arm(Some(k));
            }
            let res = apply_ops(&fs);
            assert!(
                sweep.injector.fired() && res.is_err(),
                "{ctx}: the kill must land inside the sequence"
            );
            sweep.injector.disarm();
            drop(fs);

            // Restart over whatever survived, with fresh connections.
            let rfs = sweep.striped(&meta_dir, &vol, false);
            let report = fsck_striped(&rfs).unwrap_or_else(|e| panic!("{ctx}: fsck failed: {e}"));
            assert!(
                report.unreachable.is_empty(),
                "{ctx}: unreachable {:?}",
                report.unreachable
            );
            // The ordering theorem: no data part outlives its stub.
            assert!(
                report.orphaned_data.is_empty(),
                "{ctx}: orphaned parts {:?} — a part was created before its \
                 stub was durable, or a stub unlinked before its parts",
                report.orphaned_data
            );
            for s in report.dangling_stubs.iter().chain(&report.corrupt_stubs) {
                assert_eq!(s, "/f", "{ctx}: flagged stub outside the op's target");
            }
            assert!(
                torn || report.corrupt_stubs.is_empty(),
                "{ctx}: corrupt stub from a clean (non-torn) kill: {report:?}"
            );
            check_read_state(&rfs, torn, &ctx);

            // Repair converges: clean within two rounds, then a no-op.
            let mut report = report;
            let mut rounds = 0;
            while !report.is_clean() {
                rounds += 1;
                assert!(rounds <= 2, "{ctx}: repair did not converge: {report:?}");
                let removed = repair_striped(&rfs, &report, all)
                    .unwrap_or_else(|e| panic!("{ctx}: repair failed: {e}"));
                assert!(removed > 0, "{ctx}: unclean report but nothing removed");
                report = fsck_striped(&rfs).unwrap();
            }
            assert_eq!(
                repair_striped(&rfs, &report, all).unwrap(),
                0,
                "{ctx}: repair on a clean report must be a no-op"
            );
            drop(rfs);
            sweep.cleanup(&vol);
            sweep.run += 1;
        }
    }
}

#[test]
fn mirrored_create_delete_survives_a_kill_at_every_durability_point() {
    let seed = std::env::var("STRIPE_CRASH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0u64);
    let mut sweep = Sweep::new();

    let meta_dir = scratch();
    let vol = "/mgolden";
    let fs = sweep.mirrored(&meta_dir, vol, true);
    fs.ensure_volumes().unwrap();
    sweep.injector.arm(None);
    apply_ops(&fs).expect("golden run succeeds");
    let points = sweep.injector.points();
    sweep.injector.disarm();
    drop(fs);
    sweep.cleanup(vol);

    for torn in [false, true] {
        for k in 0..points {
            let ctx = format!("mirrored kill at point {k}/{points} (torn={torn}, seed {seed})");
            let meta_dir = scratch();
            let vol = format!("/m{}", sweep.run);
            let fs = sweep.mirrored(&meta_dir, &vol, true);
            fs.ensure_volumes().unwrap();
            if torn {
                sweep.injector.arm_torn(Some(k), seed ^ k);
            } else {
                sweep.injector.arm(Some(k));
            }
            let res = apply_ops(&fs);
            assert!(
                sweep.injector.fired() && res.is_err(),
                "{ctx}: the kill must land inside the sequence"
            );
            sweep.injector.disarm();
            drop(fs);

            // A restarted reader sees one of the four legal states —
            // never a replica mix and never a torn stub's bytes.
            let rfs = sweep.mirrored(&meta_dir, &vol, false);
            check_read_state(&rfs, torn, &ctx);
            drop(rfs);
            sweep.cleanup(&vol);
            sweep.run += 1;
        }
    }
}

//! The reactor proven op-for-op, plus connection-scale soaks.
//!
//! * **Differential matrix** — the same seeded op sequences replayed
//!   against a reactor-core server and a thread-core server, each
//!   checked byte-for-byte against the model oracle. Any behavioral
//!   drift between the cores shows up as a divergence on one side.
//!   Reproduce with `REACTOR_SEED=<n>`.
//! * **Idle-connection soak** — thousands of idle connections held on
//!   one server: memory must stay flat while they idle (no
//!   per-connection thread stacks, no buffer creep), the server must
//!   stay responsive through the crowd, and shutdown must retire every
//!   connection cleanly. `REACTOR_SOAK=50000` scales it to the
//!   headline 50k; the default 2000 is the verify.sh gate and rides
//!   the shared `SCENARIO_SCALE` knob with the rest of the
//!   mass-client workloads.
//! * **Listener-closed-is-terminal** — unbinding the address under a
//!   live server (the simulated host death the federation tests
//!   inflict) must stop the accept loop without spinning, keep
//!   already-accepted connections serving, and still shut down
//!   cleanly — under both cores.

use std::io::Read;
use std::time::Duration;

use chirp_server::config::CoreKind;
use simharness::diff::DiffRunner;
use simharness::SimTss;

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

#[test]
fn differential_matrix_reactor_vs_threads() {
    let seeds: Vec<u64> = match env_u64("REACTOR_SEED") {
        Some(seed) => vec![seed],
        None => {
            let n = env_u64("SIM_SEQS").unwrap_or(if cfg!(debug_assertions) { 40 } else { 400 });
            (0..n).collect()
        }
    };
    let root_acl = chirp_server::acl::Acl::single("hostname:*", "rwlda").unwrap();
    for core in [CoreKind::Reactor, CoreKind::Threads] {
        let sim = SimTss::builder()
            .root_acl(root_acl.clone())
            .core(core)
            .build();
        let mut runner = DiffRunner::new(&sim, root_acl.clone());
        for &seed in &seeds {
            if let Err(div) = runner.check_seed(seed) {
                panic!(
                    "core {core:?} diverged from the model:\n{div}\n\
                     reproduce: REACTOR_SEED={seed} cargo test -p simharness --test reactor_sim"
                );
            }
        }
    }
}

/// Resident set size in bytes, from /proc/self/statm.
#[cfg(target_os = "linux")]
fn rss_bytes() -> u64 {
    let statm = std::fs::read_to_string("/proc/self/statm").expect("statm");
    let pages: u64 = statm
        .split_whitespace()
        .nth(1)
        .and_then(|f| f.parse().ok())
        .expect("resident field");
    pages * 4096
}

#[test]
fn idle_connection_soak_holds_flat_memory() {
    let n = env_u64("REACTOR_SOAK")
        .map(|n| n as usize)
        .unwrap_or_else(|| simharness::scenario::fleet_size(2000, 2000));
    // Room for the crowd plus the probe client.
    let sim = SimTss::builder().max_connections(n + 8).build();
    let mut conns = Vec::with_capacity(n);
    let dialer = sim.net().dialer();
    let endpoint = sim.servers()[0].endpoint();
    for _ in 0..n {
        conns.push(
            dialer
                .dial(&endpoint, Duration::from_secs(5))
                .expect("dial idle conn"),
        );
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while sim.servers()[0].active_connections() < n {
        assert!(
            std::time::Instant::now() < deadline,
            "only {}/{n} connections adopted",
            sim.servers()[0].active_connections()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Hold the crowd idle and watch memory: established-state RSS must
    // not creep while nothing happens (level-triggered loops that
    // buffer per-tick would show up here).
    #[cfg(target_os = "linux")]
    let settled = rss_bytes();
    let mut probe = sim.connect(0); // arrives pre-authenticated
    for _ in 0..5 {
        std::thread::sleep(Duration::from_millis(100));
        // The server keeps answering through the idle crowd.
        probe.whoami().expect("responsive under idle crowd");
    }
    #[cfg(target_os = "linux")]
    {
        let held = rss_bytes();
        let grown = held.saturating_sub(settled);
        assert!(
            grown < 16 * 1024 * 1024,
            "RSS grew {grown} bytes while {n} connections sat idle"
        );
    }

    // Listener close over the idle crowd: clean retirement, EOF for
    // every client.
    drop(probe);
    let mut sim = sim;
    sim.shutdown();
    let mut byte = [0u8; 1];
    for (i, conn) in conns.iter_mut().enumerate() {
        match conn.read(&mut byte) {
            Ok(0) | Err(_) => {}
            Ok(k) => panic!("idle conn {i} read {k} bytes after shutdown"),
        }
    }
}

#[test]
fn unbound_listener_is_terminal_not_a_spin() {
    for core in [CoreKind::Reactor, CoreKind::Threads] {
        let mut sim = SimTss::builder().core(core).build();
        let addr = sim.servers()[0].addr();
        let mut conn = sim.connect(0); // arrives pre-authenticated
        conn.mkdir("/survives", 0o755).unwrap();

        // The simulated host death: the address unbinds under the
        // accept loop. New dials fail immediately...
        sim.net().unbind(addr);
        assert!(
            sim.net()
                .dialer()
                .dial(&addr.to_string(), Duration::from_millis(200))
                .is_err(),
            "core {core:?}: unbound address must refuse dials"
        );
        // ...while the already-accepted connection keeps serving: the
        // accept loop is dead, the (reactor or thread) serving path is
        // not.
        assert_eq!(
            conn.getdir("/").unwrap(),
            vec!["survives".to_string()],
            "core {core:?}: live connection must keep serving"
        );
        drop(conn);
        // Shutdown still completes promptly: the accept thread exited
        // on the listener-closed error instead of spinning on it.
        sim.shutdown();
    }
}

//! Chaos under simulation: the mirrored-read failover scenario from
//! `crates/core/tests/chaos.rs` (`kill_mid_rpc_on_one_mirror_replica_
//! is_masked`), reproduced with no TCP sockets, no proxies, and no
//! sleeps — the fault plan runs inside an in-memory dialer, retry
//! backoff is charged to a virtual clock, and the whole scenario is a
//! deterministic function of the seed.

use std::sync::Arc;
use std::time::{Duration, Instant};

use chirp_proto::OpenFlags;
use faultline::mem::FaultDialer;
use faultline::{FaultAction, FaultPlan, FaultTrigger};
use simharness::harness::{auth, RouteDialer, SimTss};
use tss_core::fs::FileSystem;
use tss_core::localfs::LocalFs;
use tss_core::mirrored::MirroredFs;

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
        .collect()
}

#[test]
fn kill_mid_rpc_on_one_mirror_replica_is_masked_in_memory() {
    let seed = 0xC4A05_u64;
    let sim = SimTss::builder().servers(2).build();

    // Replica 0's connections pass through a fault layer that kills
    // every second RPC mid-frame; replica 1 is reached directly. This
    // is the in-memory analogue of putting a TCP fault proxy in front
    // of one server.
    let killer = FaultDialer::new(
        sim.dialer(),
        sim.clock().clone(),
        FaultPlan::new(seed).rule(FaultTrigger::EveryNthRpc(2), FaultAction::KillMidFrame),
    );
    let routed = RouteDialer::new(sim.dialer())
        .route(&sim.endpoint(0), killer.dialer())
        .dialer();

    let mut options = sim.stubfs_options();
    options.dialer = routed;

    let pool = vec![sim.data_server(0, "/vol"), sim.data_server(1, "/vol")];
    let meta_dir = chirp_proto::testutil::TempDir::new();
    let meta = Arc::new(LocalFs::new(meta_dir.path()).unwrap());
    let fs = MirroredFs::new(meta, pool, 2, options).unwrap();

    // Fixture written fault-free.
    killer.set_armed(false);
    fs.ensure_volumes().unwrap();
    let data = pattern(64 * 1024, 3);
    fs.write_file("/precious", &data).unwrap();
    killer.set_armed(true);

    let wall = Instant::now();
    let virtual_start = sim.clock().now();

    // Kill-mid-pread: the read either recovers within the retry
    // budget or fails over to the clean replica; the caller sees only
    // correct data.
    let mut h = fs.open("/precious", OpenFlags::READ, 0).unwrap();
    let mut out = vec![0u8; data.len()];
    let mut off = 0usize;
    while off < out.len() {
        let n = h.pread(&mut out[off..], off as u64).unwrap();
        assert!(n > 0, "pread returned 0 before EOF");
        off += n;
    }
    assert_eq!(out, data);
    drop(h);
    assert_eq!(fs.read_file("/precious").unwrap(), data);

    assert!(killer.fires() > 0, "kill plan never fired");

    // The recovery timing ran on simulated time: retry backoffs
    // advanced the virtual clock, while wall-clock stayed in
    // interactive range (no sleep-based synchronization anywhere).
    let virtual_elapsed = sim.clock().elapsed_since(virtual_start);
    assert!(
        virtual_elapsed >= Duration::from_millis(10),
        "kills fired but no retry backoff was charged to the virtual \
         clock (elapsed {virtual_elapsed:?})"
    );
    assert!(
        wall.elapsed() < Duration::from_secs(10),
        "scenario leaned on real time: {:?}",
        wall.elapsed()
    );
}

#[test]
fn same_seed_same_fault_schedule() {
    // The fault decision stream is a function of the seed alone: two
    // instances of the scenario fire the same number of kills at the
    // same RPC indices.
    let run = |seed: u64| {
        let sim = SimTss::builder().servers(1).build();
        let killer = FaultDialer::new(
            sim.dialer(),
            sim.clock().clone(),
            FaultPlan::new(seed).rule(FaultTrigger::Probability(0.3), FaultAction::KillMidFrame),
        );
        // Dial through the fault layer; the AUTH RPC itself can be
        // killed, so connecting is itself a retry loop. Every attempt
        // consumes fault decisions deterministically.
        let dialer = killer.dialer();
        let connect = || loop {
            if let Ok(mut c) = chirp_client::Connection::connect_via(
                &dialer,
                &sim.endpoint(0),
                Duration::from_secs(5),
            ) {
                if c.authenticate(&auth()).is_ok() {
                    return c;
                }
            }
        };
        let mut conn = connect();
        let mut outcomes = Vec::new();
        for _ in 0..40 {
            let r = conn.stat("/");
            outcomes.push(r.is_ok());
            if r.is_err() {
                // The stream died; redial through the same fault
                // layer (connection counters advance
                // deterministically too).
                conn = connect();
            }
        }
        (outcomes, killer.fires())
    };
    let (a, fires_a) = run(7);
    let (b, fires_b) = run(7);
    assert_eq!(
        a, b,
        "fault schedule depended on something besides the seed"
    );
    assert_eq!(fires_a, fires_b);
    assert!(fires_a > 0, "probability rule never fired in 40 RPCs");
}

//! Chaos under simulation: the mirrored-read failover scenario from
//! `crates/core/tests/chaos.rs` (`kill_mid_rpc_on_one_mirror_replica_
//! is_masked`), reproduced with no TCP sockets, no proxies, and no
//! sleeps — the fault plan runs inside an in-memory dialer, retry
//! backoff is charged to a virtual clock, and the whole scenario is a
//! deterministic function of the seed.

use std::sync::Arc;
use std::time::{Duration, Instant};

use chirp_proto::{OpenFlags, ReplyShape, Request};
use faultline::mem::FaultDialer;
use faultline::{FaultAction, FaultPlan, FaultTrigger};
use simharness::harness::{auth, RouteDialer, SimTss};
use tss_core::fs::FileSystem;
use tss_core::localfs::LocalFs;
use tss_core::mirrored::MirroredFs;

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
        .collect()
}

#[test]
fn kill_mid_rpc_on_one_mirror_replica_is_masked_in_memory() {
    let seed = 0xC4A05_u64;
    let sim = SimTss::builder().servers(2).build();

    // Replica 0's connections pass through a fault layer that kills
    // every second RPC mid-frame; replica 1 is reached directly. This
    // is the in-memory analogue of putting a TCP fault proxy in front
    // of one server.
    let killer = FaultDialer::new(
        sim.dialer(),
        sim.clock().clone(),
        FaultPlan::new(seed).rule(FaultTrigger::EveryNthRpc(2), FaultAction::KillMidFrame),
    );
    let routed = RouteDialer::new(sim.dialer())
        .route(&sim.endpoint(0), killer.dialer())
        .dialer();

    let mut options = sim.stubfs_options();
    options.dialer = routed;

    let pool = vec![sim.data_server(0, "/vol"), sim.data_server(1, "/vol")];
    let meta_dir = chirp_proto::testutil::TempDir::new();
    let meta = Arc::new(LocalFs::new(meta_dir.path()).unwrap());
    let fs = MirroredFs::new(meta, pool, 2, options).unwrap();

    // Fixture written fault-free.
    killer.set_armed(false);
    fs.ensure_volumes().unwrap();
    let data = pattern(64 * 1024, 3);
    fs.write_file("/precious", &data).unwrap();
    killer.set_armed(true);

    let wall = Instant::now();
    let virtual_start = sim.clock().now();

    // Kill-mid-pread: the read either recovers within the retry
    // budget or fails over to the clean replica; the caller sees only
    // correct data.
    let mut h = fs.open("/precious", OpenFlags::READ, 0).unwrap();
    let mut out = vec![0u8; data.len()];
    let mut off = 0usize;
    while off < out.len() {
        let n = h.pread(&mut out[off..], off as u64).unwrap();
        assert!(n > 0, "pread returned 0 before EOF");
        off += n;
    }
    assert_eq!(out, data);
    drop(h);
    assert_eq!(fs.read_file("/precious").unwrap(), data);

    assert!(killer.fires() > 0, "kill plan never fired");

    // The recovery timing ran on simulated time: retry backoffs
    // advanced the virtual clock, while wall-clock stayed in
    // interactive range (no sleep-based synchronization anywhere).
    let virtual_elapsed = sim.clock().elapsed_since(virtual_start);
    assert!(
        virtual_elapsed >= Duration::from_millis(10),
        "kills fired but no retry backoff was charged to the virtual \
         clock (elapsed {virtual_elapsed:?})"
    );
    assert!(
        wall.elapsed() < Duration::from_secs(10),
        "scenario leaned on real time: {:?}",
        wall.elapsed()
    );
}

#[test]
fn same_seed_same_fault_schedule() {
    // The fault decision stream is a function of the seed alone: two
    // instances of the scenario fire the same number of kills at the
    // same RPC indices.
    let run = |seed: u64| {
        let sim = SimTss::builder().servers(1).build();
        let killer = FaultDialer::new(
            sim.dialer(),
            sim.clock().clone(),
            FaultPlan::new(seed).rule(FaultTrigger::Probability(0.3), FaultAction::KillMidFrame),
        );
        // Dial through the fault layer; the AUTH RPC itself can be
        // killed, so connecting is itself a retry loop. Every attempt
        // consumes fault decisions deterministically.
        let dialer = killer.dialer();
        let connect = || loop {
            if let Ok(mut c) = chirp_client::Connection::connect_via(
                &dialer,
                &sim.endpoint(0),
                Duration::from_secs(5),
            ) {
                if c.authenticate(&auth()).is_ok() {
                    return c;
                }
            }
        };
        let mut conn = connect();
        let mut outcomes = Vec::new();
        for _ in 0..40 {
            let r = conn.stat("/");
            outcomes.push(r.is_ok());
            if r.is_err() {
                // The stream died; redial through the same fault
                // layer (connection counters advance
                // deterministically too).
                conn = connect();
            }
        }
        (outcomes, killer.fires())
    };
    let (a, fires_a) = run(7);
    let (b, fires_b) = run(7);
    assert_eq!(
        a, b,
        "fault schedule depended on something besides the seed"
    );
    assert_eq!(fires_a, fires_b);
    assert!(fires_a > 0, "probability rule never fired in 40 RPCs");
}

/// The ISSUE-5 regression scenario at the protocol layer: three
/// pipelined requests in flight on one stream when the transport dies
/// mid-frame. The contract under test is the total classification
/// from `PipelinedConn`: a reply read before the fault is *settled*
/// (kept, never replayed), while everything still queued behind the
/// fault comes back `Disconnected` (retriable), so the caller can
/// reconnect and replay exactly the unsettled tail at its recorded
/// offsets.
#[test]
fn kill_mid_frame_with_three_in_flight_keeps_settled_replies() {
    let sim = SimTss::builder().build();

    // Through this dialer: AUTH is RPC 1, OPEN is RPC 2, then the
    // three pipelined PWRITEs are RPCs 3..=5. The kill lands on the
    // third one's request frame.
    let killer = FaultDialer::new(
        sim.dialer(),
        sim.clock().clone(),
        FaultPlan::new(0x1F11_u64).rule(FaultTrigger::NthRpc(5), FaultAction::KillMidFrame),
    );

    let mut conn = sim.connect_via(&killer.dialer(), 0);
    let fd = conn
        .open(
            "/inflight",
            OpenFlags::read_write() | OpenFlags::CREATE,
            0o644,
        )
        .unwrap();

    let chunk = |byte: u8| vec![byte; 8];
    let (first, rest) = conn
        .pipeline(3, |pipe| {
            // Request A settles before the fault: send, flush, read
            // its reply while B and C are not on the wire yet, so the
            // client buffer cannot hold any later reply.
            pipe.send(
                &Request::Pwrite {
                    fd,
                    length: 8,
                    offset: 0,
                },
                Some(&chunk(b'A')),
                ReplyShape::Status,
            )?;
            pipe.flush()?;
            let first = pipe.recv();
            pipe.send(
                &Request::Pwrite {
                    fd,
                    length: 8,
                    offset: 8,
                },
                Some(&chunk(b'B')),
                ReplyShape::Status,
            )?;
            pipe.send(
                &Request::Pwrite {
                    fd,
                    length: 8,
                    offset: 16,
                },
                Some(&chunk(b'C')),
                ReplyShape::Status,
            )?;
            Ok((first, pipe.settle_all()))
        })
        .unwrap();

    // The settled reply is kept: a real verdict, not an error.
    assert_eq!(first.unwrap().status().value, 8);
    // Both requests queued at the kill classify as retriable
    // transport loss — never as a later request's verdict.
    assert_eq!(rest.len(), 2);
    for verdict in &rest {
        assert_eq!(
            *verdict.as_ref().unwrap_err(),
            chirp_proto::ChirpError::Disconnected
        );
    }
    assert_eq!(killer.fires(), 1);
    assert!(
        conn.is_broken(),
        "a dead pipeline must poison the connection"
    );

    // Recovery: reconnect through the same fault layer, re-open the
    // descriptor, and replay ONLY the unsettled requests at their
    // recorded offsets (positional writes make the replay idempotent
    // even if the server applied B before the stream died).
    let mut conn = sim.connect_via(&killer.dialer(), 0);
    let fd = conn.open("/inflight", OpenFlags::read_write(), 0).unwrap();
    assert_eq!(conn.pwrite(fd, &chunk(b'B'), 8).unwrap(), 8);
    assert_eq!(conn.pwrite(fd, &chunk(b'C'), 16).unwrap(), 8);

    let mut want = chunk(b'A');
    want.extend(chunk(b'B'));
    want.extend(chunk(b'C'));
    assert_eq!(conn.getfile("/inflight").unwrap(), want);
    assert_eq!(
        killer.fires(),
        1,
        "recovery traffic must not trip the one-shot plan again"
    );
}

/// The same scenario one layer up: `Cfs` with read-ahead enabled runs
/// deferred-settle prefetches over the pipelined stream, and kills
/// landing on those frames (or on synchronous refills) must be
/// absorbed by fd re-open + positional replay — the reader sees every
/// byte exactly once, at the right offset.
#[test]
fn killed_prefetch_stream_replays_reads_at_the_right_offset() {
    let sim = SimTss::builder().build();
    let killer = FaultDialer::new(
        sim.dialer(),
        sim.clock().clone(),
        FaultPlan::new(0xF00D_u64).rule(FaultTrigger::EveryNthRpc(6), FaultAction::KillMidFrame),
    );

    // Fixture written through a clean connection; the fault plan only
    // ever sees the reader's traffic.
    let data = pattern(64 * 1024, 9);
    let mut setup = sim.connect(0);
    setup.putfile("/chaos", 0o644, &data).unwrap();
    drop(setup);

    let cfs = tss_core::cfs::Cfs::new(
        sim.cfs_config(0)
            .with_dialer(killer.dialer())
            .with_readahead(4096)
            .with_pipeline_depth(8),
    );
    let mut h = cfs.open("/chaos", OpenFlags::READ, 0).unwrap();
    let mut got = vec![0u8; data.len()];
    let mut off = 0usize;
    while off < got.len() {
        let end = (off + 1024).min(got.len());
        let n = h.pread(&mut got[off..end], off as u64).unwrap();
        assert!(n > 0, "short-circuited at offset {off}");
        off += n;
    }
    assert_eq!(got, data, "replayed reads returned wrong bytes");
    assert!(killer.fires() > 0, "plan never fired — scenario is vacuous");
    assert!(
        cfs.telemetry().counter("client.readahead.prefetches").get() > 0,
        "pipelined prefetch path was never exercised"
    );
}

/// Accounting half of the ISSUE-5 regression: with read-ahead off,
/// every RPC is synchronous, so each injected kill severs exactly one
/// stream and surfaces as exactly one counted retry. The period (7)
/// is deliberately longer than the 4-RPC recovery cycle
/// (AUTH/OPEN/FSTAT/retried PREAD) so a retried operation always
/// completes before the next fault — no resonance, strict 1:1.
#[test]
fn retry_counters_equal_injected_fault_count() {
    let sim = SimTss::builder().build();
    let killer = FaultDialer::new(
        sim.dialer(),
        sim.clock().clone(),
        FaultPlan::new(0xBEEF_u64).rule(FaultTrigger::EveryNthRpc(7), FaultAction::KillMidFrame),
    );

    let data = pattern(20 * 1024, 5);
    let mut setup = sim.connect(0);
    setup.putfile("/sync", 0o644, &data).unwrap();
    drop(setup);

    let cfs = tss_core::cfs::Cfs::new(
        sim.cfs_config(0)
            .with_dialer(killer.dialer())
            .with_readahead(0),
    );
    let mut h = cfs.open("/sync", OpenFlags::READ, 0).unwrap();
    let mut got = vec![0u8; data.len()];
    let mut off = 0usize;
    while off < got.len() {
        let end = (off + 1024).min(got.len());
        let n = h.pread(&mut got[off..end], off as u64).unwrap();
        assert!(n > 0);
        off += n;
    }
    assert_eq!(got, data);

    let fires = killer.fires();
    assert!(fires > 0, "plan never fired — equality would be vacuous");
    assert_eq!(
        cfs.retries(),
        fires,
        "each injected kill must surface as exactly one retry"
    );
    assert_eq!(
        cfs.telemetry().counter("client.retries").get(),
        fires,
        "telemetry retry counter disagrees with the retry loop"
    );
}

//! End-to-end protocol scenarios under the in-memory transport:
//! third-party transfer between two servers, and session teardown
//! semantics on disconnect. These are the socket-based e2e scenarios
//! from `chirp-client/tests/e2e.rs` re-hosted on `MemNet` — same
//! handler stack, no ports, no reliance on loopback TCP behavior.

use std::time::Duration;

use chirp_proto::OpenFlags;
use simharness::harness::SimTss;

/// THIRDPUT pushes a file server-to-server: the client asks server 0,
/// and server 0 itself dials server 1 *through the same in-memory
/// network* (its outbound dialer is wired by the harness) and
/// authenticates as its own hostname identity.
#[test]
fn thirdput_transfers_between_two_in_memory_servers() {
    let sim = SimTss::builder().servers(2).build();
    let mut conn = sim.connect(0);

    let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
    conn.putfile("/src", 0o644, &payload).unwrap();

    let n = conn.thirdput("/src", &sim.endpoint(1), "/dst").unwrap();
    assert_eq!(n, payload.len() as u64);

    // The bytes landed on server 1's own storage, readable through a
    // direct connection and visible in its host root.
    let mut conn1 = sim.connect(1);
    assert_eq!(conn1.getfile("/dst").unwrap(), payload);
    assert_eq!(
        std::fs::read(sim.root(1).join("dst")).unwrap(),
        payload,
        "server 1 stores the file on its own resource"
    );
    assert!(
        !sim.root(0).join("dst").exists(),
        "the transfer must not bounce through server 0's storage"
    );
}

/// Third-party transfer to a server that refuses the pushing server's
/// identity fails without creating anything.
#[test]
fn thirdput_respects_target_acl() {
    let sim = SimTss::builder().servers(2).build();
    let mut conn = sim.connect(0);
    conn.putfile("/src", 0o644, b"secret").unwrap();

    // Lock server 1 down: revoke the wildcard entry, keep only an
    // unrelated subject.
    let mut conn1 = sim.connect(1);
    conn1.setacl("/", "unix:nobody", "rl").unwrap();
    conn1.setacl("/", "hostname:*", "").unwrap();

    let err = conn.thirdput("/src", &sim.endpoint(1), "/dst").unwrap_err();
    assert!(
        matches!(
            err,
            chirp_proto::ChirpError::NotAuthorized | chirp_proto::ChirpError::AuthFailed
        ),
        "unexpected error {err:?}"
    );
    assert!(!sim.root(1).join("dst").exists());
}

/// Dropping a connection closes every descriptor the session held:
/// the server session ends, its connection slot frees, and a fresh
/// session numbers descriptors from zero again.
#[test]
fn disconnect_closes_all_descriptors() {
    let sim = SimTss::builder().build();
    let mut conn = sim.connect(0);

    // Hold several descriptors, including one on an unlinked file
    // (the classic held-inode case).
    let a = conn
        .open("/a", OpenFlags::read_write() | OpenFlags::CREATE, 0o644)
        .unwrap();
    let b = conn
        .open("/b", OpenFlags::read_write() | OpenFlags::CREATE, 0o644)
        .unwrap();
    let c = conn
        .open("/c", OpenFlags::read_write() | OpenFlags::CREATE, 0o644)
        .unwrap();
    assert_eq!((a, b, c), (0, 1, 2), "descriptors allocate densely");
    conn.pwrite(a, b"held", 0).unwrap();
    conn.unlink("/a").unwrap();
    assert_eq!(conn.pread(a, 4, 0).unwrap(), b"held");
    assert_eq!(sim.servers()[0].active_connections(), 1);

    // Drop the client end. The server observes EOF and tears the
    // session down — descriptors and all.
    drop(conn);
    wait_until(|| sim.servers()[0].active_connections() == 0);

    // A fresh session starts with an empty table: old descriptor
    // numbers are dead, and numbering restarts at zero.
    let mut conn = sim.connect(0);
    assert_eq!(
        conn.pread(a, 4, 0).unwrap_err(),
        chirp_proto::ChirpError::BadFd,
        "descriptors must not survive their session"
    );
    let fresh = conn.open("/b", OpenFlags::READ, 0).unwrap();
    assert_eq!(fresh, 0, "fd numbering restarts for a fresh session");
}

/// An abandoned session must not pin its connection slot: after the
/// drop, the server accepts new connections up to the same limit.
#[test]
fn dropped_sessions_free_connection_slots() {
    let sim = SimTss::builder().build();
    let conns: Vec<_> = (0..8).map(|_| sim.connect(0)).collect();
    assert_eq!(sim.servers()[0].active_connections(), 8);
    drop(conns);
    wait_until(|| sim.servers()[0].active_connections() == 0);
    let _again: Vec<_> = (0..8).map(|_| sim.connect(0)).collect();
    assert_eq!(sim.servers()[0].active_connections(), 8);
}

/// Spin (bounded, real time) until the server-side teardown lands.
/// Session teardown is the one genuinely asynchronous hand-off in
/// these scenarios — the server thread notices EOF on its own
/// schedule — so the tests wait on the *observable state*, never on a
/// fixed sleep.
fn wait_until(mut cond: impl FnMut() -> bool) {
    let start = std::time::Instant::now();
    while !cond() {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "condition not reached"
        );
        std::thread::yield_now();
    }
}

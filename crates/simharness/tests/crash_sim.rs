//! The crash-injection differential suite.
//!
//! Each seed generates a short sequence of whole-file operations; the
//! harness replays it once to journal every durability point, then
//! once per point with the simulated server killed there, restarting
//! and checking the surviving state against the model (see
//! `simharness::crash`).
//!
//! Knobs:
//! * `SIM_SEQS=<n>`  — how many seeds to sweep (default: small in
//!   debug builds, 1000 in release — the verify.sh `--crash` stage).
//! * `CRASH_SEED=<n>` — sweep exactly one seed, for reproducing a
//!   printed failure.

use simharness::crash::{CrashHarness, CrashStats};

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

#[test]
fn crash_sweep_over_seed_matrix() {
    let mut harness = CrashHarness::new();
    let mut totals = CrashStats::default();

    let seeds: Vec<u64> = match env_u64("CRASH_SEED") {
        Some(seed) => vec![seed],
        None => {
            let n = env_u64("SIM_SEQS").unwrap_or(if cfg!(debug_assertions) { 25 } else { 1000 });
            (0..n).collect()
        }
    };
    for &seed in &seeds {
        match harness.run_seed(seed) {
            Ok(stats) => totals.add(stats),
            Err(div) => panic!("{div}"),
        }
    }
    println!(
        "crash sweep: {} sequences, {} ops, {} simulated kills, 0 rejected states",
        totals.sequences, totals.ops, totals.crash_points
    );
    assert_eq!(totals.sequences, seeds.len() as u64);
    assert!(
        totals.crash_points > totals.sequences,
        "every sequence must hit multiple durability points"
    );
}

/// The same matrix with the injector in torn-write mode: the killing
/// write persists a seeded strict prefix, so stub writes can leave
/// *corrupt* stubs. Acceptance additionally requires fsck to classify
/// them and repair to remove them (see `simharness::crash`).
#[test]
fn torn_crash_sweep_over_seed_matrix() {
    let mut harness = CrashHarness::new();
    let mut totals = CrashStats::default();

    let seeds: Vec<u64> = match env_u64("CRASH_SEED") {
        Some(seed) => vec![seed],
        None => {
            let n = env_u64("SIM_SEQS").unwrap_or(if cfg!(debug_assertions) { 25 } else { 1000 });
            (0..n).collect()
        }
    };
    for &seed in &seeds {
        match harness.run_seed_torn(seed) {
            Ok(stats) => totals.add(stats),
            Err(div) => panic!("{div}"),
        }
    }
    println!(
        "torn crash sweep: {} sequences, {} ops, {} simulated kills, 0 rejected states",
        totals.sequences, totals.ops, totals.crash_points
    );
    assert_eq!(totals.sequences, seeds.len() as u64);
}

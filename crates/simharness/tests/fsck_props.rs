//! Properties of `fsck` + `repair` under arbitrary injected damage.
//!
//! The crash sweep (`crash_sim.rs`) exercises the damage states the
//! protocol can actually reach; this suite covers the full damage
//! *space* — any mix of healthy files, dangling stubs, zero-length
//! stubs, corrupt stubs, and orphaned data files — and pins the
//! recovery contract:
//!
//! * the scan classifies every planted artifact, and nothing else;
//! * one `repair` pass removes exactly the reported artifacts and
//!   yields a clean scan (convergence);
//! * a second pass removes nothing (idempotence);
//! * healthy files are byte-identical before and after repair.

use std::sync::Arc;

use proptest::prelude::*;

use chirp_proto::testutil::TempDir;
use chirp_proto::OpenFlags;
use simharness::SimTss;
use tss_core::fs::FileSystem;
use tss_core::fsck::{fsck, repair, RepairOptions};
use tss_core::localfs::LocalFs;
use tss_core::placement::Placement;
use tss_core::stub::Stub;
use tss_core::stubfs::StubFs;

/// Plant the requested damage mix and return the stub filesystem plus
/// the expected healthy contents.
fn plant(
    sim: &SimTss,
    meta_dir: &TempDir,
    volume: &str,
    n_healthy: usize,
    n_dangling: usize,
    n_empty: usize,
    n_corrupt: usize,
    n_orphan: usize,
) -> (StubFs, Vec<(String, Vec<u8>)>) {
    let meta = LocalFs::new(meta_dir.path()).unwrap();
    let mut opts = sim.stubfs_options();
    opts.breaker_threshold = 0;
    let fs = StubFs::new(
        Arc::new(meta),
        vec![sim.data_server(0, volume)],
        Placement::round_robin(),
        opts,
    );
    fs.ensure_volumes().unwrap();

    let mut healthy = Vec::new();
    for i in 0..n_healthy {
        let path = format!("/h{i}");
        let data = vec![i as u8 + 1; i + 1];
        fs.write_file(&path, &data).unwrap();
        healthy.push((path, data));
    }
    // Dangling: a real file whose data is then deleted behind the
    // filesystem's back.
    let mut conn = sim.connect(0);
    for i in 0..n_dangling {
        let path = format!("/g{i}");
        fs.write_file(&path, b"doomed").unwrap();
        let raw = std::fs::read_to_string(meta_dir.path().join(format!("g{i}"))).unwrap();
        let stub = Stub::parse(&raw).unwrap();
        conn.unlink(&stub.data_path).unwrap();
    }
    // Zero-length stubs: what a crash between directory entry and stub
    // write leaves behind.
    for i in 0..n_empty {
        std::fs::write(meta_dir.path().join(format!("e{i}")), b"").unwrap();
    }
    // Corrupt stubs: bytes that are not a stub at all.
    for i in 0..n_corrupt {
        std::fs::write(meta_dir.path().join(format!("c{i}")), b"not a stub\n").unwrap();
    }
    // Orphans: data files no stub references.
    for i in 0..n_orphan {
        let fd = conn
            .open(
                &format!("{volume}/orphan{i}.data"),
                OpenFlags::WRITE | OpenFlags::CREATE,
                0o644,
            )
            .unwrap();
        conn.close(fd).unwrap();
    }
    (fs, healthy)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn repair_converges_and_is_idempotent(
        n_healthy in 0usize..6,
        n_dangling in 0usize..4,
        n_empty in 0usize..4,
        n_corrupt in 0usize..4,
        n_orphan in 0usize..4,
    ) {
        let sim = SimTss::builder().cache_bytes(None).build();
        let meta_dir = TempDir::new();
        let (fs, healthy) =
            plant(&sim, &meta_dir, "/vol", n_healthy, n_dangling, n_empty, n_corrupt, n_orphan);

        // The scan classifies exactly what was planted.
        let report = fsck(&fs).unwrap();
        prop_assert_eq!(report.healthy.len(), n_healthy);
        prop_assert_eq!(report.dangling_stubs.len(), n_dangling + n_empty);
        prop_assert_eq!(report.corrupt_stubs.len(), n_corrupt);
        prop_assert_eq!(report.orphaned_data.len(), n_orphan);
        prop_assert!(report.unreachable.is_empty());

        // One pass removes exactly the reported artifacts…
        let all = RepairOptions { remove_dangling_stubs: true, remove_orphans: true };
        let removed = repair(&fs, &report, all).unwrap();
        prop_assert_eq!(removed as usize, n_dangling + n_empty + n_corrupt + n_orphan);

        // …and converges: the rescan is clean with the healthy set intact.
        let clean = fsck(&fs).unwrap();
        prop_assert!(clean.is_clean(), "not clean after repair: {:?}", clean);
        prop_assert_eq!(clean.healthy.len(), n_healthy);

        // Idempotence: a second pass has nothing to do.
        prop_assert_eq!(repair(&fs, &clean, all).unwrap(), 0);
        let still = fsck(&fs).unwrap();
        prop_assert!(still.is_clean());

        // Healthy files are byte-identical through both passes.
        for (path, data) in &healthy {
            prop_assert_eq!(&fs.read_file(path).unwrap(), data);
        }
    }
}

//! Mass-tenant scenario suite: fleets of simulated clients over the
//! in-memory network and virtual clock, with asserted telemetry
//! envelopes.
//!
//! Every scenario is a deterministic function of its seed; failures
//! print a `SCENARIO_SEED=<n>` repro line (and small fleets are
//! delta-debugged to a minimal client set). `SCENARIO_SCALE` resizes
//! every fleet: `SCENARIO_SCALE=0.1` for quick iteration,
//! `SCENARIO_SCALE=4` to push soaks toward headline tenancy. Release
//! builds default an order of magnitude wider than debug builds —
//! the stampede crosses 1000 virtual clients there.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use chirp_server::KeyRing;
use controlplane::tree::{distribute, ideal_depth, TreeConfig, TreeReport, TreeTarget};
use simharness::harness::{auth, sim_retry, SIM_TIMEOUT};
use simharness::scenario::{fleet_size, scenario_seed, standard_setup, Phase, Role, Scenario};
use simharness::SimTss;
use telemetry::{MetricsSnapshot, Registry};
use tss_core::cfs::{Cfs, CfsConfig};

fn run(scenario: Scenario) {
    match scenario.run() {
        // Visible under --nocapture; EXPERIMENTS.md records a run.
        Ok(report) => eprintln!("{report}"),
        Err(failure) => panic!("{failure}"),
    }
}

// ---------------------------------------------------------------- SP5
// init stampede: a wide fleet of one-round clients cold-opens the same
// shared tree through one reactor-core server — the paper's SP5 burst
// where every batch job stats, lists, and reads the software tree at
// once.

fn stampede(seed: u64, fleet: usize) -> Scenario {
    Scenario::new("sp5-init-stampede", seed)
        .servers(1)
        .setup(standard_setup)
        .phase(Phase::new("stampede").with(fleet, Role::Reader, 1))
        .check("zero-failures", |r| {
            (r.failures() == 0)
                .then_some(())
                .ok_or_else(|| format!("{} client failures", r.failures()))
        })
        .check("every-client-served", |r| {
            (r.ops() == r.fleet as u64)
                .then_some(())
                .ok_or_else(|| format!("{} ops for {} one-round clients", r.ops(), r.fleet))
        })
        .check("p99-latency", |r| {
            let p99 = r.latency_quantile(0.99);
            (p99 < Duration::from_millis(500))
                .then_some(())
                .ok_or_else(|| format!("p99 {p99:?} exceeds 500ms"))
        })
        .check("aggregate-throughput", |r| {
            (r.ops_per_sec() > 20.0)
                .then_some(())
                .ok_or_else(|| format!("{:.1} ops/s under the 20/s floor", r.ops_per_sec()))
        })
        .check("flat-rss", |r| match r.rss_grown {
            Some(b) if b >= 96 << 20 => Err(format!("RSS grew {}MiB", b >> 20)),
            _ => Ok(()),
        })
        .check("server-saw-the-burst", |r| {
            // stat + getdir + getfile per client, plus one auth each.
            let rpcs = r.servers.counter_sum("rpc.");
            (rpcs >= 4 * r.fleet as u64)
                .then_some(())
                .ok_or_else(|| format!("only {rpcs} server RPCs for {} clients", r.fleet))
        })
        .check("every-session-authenticated", |r| {
            let granted = r.servers.counter("auth.success").unwrap_or(0);
            (granted == r.fleet as u64)
                .then_some(())
                .ok_or_else(|| format!("{granted} auth grants for {} sessions", r.fleet))
        })
        .check("no-backpressure", |r| {
            let bp = r.servers.counter("reactor.backpressure").unwrap_or(0);
            (bp == 0)
                .then_some(())
                .ok_or_else(|| format!("{bp} backpressure events on sub-KiB replies"))
        })
}

#[test]
fn sp5_init_stampede() {
    let fleet = fleet_size(150, 1200);
    if !cfg!(debug_assertions) && std::env::var("SCENARIO_SCALE").is_err() {
        assert!(fleet >= 1000, "release stampede must cross 1000 clients");
    }
    run(stampede(scenario_seed(1), fleet));
}

// ------------------------------------------------------------ fan-out
// CI-artifact distribution: one publisher pushes a seeded artifact to
// every server over a THIRDPUT tree, then a consumer fleet pulls it
// from random replicas. The tree's structural envelope (log depth, no
// retries, full coverage) is asserted alongside the fleet's.

static ARTIFACT_LEN: AtomicUsize = AtomicUsize::new(0);
static FANOUT: Mutex<Option<(TreeReport, MetricsSnapshot)>> = Mutex::new(None);

fn publish_artifact(sim: &SimTss) {
    let len = ARTIFACT_LEN.load(Ordering::Relaxed);
    let body: Vec<u8> = (0..len).map(|i| (i % 249) as u8).collect();
    sim.connect(0)
        .putfile("/artifact", 0o644, &body)
        .expect("publish artifact");
    let source = TreeTarget::new(&sim.endpoint(0), "/artifact");
    let targets: Vec<TreeTarget> = (1..sim.servers().len())
        .map(|i| TreeTarget::new(&sim.endpoint(i), "/artifact"))
        .collect();
    let cfg = TreeConfig {
        clock: sim.clock().clone(),
        ..TreeConfig::default()
    };
    let conn = |endpoint: &str| {
        let mut cfg = CfsConfig::new(endpoint, auth());
        cfg.timeout = SIM_TIMEOUT;
        cfg.retry = sim_retry();
        cfg.dialer = sim.dialer();
        cfg.clock = sim.clock().clone();
        Arc::new(Cfs::new(cfg))
    };
    let registry = Registry::new();
    let report = distribute(&source, &targets, conn, &cfg, Some(&registry), None);
    *FANOUT.lock().unwrap() = Some((report, registry.snapshot()));
}

#[test]
fn ci_artifact_fanout_over_thirdput_tree() {
    let seed = scenario_seed(2);
    let servers = fleet_size(12, 24);
    let consumers = fleet_size(60, 400);
    // Seed-derived artifact size, stashed where the phase hook (a
    // plain fn) can read it.
    let len = 50_000 + (seed as usize % 7) * 10_000;
    ARTIFACT_LEN.store(len, Ordering::Relaxed);

    let scenario = Scenario::new("ci-artifact-fanout", seed)
        .servers(servers)
        .phase(Phase::new("publish").on_start(publish_artifact))
        .phase(Phase::new("consume").with(
            consumers,
            Role::PathReader {
                path: "/artifact".into(),
                len,
            },
            2,
        ))
        .check("zero-failures", |r| {
            (r.failures() == 0)
                .then_some(())
                .ok_or_else(|| format!("{} consumers missed the artifact", r.failures()))
        })
        .check("every-pull-counted", |r| {
            (r.ops() == 2 * r.fleet as u64)
                .then_some(())
                .ok_or_else(|| format!("{} pulls for {} two-round consumers", r.ops(), r.fleet))
        });
    run(scenario);

    // The tree's own envelope, from the stash the publish hook filled.
    let (report, metrics) = FANOUT.lock().unwrap().take().expect("publish hook ran");
    let tree_check = |ok: bool, msg: String| {
        assert!(
            ok,
            "fan-out tree envelope violated: {msg}\n\
             reproduce with: SCENARIO_SEED={seed} cargo test -p simharness --test scenarios_sim"
        );
    };
    let replicas = servers - 1;
    tree_check(
        report.failed.is_empty(),
        format!("{} targets failed", report.failed.len()),
    );
    tree_check(
        report.completed.len() == replicas,
        format!("{}/{replicas} replicas completed", report.completed.len()),
    );
    tree_check(
        report.hops == replicas as u64,
        format!("{} hops", report.hops),
    );
    tree_check(
        report.depth == ideal_depth(replicas),
        format!("depth {} vs ideal {}", report.depth, ideal_depth(replicas)),
    );
    tree_check(report.retries == 0, format!("{} retries", report.retries));
    tree_check(
        metrics.counter("tree.hops") == Some(replicas as u64),
        format!("telemetry hops {:?}", metrics.counter("tree.hops")),
    );
}

// ---------------------------------------------------------- ACL churn
// Thousands of grant/revoke edits for a 4096-user virtual population,
// spread over a churner fleet each working its own directory.

fn acl_churn(seed: u64, fleet: usize) -> Scenario {
    const ROUNDS: usize = 4;
    Scenario::new("mass-acl-churn", seed)
        .servers(1)
        .phase(Phase::new("churn").with(fleet, Role::AclChurner, ROUNDS))
        .check("zero-failures", |r| {
            (r.failures() == 0)
                .then_some(())
                .ok_or_else(|| format!("{} churn failures", r.failures()))
        })
        .check("every-edit-counted", |r| {
            (r.ops() == (ROUNDS * r.fleet) as u64)
                .then_some(())
                .ok_or_else(|| format!("{} ops for {} four-round churners", r.ops(), r.fleet))
        })
        .check("server-counted-the-edits", |r| {
            let edits = r.servers.counter("rpc.setacl.count").unwrap_or(0);
            (edits == (ROUNDS * r.fleet) as u64)
                .then_some(())
                .ok_or_else(|| format!("{edits} SETACL RPCs for {} churners", r.fleet))
        })
        .check("p99-latency", |r| {
            let p99 = r.latency_quantile(0.99);
            (p99 < Duration::from_millis(500))
                .then_some(())
                .ok_or_else(|| format!("p99 {p99:?} exceeds 500ms"))
        })
}

#[test]
fn mass_acl_churn() {
    run(acl_churn(scenario_seed(3), fleet_size(80, 500)));
}

// -------------------------------------------------------- mixed soak
// A ramp into a steady state mixing every role — readers, writers,
// replicators, ACL churners, and genuine auth stormers — across a
// three-server instance, watching failures, latency, and RSS.

const SOAK_SUBJECT: &str = "/O=Sim/CN=soaker";
const SOAK_KEY: &[u8] = b"soak-credential-key";

fn mixed_soak(seed: u64, unit: usize) -> Scenario {
    let ring = KeyRing::new();
    ring.register("globus", SOAK_SUBJECT, SOAK_KEY);
    let stormer = Role::AuthStormer {
        method: "globus".into(),
        name: SOAK_SUBJECT.into(),
        key: SOAK_KEY.to_vec(),
        expect_success: true,
    };
    Scenario::new("mixed-fleet-soak", seed)
        .servers(3)
        .keys(ring)
        .setup(standard_setup)
        .phase(Phase::new("ramp-1").with(unit, Role::Reader, 2))
        .phase(
            Phase::new("ramp-2")
                .with(2 * unit, Role::Reader, 2)
                .with(unit, Role::Writer, 2),
        )
        .phase(
            Phase::new("steady")
                .with(3 * unit, Role::Reader, 3)
                .with(2 * unit, Role::Writer, 3)
                .with(unit, Role::Replicator, 2)
                .with(unit, Role::AclChurner, 3)
                .with(unit, stormer, 2),
        )
        .check("zero-failures", |r| {
            (r.failures() == 0)
                .then_some(())
                .ok_or_else(|| format!("{} failures across the soak", r.failures()))
        })
        .check("every-client-worked", |r| {
            (r.ops() >= r.fleet as u64)
                .then_some(())
                .ok_or_else(|| format!("{} ops below fleet size {}", r.ops(), r.fleet))
        })
        .check("every-session-authenticated", |r| {
            let granted = r.servers.counter("auth.success").unwrap_or(0);
            (granted >= r.fleet as u64)
                .then_some(())
                .ok_or_else(|| format!("{granted} grants for {} sessions", r.fleet))
        })
        .check("p99-latency", |r| {
            let p99 = r.latency_quantile(0.99);
            (p99 < Duration::from_secs(1))
                .then_some(())
                .ok_or_else(|| format!("p99 {p99:?} exceeds 1s"))
        })
        .check("flat-rss", |r| match r.rss_grown {
            Some(b) if b >= 128 << 20 => Err(format!("RSS grew {}MiB", b >> 20)),
            _ => Ok(()),
        })
}

#[test]
fn mixed_fleet_soak() {
    run(mixed_soak(scenario_seed(4), fleet_size(12, 60)));
}

// -------------------------------------------------------- auth storm
// Hundreds of concurrent challenge–response handshakes, genuine keys
// racing forged ones: every handshake costs a nonce and an HMAC
// verification, the server's auth telemetry must reconcile exactly
// with the client-side ledger, and no forged credential may land.

const STORM_SUBJECT: &str = "/O=Sim/CN=stormer";
const STORM_KEY: &[u8] = b"storm-credential-key";

fn auth_storm(seed: u64, genuine: usize, forged: usize) -> Scenario {
    const ROUNDS: usize = 2;
    let ring = KeyRing::new();
    ring.register("globus", STORM_SUBJECT, STORM_KEY);
    Scenario::new("mass-auth-storm", seed)
        .servers(2)
        .keys(ring)
        .phase(
            Phase::new("storm")
                .with(
                    genuine,
                    Role::AuthStormer {
                        method: "globus".into(),
                        name: STORM_SUBJECT.into(),
                        key: STORM_KEY.to_vec(),
                        expect_success: true,
                    },
                    ROUNDS,
                )
                .with(
                    forged,
                    Role::AuthStormer {
                        method: "globus".into(),
                        name: STORM_SUBJECT.into(),
                        key: b"not-the-registered-key".to_vec(),
                        expect_success: false,
                    },
                    ROUNDS,
                ),
        )
        .check("no-surprises", |r| {
            // A forged key landing, or a genuine key refused, counts
            // here — either is an auth break, not load noise.
            (r.failures() == 0)
                .then_some(())
                .ok_or_else(|| format!("{} handshakes broke expectation", r.failures()))
        })
        .check("every-handshake-resolved", |r| {
            let total = r.ops() + r.denied();
            (total == (ROUNDS * r.fleet) as u64)
                .then_some(())
                .ok_or_else(|| format!("{total} outcomes for {} two-round stormers", r.fleet))
        })
        .check("server-ledger-reconciles", |r| {
            let challenged = r.servers.counter("auth.challenge").unwrap_or(0);
            let granted = r.servers.counter("auth.success").unwrap_or(0);
            let refused = r.servers.counter("auth.failure").unwrap_or(0);
            if challenged != (ROUNDS * r.fleet) as u64 {
                Err(format!("{challenged} challenges for {} stormers", r.fleet))
            } else if granted != r.ops() {
                Err(format!(
                    "server granted {granted}, clients counted {}",
                    r.ops()
                ))
            } else if refused != r.denied() {
                Err(format!(
                    "server refused {refused}, clients counted {}",
                    r.denied()
                ))
            } else {
                Ok(())
            }
        })
        .check("handshake-throughput", |r| {
            let rate = (r.ops() + r.denied()) as f64 / r.wall_elapsed.as_secs_f64().max(1e-9);
            (rate > 25.0)
                .then_some(())
                .ok_or_else(|| format!("{rate:.1} handshakes/s under the 25/s floor"))
        })
}

#[test]
fn mass_auth_storm() {
    run(auth_storm(
        scenario_seed(5),
        fleet_size(80, 400),
        fleet_size(20, 100),
    ));
}

// ------------------------------------------------- rotation under load
// A storm with key alpha, then the ring rotates to beta at the phase
// boundary: stale-alpha handshakes must be refused from the instant of
// rotation, beta handshakes must land, and nothing else may wobble.
// The ring lives in a static so the phase hook (a plain fn) can reach
// it; setup re-arms alpha so every (re-)execution starts pristine.

static ROTATION_RING: OnceLock<KeyRing> = OnceLock::new();
const ROTOR_SUBJECT: &str = "/O=Sim/CN=rotor";
const KEY_ALPHA: &[u8] = b"rotation-key-alpha";
const KEY_BETA: &[u8] = b"rotation-key-beta";

fn rotation_ring() -> &'static KeyRing {
    ROTATION_RING.get_or_init(KeyRing::new)
}

fn arm_alpha(_sim: &SimTss) {
    let ring = rotation_ring();
    if !ring.rotate("globus", ROTOR_SUBJECT, KEY_ALPHA) {
        ring.register("globus", ROTOR_SUBJECT, KEY_ALPHA);
    }
}

fn rotate_to_beta(_sim: &SimTss) {
    rotation_ring().rotate("globus", ROTOR_SUBJECT, KEY_BETA);
}

fn rotation_under_load(seed: u64, unit: usize) -> Scenario {
    const ROUNDS: usize = 2;
    let stormer = |key: &[u8], expect_success: bool| Role::AuthStormer {
        method: "globus".into(),
        name: ROTOR_SUBJECT.into(),
        key: key.to_vec(),
        expect_success,
    };
    Scenario::new("rotation-under-load", seed)
        .servers(2)
        .keys(rotation_ring().clone())
        .setup(arm_alpha)
        .phase(Phase::new("alpha-era").with(2 * unit, stormer(KEY_ALPHA, true), ROUNDS))
        .phase(
            Phase::new("beta-era")
                .on_start(rotate_to_beta)
                .with(unit, stormer(KEY_ALPHA, false), ROUNDS)
                .with(2 * unit, stormer(KEY_BETA, true), ROUNDS),
        )
        .check("no-surprises", |r| {
            // Stale alpha landing after rotation, or live keys refused.
            (r.failures() == 0)
                .then_some(())
                .ok_or_else(|| format!("{} handshakes broke the rotation contract", r.failures()))
        })
        .check("every-handshake-resolved", |r| {
            let total = r.ops() + r.denied();
            (total == (ROUNDS * r.fleet) as u64)
                .then_some(())
                .ok_or_else(|| format!("{total} outcomes for {} stormers", r.fleet))
        })
        .check("stale-keys-were-refused", |r| {
            // Shrink-sound lower bound: with any stale-alpha client
            // surviving, denials are non-zero; the exact share is
            // checked by the fleet composition itself.
            (r.fleet == 0 || r.denied() > 0 || r.ops() == (ROUNDS * r.fleet) as u64)
                .then_some(())
                .ok_or_else(|| "no denials despite stale-alpha stormers".to_string())
        })
}

#[test]
fn key_rotation_under_auth_load() {
    run(rotation_under_load(scenario_seed(6), fleet_size(25, 120)));
}

// --------------------------------------------------- regression corpus
// Satellite: the worst `SCENARIO_SEED` each scenario has produced, kept
// green at small fixed fleets as a fast-tier guard. When a scenario
// failure is minimized, pin its seed here so the regression stays
// covered even after the default seeds move on.

#[test]
fn scenario_seed_regression_corpus() {
    // Initial corpus: the suite's launch seeds plus the seed that
    // exposed the reactor self-THIRDPUT stall during bring-up (a
    // replicator pushing to its own server parks the reactor until
    // the client timeout; the role now always picks a peer).
    for seed in [1, 3] {
        run(stampede(seed, 12));
    }
    for seed in [3] {
        run(acl_churn(seed, 8));
    }
    for seed in [4, 7] {
        run(mixed_soak(seed, 2));
    }
    for seed in [5] {
        run(auth_storm(seed, 10, 4));
    }
}

//! An executable model of one Chirp server.
//!
//! [`ModelServer`] is the specification half of the differential
//! checker: an in-memory directory tree with the same ACL inheritance,
//! jail normalization, fd-table, and error-ordering semantics as the
//! real handler stack in `chirp-server`, but small enough to audit by
//! eye. The real server consults the host filesystem; the model holds
//! a [`BTreeMap`] tree. Everywhere the real code asks the kernel a
//! question (`is_dir`, `read_to_string` of an ACL file, `create_dir`),
//! the model answers from the tree — including the *error* the kernel
//! would have produced (`ENOENT` → `NotFound`, `ENOTDIR` →
//! `NotADirectory`), in the same order the handlers ask.
//!
//! Fidelity notes, matching `chirp-server/src/handlers.rs`:
//!
//! * File content is held behind `Rc<RefCell<...>>` shared between the
//!   tree and open descriptors, so unlink/rename/truncate behave like
//!   real inodes: open handles keep working on unlinked files, and an
//!   `O_TRUNC` or `truncate()` is visible through every open fd.
//! * Descriptors allocate lowest-free-slot, as the real
//!   [`chirp_server`] fd table does, so generated sequences can refer
//!   to descriptors by number and get identical `BadFd` behavior on
//!   both sides.
//! * Every directory carries a materialized ACL, because `mkdir` on
//!   the real server always stores one (inherit-on-create); the
//!   effective-ACL *walk* is still implemented for paths that do not
//!   exist, since rights checks happen before existence checks.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use chirp_proto::{ChirpError, ChirpResult, OpenFlags};
use chirp_server::acl::{Acl, Rights};

use crate::diff::OpResult;

/// Shared file bytes — the model's inode.
type Content = Rc<RefCell<Vec<u8>>>;

#[derive(Debug)]
enum Node {
    File(Content),
    Dir(DirNode),
}

#[derive(Debug)]
struct DirNode {
    /// Materialized ACL; present on every directory (see module docs).
    acl: Acl,
    children: BTreeMap<String, Node>,
}

impl DirNode {
    fn new(acl: Acl) -> DirNode {
        DirNode {
            acl,
            children: BTreeMap::new(),
        }
    }
}

#[derive(Debug)]
struct ModelFd {
    content: Content,
    readable: bool,
    writable: bool,
}

/// The model server: one client session against one in-memory tree.
#[derive(Debug)]
pub struct ModelServer {
    root: DirNode,
    subject: String,
    fds: Vec<Option<ModelFd>>,
    max_open: usize,
}

impl ModelServer {
    /// A fresh tree whose root carries `root_acl`, serving a session
    /// authenticated as `subject`.
    pub fn new(subject: &str, root_acl: Acl) -> ModelServer {
        ModelServer {
            root: DirNode::new(root_acl),
            subject: subject.to_string(),
            fds: Vec::new(),
            max_open: 256,
        }
    }

    // ---- path plumbing (mirrors chirp-server's Jail) -----------------

    /// Jail normalization: `.` and empty components vanish, `..` pops
    /// but never escapes, the ACL metadata name is unreachable.
    fn components(path: &str) -> ChirpResult<Vec<String>> {
        let mut parts: Vec<String> = Vec::new();
        for comp in path.split('/') {
            match comp {
                "" | "." => {}
                ".." => {
                    parts.pop();
                }
                ".__acl" => return Err(ChirpError::NotAuthorized),
                c => parts.push(c.to_string()),
            }
        }
        Ok(parts)
    }

    fn resolve_parent(path: &str) -> ChirpResult<(Vec<String>, String)> {
        let mut parts = Self::components(path)?;
        let leaf = parts.pop().ok_or(ChirpError::InvalidRequest)?;
        Ok((parts, leaf))
    }

    /// The directory node at `comps`, if the whole path exists as
    /// directories. `Ok(None)` = missing, `Err` = a file in the way.
    fn dir_at(&self, comps: &[String]) -> ChirpResult<Option<&DirNode>> {
        let mut dir = &self.root;
        for comp in comps {
            match dir.children.get(comp) {
                None => return Ok(None),
                Some(Node::File(_)) => return Err(ChirpError::NotADirectory),
                Some(Node::Dir(d)) => dir = d,
            }
        }
        Ok(Some(dir))
    }

    fn dir_at_mut(&mut self, comps: &[String]) -> ChirpResult<Option<&mut DirNode>> {
        let mut dir = &mut self.root;
        for comp in comps {
            match dir.children.get_mut(comp) {
                None => return Ok(None),
                Some(Node::File(_)) => return Err(ChirpError::NotADirectory),
                Some(Node::Dir(d)) => dir = d,
            }
        }
        Ok(Some(dir))
    }

    /// `host.is_dir()` — false for missing paths and on any error,
    /// exactly like `std::path::Path::is_dir`.
    fn is_dir(&self, comps: &[String]) -> bool {
        matches!(self.dir_at(comps), Ok(Some(_)))
    }

    // ---- ACL resolution (mirrors Acl::load_effective) ----------------

    /// Reading `<comps>/.__acl`: `Ok(Some)` if the directory exists
    /// (every model directory has an ACL), `Ok(None)` for `ENOENT`
    /// (missing directory — the real walk skips it), `Err` for
    /// `ENOTDIR` (a file somewhere in the path — the real walk
    /// propagates it).
    fn acl_file_at(&self, comps: &[String]) -> ChirpResult<Option<&Acl>> {
        let mut dir = &self.root;
        for comp in comps {
            match dir.children.get(comp) {
                None => return Ok(None),
                // `<file>/.__acl` and `<file>/more/.__acl` are both
                // ENOTDIR, whether the file is the last component or
                // not.
                Some(Node::File(_)) => return Err(ChirpError::NotADirectory),
                Some(Node::Dir(d)) => dir = d,
            }
        }
        Ok(Some(&dir.acl))
    }

    /// The ACL governing the directory at `comps`: its own if the
    /// directory exists, else the nearest existing ancestor's.
    fn effective_acl(&self, comps: &[String]) -> ChirpResult<Acl> {
        let mut cur = comps.to_vec();
        loop {
            if let Some(acl) = self.acl_file_at(&cur)? {
                return Ok(acl.clone());
            }
            if cur.pop().is_none() {
                return Ok(Acl::new());
            }
        }
    }

    fn rights_in(&self, dir: &[String]) -> ChirpResult<Rights> {
        Ok(self.effective_acl(dir)?.rights_of(&self.subject))
    }

    fn require_rights(&self, dir: &[String], any_of: Rights) -> ChirpResult<Rights> {
        let r = self.rights_in(dir)?;
        if r.intersects(any_of) {
            Ok(r)
        } else {
            Err(ChirpError::NotAuthorized)
        }
    }

    // ---- fd table (mirrors chirp-server's FdTable) -------------------

    fn fd_insert(&mut self, fd: ModelFd) -> ChirpResult<i32> {
        for (i, slot) in self.fds.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(fd);
                return Ok(i as i32);
            }
        }
        if self.fds.len() >= self.max_open {
            return Err(ChirpError::TooManyOpen);
        }
        self.fds.push(Some(fd));
        Ok((self.fds.len() - 1) as i32)
    }

    fn fd_get(&self, fd: i32) -> ChirpResult<&ModelFd> {
        usize::try_from(fd)
            .ok()
            .and_then(|i| self.fds.get(i))
            .and_then(|s| s.as_ref())
            .ok_or(ChirpError::BadFd)
    }

    fn fd_remove(&mut self, fd: i32) -> ChirpResult<()> {
        let slot = usize::try_from(fd)
            .ok()
            .and_then(|i| self.fds.get_mut(i))
            .ok_or(ChirpError::BadFd)?;
        if slot.take().is_none() {
            return Err(ChirpError::BadFd);
        }
        Ok(())
    }

    /// The session dropped: every descriptor is closed, and descriptor
    /// numbering restarts from zero (a fresh connection gets a fresh
    /// fd table).
    pub fn disconnect(&mut self) {
        self.fds.clear();
    }

    /// Currently open descriptor numbers. Because the model and the
    /// real fd table allocate identically, this is also the set open
    /// on the real connection — the differential runner uses it to
    /// sweep a namespace's descriptors without reconnecting.
    pub fn open_fds(&self) -> Vec<i32> {
        self.fds
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| i as i32)
            .collect()
    }

    // ---- operations --------------------------------------------------

    /// `OPEN`: rights from the parent directory, then POSIX open
    /// semantics against the tree.
    pub fn open(&mut self, path: &str, flags: OpenFlags) -> ChirpResult<i32> {
        let (dir, leaf) = Self::resolve_parent(path)?;
        let mut need = Rights::empty();
        if flags.contains(OpenFlags::READ) {
            need |= Rights::READ;
        }
        if flags.writes() {
            need |= Rights::WRITE;
        }
        if need.is_empty() {
            return Err(ChirpError::InvalidRequest);
        }
        let have = self.rights_in(&dir)?;
        if !have.contains(need) {
            return Err(ChirpError::NotAuthorized);
        }
        let mut full = dir.clone();
        full.push(leaf.clone());
        if self.is_dir(&full) {
            return Err(ChirpError::IsADirectory);
        }
        let create = flags.contains(OpenFlags::CREATE);
        let exclusive = flags.contains(OpenFlags::EXCLUSIVE);
        let truncate = flags.contains(OpenFlags::TRUNCATE);
        let parent = match self.dir_at_mut(&dir)? {
            Some(p) => p,
            // Opening under a missing directory is the kernel's ENOENT.
            None => return Err(ChirpError::NotFound),
        };
        let content = match parent.children.get(&leaf) {
            Some(Node::File(f)) => {
                if create && exclusive {
                    return Err(ChirpError::AlreadyExists);
                }
                if truncate {
                    f.borrow_mut().clear();
                }
                f.clone()
            }
            Some(Node::Dir(_)) => return Err(ChirpError::IsADirectory),
            None => {
                if !create {
                    return Err(ChirpError::NotFound);
                }
                let f: Content = Rc::new(RefCell::new(Vec::new()));
                parent.children.insert(leaf, Node::File(f.clone()));
                f
            }
        };
        self.fd_insert(ModelFd {
            content,
            readable: flags.contains(OpenFlags::READ),
            writable: flags.contains(OpenFlags::WRITE) || flags.contains(OpenFlags::APPEND),
        })
    }

    /// `CLOSE`.
    pub fn close(&mut self, fd: i32) -> ChirpResult<()> {
        self.fd_remove(fd)
    }

    /// `PREAD`: up to `length` bytes at `offset`; short at EOF.
    pub fn pread(&self, fd: i32, length: u64, offset: u64) -> ChirpResult<Vec<u8>> {
        let f = self.fd_get(fd)?;
        if length == 0 {
            // The server's read loop never consults the kernel for an
            // empty buffer, so even a write-only descriptor "reads"
            // zero bytes successfully.
            return Ok(Vec::new());
        }
        if !f.readable {
            // read(2) on a write-only descriptor: EBADF, which the
            // server maps to the generic Io code.
            return Err(ChirpError::Io);
        }
        let data = f.content.borrow();
        let start = (offset as usize).min(data.len());
        let end = (offset as usize)
            .saturating_add(length as usize)
            .min(data.len());
        Ok(data[start..end].to_vec())
    }

    /// `PWRITE`: write at `offset`, zero-filling any gap (sparse
    /// writes read back as zeros).
    pub fn pwrite(&self, fd: i32, data: &[u8], offset: u64) -> ChirpResult<u64> {
        let f = self.fd_get(fd)?;
        if data.is_empty() {
            // write_all_at on an empty slice never calls write(2), so
            // it succeeds even on a read-only descriptor.
            return Ok(0);
        }
        if !f.writable {
            return Err(ChirpError::Io);
        }
        let mut content = f.content.borrow_mut();
        let end = offset as usize + data.len();
        if content.len() < end {
            content.resize(end, 0);
        }
        content[offset as usize..end].copy_from_slice(data);
        Ok(data.len() as u64)
    }

    /// `FSTAT`: the open file's current size. Descriptors always refer
    /// to files (opens reject directories).
    pub fn fstat(&self, fd: i32) -> ChirpResult<(bool, u64)> {
        let f = self.fd_get(fd)?;
        let len = f.content.borrow().len() as u64;
        Ok((false, len))
    }

    /// `FSYNC`: durability is invisible to the model (it has no
    /// volatile/stable distinction), so the semantics are exactly the
    /// descriptor check — `BadFd` for a stale or never-opened number,
    /// success otherwise.
    pub fn fsync(&self, fd: i32) -> ChirpResult<()> {
        self.fd_get(fd).map(|_| ())
    }

    /// `STAT`: `(is_dir, size)`; rights come from the governing
    /// directory (the parent, or the root for the root itself).
    pub fn stat(&self, path: &str) -> ChirpResult<(bool, u64)> {
        let governing = match Self::resolve_parent(path) {
            Ok((dir, _leaf)) => dir,
            Err(_) => Vec::new(),
        };
        self.require_rights(&governing, Rights::READ | Rights::LIST)?;
        let comps = Self::components(path)?;
        if comps.is_empty() {
            return Ok((true, 0));
        }
        let (parent, leaf) = (&comps[..comps.len() - 1], &comps[comps.len() - 1]);
        match self.dir_at(parent)? {
            None => Err(ChirpError::NotFound),
            Some(p) => match p.children.get(leaf) {
                None => Err(ChirpError::NotFound),
                Some(Node::File(f)) => Ok((false, f.borrow().len() as u64)),
                Some(Node::Dir(_)) => Ok((true, 0)),
            },
        }
    }

    /// `UNLINK`.
    pub fn unlink(&mut self, path: &str) -> ChirpResult<()> {
        let (dir, leaf) = Self::resolve_parent(path)?;
        self.require_rights(&dir, Rights::WRITE | Rights::DELETE)?;
        let mut full = dir.clone();
        full.push(leaf.clone());
        if self.is_dir(&full) {
            return Err(ChirpError::IsADirectory);
        }
        match self.dir_at_mut(&dir)? {
            None => Err(ChirpError::NotFound),
            Some(p) => match p.children.get(&leaf) {
                Some(Node::File(_)) => {
                    // Open descriptors keep their Rc; only the name
                    // goes away, like a real unlinked inode.
                    p.children.remove(&leaf);
                    Ok(())
                }
                Some(Node::Dir(_)) => Err(ChirpError::IsADirectory),
                None => Err(ChirpError::NotFound),
            },
        }
    }

    /// `RENAME` (files only — the generator never moves directories).
    pub fn rename(&mut self, from: &str, to: &str) -> ChirpResult<()> {
        let (from_dir, from_leaf) = Self::resolve_parent(from)?;
        let (to_dir, to_leaf) = Self::resolve_parent(to)?;
        self.require_rights(&from_dir, Rights::WRITE | Rights::DELETE)?;
        self.require_rights(&to_dir, Rights::WRITE)?;
        // `src.exists()`: false on ENOENT *and* ENOTDIR, like
        // Path::exists.
        let src_exists = match self.dir_at(&from_dir) {
            Ok(Some(p)) => p.children.contains_key(&from_leaf),
            _ => false,
        };
        if !src_exists {
            return Err(ChirpError::NotFound);
        }
        if from_dir == to_dir && from_leaf == to_leaf {
            // rename(2) of a name onto itself succeeds and changes
            // nothing.
            return Ok(());
        }
        // Destination parent must exist as a directory.
        match self.dir_at(&to_dir)? {
            None => return Err(ChirpError::NotFound),
            Some(p) => {
                if matches!(p.children.get(&to_leaf), Some(Node::Dir(_))) {
                    // Renaming a file over a directory: EISDIR.
                    return Err(ChirpError::IsADirectory);
                }
            }
        }
        let node = match self.dir_at_mut(&from_dir)? {
            Some(p) => p.children.remove(&from_leaf).expect("checked above"),
            None => return Err(ChirpError::NotFound),
        };
        match self.dir_at_mut(&to_dir)? {
            Some(p) => {
                p.children.insert(to_leaf, node);
                Ok(())
            }
            None => Err(ChirpError::NotFound),
        }
    }

    /// `MKDIR`: ordinary create under the write right (inheriting the
    /// parent's effective ACL), or a reserve create under `v(...)`
    /// (fresh ACL granting the caller exactly the reserved rights).
    pub fn mkdir(&mut self, path: &str) -> ChirpResult<()> {
        let subject = self.subject.clone();
        let (dir, leaf) = Self::resolve_parent(path)?;
        let have = self.rights_in(&dir)?;
        if have.contains(Rights::WRITE) {
            let acl = {
                self.create_dir_check(&dir, &leaf)?;
                self.effective_acl(&dir)?
            };
            self.insert_dir(&dir, leaf, acl);
            return Ok(());
        }
        if have.contains(Rights::RESERVE) {
            let acl = self.effective_acl(&dir)?;
            let granted = acl.reserve_rights_of(&subject);
            if granted.is_empty() {
                return Err(ChirpError::NotAuthorized);
            }
            self.create_dir_check(&dir, &leaf)?;
            let fresh =
                Acl::single(&subject, &format!("{granted}")).expect("rights render round-trips");
            self.insert_dir(&dir, leaf, fresh);
            return Ok(());
        }
        Err(ChirpError::NotAuthorized)
    }

    /// The error `create_dir` would produce, without creating.
    fn create_dir_check(&self, dir: &[String], leaf: &str) -> ChirpResult<()> {
        match self.dir_at(dir)? {
            None => Err(ChirpError::NotFound),
            Some(p) => {
                if p.children.contains_key(leaf) {
                    Err(ChirpError::AlreadyExists)
                } else {
                    Ok(())
                }
            }
        }
    }

    fn insert_dir(&mut self, dir: &[String], leaf: String, acl: Acl) {
        if let Ok(Some(p)) = self.dir_at_mut(dir) {
            p.children.insert(leaf, Node::Dir(DirNode::new(acl)));
        }
    }

    /// `RMDIR`: only empty directories (the ACL file does not count).
    pub fn rmdir(&mut self, path: &str) -> ChirpResult<()> {
        let (dir, leaf) = Self::resolve_parent(path)?;
        self.require_rights(&dir, Rights::WRITE | Rights::DELETE)?;
        let mut full = dir.clone();
        full.push(leaf.clone());
        match self.dir_at(&dir)? {
            None => return Err(ChirpError::NotFound),
            Some(p) => match p.children.get(&leaf) {
                None => return Err(ChirpError::NotFound),
                Some(Node::File(_)) => return Err(ChirpError::NotADirectory),
                Some(Node::Dir(d)) => {
                    if !d.children.is_empty() {
                        return Err(ChirpError::NotEmpty);
                    }
                }
            },
        }
        if let Ok(Some(p)) = self.dir_at_mut(&dir) {
            p.children.remove(&leaf);
        }
        Ok(())
    }

    /// `GETDIR`: sorted entry names, ACL metadata hidden.
    pub fn getdir(&self, path: &str) -> ChirpResult<Vec<String>> {
        let comps = Self::components(path)?;
        // Rights are checked on the directory itself; the effective-ACL
        // walk surfaces ENOTDIR for file paths before the listing
        // would.
        self.require_rights(&comps, Rights::LIST)?;
        match self.dir_at(&comps)? {
            None => Err(ChirpError::NotFound),
            Some(d) => Ok(d.children.keys().cloned().collect()),
        }
    }

    /// `GETDIRSTAT`: the batched listing — sorted entries, each with
    /// `(is_dir, size)`. Same rights and error ordering as `GETDIR`;
    /// the real handler resolves the listing and every entry's
    /// attributes in one exchange.
    pub fn getdir_stat(&self, path: &str) -> ChirpResult<Vec<(String, bool, u64)>> {
        let comps = Self::components(path)?;
        self.require_rights(&comps, Rights::LIST)?;
        match self.dir_at(&comps)? {
            None => Err(ChirpError::NotFound),
            Some(d) => Ok(d
                .children
                .iter()
                .map(|(name, node)| match node {
                    Node::File(f) => (name.clone(), false, f.borrow().len() as u64),
                    Node::Dir(_) => (name.clone(), true, 0),
                })
                .collect()),
        }
    }

    /// `STATMULTI`: one verdict per path, in request order. A missing
    /// path settles as its own error without failing the batch — the
    /// real handler stats each path independently after the session
    /// check.
    pub fn stat_multi(&self, paths: &[String]) -> Vec<ChirpResult<(bool, u64)>> {
        paths.iter().map(|p| self.stat(p)).collect()
    }

    /// `GETACL`: the effective ACL text.
    pub fn getacl(&self, path: &str) -> ChirpResult<String> {
        let comps = Self::components(path)?;
        if !self.is_dir(&comps) {
            return Err(ChirpError::NotADirectory);
        }
        let r = self.rights_in(&comps)?;
        if r.is_empty() {
            return Err(ChirpError::NotAuthorized);
        }
        Ok(self.effective_acl(&comps)?.render())
    }

    /// `SETACL`: modify one entry under the admin right.
    pub fn setacl(&mut self, path: &str, subject: &str, rights: &str) -> ChirpResult<()> {
        let comps = Self::components(path)?;
        if !self.is_dir(&comps) {
            return Err(ChirpError::NotADirectory);
        }
        self.require_rights(&comps, Rights::ADMIN)?;
        let mut acl = self.effective_acl(&comps)?;
        acl.set(subject, rights)?;
        if let Ok(Some(d)) = self.dir_at_mut(&comps) {
            d.acl = acl;
        }
        Ok(())
    }

    /// `TRUNCATE` by path (write right on the parent).
    pub fn truncate(&mut self, path: &str, size: u64) -> ChirpResult<()> {
        let (dir, leaf) = Self::resolve_parent(path)?;
        self.require_rights(&dir, Rights::WRITE)?;
        match self.dir_at(&dir)? {
            None => Err(ChirpError::NotFound),
            Some(p) => match p.children.get(&leaf) {
                None => Err(ChirpError::NotFound),
                Some(Node::Dir(_)) => Err(ChirpError::IsADirectory),
                Some(Node::File(f)) => {
                    f.borrow_mut().resize(size as usize, 0);
                    Ok(())
                }
            },
        }
    }

    /// `WHOAMI`.
    pub fn whoami(&self) -> ChirpResult<String> {
        Ok(self.subject.clone())
    }

    /// Apply one generated operation, normalizing to an [`OpResult`].
    pub fn apply(&mut self, op: &crate::gen::Op) -> OpResult {
        use crate::gen::Op;
        match op {
            Op::Open { path, flags } => OpResult::from_val(self.open(path, *flags)),
            Op::Close { fd } => OpResult::from_unit(self.close(*fd)),
            Op::Pread { fd, len, off } => OpResult::from_data(self.pread(*fd, *len, *off)),
            Op::Pwrite { fd, data, off } => {
                OpResult::from_val(self.pwrite(*fd, data, *off).map(|n| n as i32))
            }
            Op::Fstat { fd } => OpResult::from_stat(self.fstat(*fd)),
            Op::Fsync { fd } => OpResult::from_unit(self.fsync(*fd)),
            Op::Stat { path } => OpResult::from_stat(self.stat(path)),
            Op::Unlink { path } => OpResult::from_unit(self.unlink(path)),
            Op::Rename { from, to } => OpResult::from_unit(self.rename(from, to)),
            Op::Mkdir { path } => OpResult::from_unit(self.mkdir(path)),
            Op::Rmdir { path } => OpResult::from_unit(self.rmdir(path)),
            Op::Getdir { path } => OpResult::from_names(self.getdir(path)),
            Op::Getacl { path } => OpResult::from_text(self.getacl(path)),
            Op::Setacl {
                path,
                subject,
                rights,
            } => OpResult::from_unit(self.setacl(path, subject, rights)),
            Op::Truncate { path, size } => OpResult::from_unit(self.truncate(path, *size)),
            Op::GetdirStat { path } => OpResult::from_entries(self.getdir_stat(path)),
            Op::StatMulti { paths } => OpResult::Multi(
                self.stat_multi(paths)
                    .into_iter()
                    .map(OpResult::from_stat)
                    .collect(),
            ),
            // The model is sequential, so a burst is just its ops in
            // send order — which is exactly the pipelining contract:
            // the n-th reply answers the n-th request.
            Op::Burst { ops } => OpResult::Multi(ops.iter().map(|b| self.apply_burst(b)).collect()),
            Op::Whoami => OpResult::from_text(self.whoami()),
            Op::Disconnect => {
                self.disconnect();
                OpResult::Unit
            }
        }
    }

    fn apply_burst(&mut self, op: &crate::gen::BurstOp) -> OpResult {
        use crate::gen::BurstOp;
        match op {
            BurstOp::Pread { fd, len, off } => OpResult::from_data(self.pread(*fd, *len, *off)),
            BurstOp::Pwrite { fd, data, off } => {
                OpResult::from_val(self.pwrite(*fd, data, *off).map(|n| n as i32))
            }
            BurstOp::Stat { path } => OpResult::from_stat(self.stat(path)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ModelServer {
        ModelServer::new("hostname:test", Acl::single("hostname:*", "rwlda").unwrap())
    }

    #[test]
    fn open_write_read_round_trip() {
        let mut m = model();
        let fd = m
            .open("/f", OpenFlags::read_write() | OpenFlags::CREATE)
            .unwrap();
        assert_eq!(fd, 0);
        assert_eq!(m.pwrite(fd, b"abc", 2).unwrap(), 3);
        // The gap reads back as zeros (sparse semantics).
        assert_eq!(m.pread(fd, 10, 0).unwrap(), b"\0\0abc");
        m.close(fd).unwrap();
        assert_eq!(m.close(fd).unwrap_err(), ChirpError::BadFd);
    }

    #[test]
    fn descriptors_reuse_lowest_slot() {
        let mut m = model();
        let a = m.open("/a", OpenFlags::WRITE | OpenFlags::CREATE).unwrap();
        let b = m.open("/b", OpenFlags::WRITE | OpenFlags::CREATE).unwrap();
        assert_eq!((a, b), (0, 1));
        m.close(a).unwrap();
        let c = m.open("/c", OpenFlags::WRITE | OpenFlags::CREATE).unwrap();
        assert_eq!(c, 0, "lowest free slot is reused");
    }

    #[test]
    fn unlinked_file_stays_readable_through_open_fd() {
        let mut m = model();
        let fd = m
            .open("/f", OpenFlags::read_write() | OpenFlags::CREATE)
            .unwrap();
        m.pwrite(fd, b"keep", 0).unwrap();
        m.unlink("/f").unwrap();
        assert_eq!(m.stat("/f").unwrap_err(), ChirpError::NotFound);
        assert_eq!(m.pread(fd, 4, 0).unwrap(), b"keep");
    }

    #[test]
    fn mkdir_inherits_and_rmdir_requires_empty() {
        let mut m = model();
        m.mkdir("/d").unwrap();
        let acl = m.getacl("/d").unwrap();
        assert!(acl.contains("hostname:* rwlad"), "got {acl:?}");
        let fd = m
            .open("/d/f", OpenFlags::WRITE | OpenFlags::CREATE)
            .unwrap();
        m.close(fd).unwrap();
        assert_eq!(m.rmdir("/d").unwrap_err(), ChirpError::NotEmpty);
        m.unlink("/d/f").unwrap();
        m.rmdir("/d").unwrap();
    }

    #[test]
    fn reserve_right_creates_private_namespace() {
        let mut m = ModelServer::new(
            "hostname:laptop",
            Acl::single("hostname:*", "v(rwl)").unwrap(),
        );
        // No write right: plain operations fail...
        assert_eq!(
            m.open("/f", OpenFlags::WRITE | OpenFlags::CREATE)
                .unwrap_err(),
            ChirpError::NotAuthorized
        );
        // ...but mkdir reserves a fresh namespace with exactly rwl.
        m.mkdir("/mine").unwrap();
        let acl = m.getacl("/mine").unwrap();
        assert_eq!(acl, "hostname:laptop rwl\n");
    }

    #[test]
    fn acl_walk_distinguishes_missing_from_file() {
        let mut m = model();
        // Missing directory inherits the root ACL: rights pass, the
        // operation itself reports NotFound.
        assert_eq!(m.getdir("/nope").unwrap_err(), ChirpError::NotFound);
        // A file in the path is ENOTDIR.
        let fd = m.open("/f", OpenFlags::WRITE | OpenFlags::CREATE).unwrap();
        m.close(fd).unwrap();
        assert_eq!(m.getdir("/f").unwrap_err(), ChirpError::NotADirectory);
        assert_eq!(m.getacl("/f").unwrap_err(), ChirpError::NotADirectory);
    }

    #[test]
    fn setacl_can_revoke_own_rights() {
        let mut m = model();
        m.setacl("/", "hostname:*", "").unwrap();
        assert_eq!(
            m.getdir("/").unwrap_err(),
            ChirpError::NotAuthorized,
            "revoking the only matching entry locks the subject out"
        );
    }

    #[test]
    fn disconnect_closes_every_descriptor() {
        let mut m = model();
        let fd = m
            .open("/f", OpenFlags::read_write() | OpenFlags::CREATE)
            .unwrap();
        m.disconnect();
        assert_eq!(m.pread(fd, 1, 0).unwrap_err(), ChirpError::BadFd);
        // Fresh numbering after reconnect.
        let fd2 = m.open("/f", OpenFlags::READ).unwrap();
        assert_eq!(fd2, 0);
    }
}

//! Whole-system TSS instances in one process.
//!
//! [`SimTss`] stands up N real [`FileServer`]s — the production accept
//! loop, handler stack, ACL enforcement, everything — on the in-memory
//! network instead of TCP, with every timing decision (retry backoff,
//! breaker cooldowns, idle eviction, catalog staleness) measured on one
//! shared virtual clock. A multi-server instance with striping,
//! mirroring, and fault injection therefore runs with no ports, no
//! sleeps, and no wall-clock dependence: a chaos scenario that
//! nominally waits out seconds of backoff completes in milliseconds
//! and behaves identically on a loaded CI machine.

use std::sync::Arc;
use std::time::Duration;

use chirp_client::{AuthMethod, Connection};
use chirp_proto::persist::Persist;
use chirp_proto::testutil::TempDir;
use chirp_proto::transport::{Dial, Dialer, Transport};
use chirp_proto::{Clock, MemNet, VirtualClock};
use chirp_server::acl::Acl;
use chirp_server::config::CoreKind;
use chirp_server::{FileServer, KeyRing, ServerConfig};
use tss_core::cfs::{CfsConfig, RetryPolicy};
use tss_core::stubfs::{DataServer, StubFsOptions};

/// Network timeout used by simulated clients. Generous because it
/// bounds *real* waiting only when something is genuinely stuck; the
/// virtual clock carries the semantic timing.
pub const SIM_TIMEOUT: Duration = Duration::from_secs(5);

/// Builder for a [`SimTss`] instance.
pub struct SimTssBuilder {
    servers: usize,
    root_acl: Acl,
    cache_bytes: Option<u64>,
    persistence: Persist,
    core: CoreKind,
    max_connections: Option<usize>,
    keys: Option<KeyRing>,
}

impl SimTssBuilder {
    /// Number of file servers to start (default 1).
    pub fn servers(mut self, n: usize) -> SimTssBuilder {
        self.servers = n;
        self
    }

    /// Durability-point observer installed on every server (default:
    /// none). The crash harness passes a shared
    /// [`chirp_proto::CrashPoint`] here so server-side mutations are
    /// journaled and killable.
    pub fn persistence(mut self, persistence: Persist) -> SimTssBuilder {
        self.persistence = persistence;
        self
    }

    /// Server-side buffer cache budget, `None` to disable (default:
    /// 64 KiB, deliberately tiny so every simulated workload crosses
    /// the hit, miss, *and* eviction paths).
    pub fn cache_bytes(mut self, bytes: Option<u64>) -> SimTssBuilder {
        self.cache_bytes = bytes;
        self
    }

    /// Root ACL installed on every server (default: `hostname:*`
    /// gets `rwlda`, so any simulated client has full non-reserve
    /// rights).
    pub fn root_acl(mut self, acl: Acl) -> SimTssBuilder {
        self.root_acl = acl;
        self
    }

    /// Connection-serving core for every server (default:
    /// [`CoreKind::Reactor`]). The differential oracle runs the same
    /// op sequence under both cores and demands identical replies.
    pub fn core(mut self, core: CoreKind) -> SimTssBuilder {
        self.core = core;
        self
    }

    /// Per-server connection limit (default: the production default).
    /// The idle-connection soak raises it to hold thousands of
    /// simultaneous clients on one simulated server.
    pub fn max_connections(mut self, n: usize) -> SimTssBuilder {
        self.max_connections = Some(n);
        self
    }

    /// Key ring installed on every server (default: empty). Handing the
    /// same [`KeyRing`] to the builder and keeping a clone lets a
    /// scenario rotate credentials under live simulated load — the
    /// ring is a shared handle, so rotation is visible to the servers
    /// instantly.
    pub fn keys(mut self, ring: KeyRing) -> SimTssBuilder {
        self.keys = Some(ring);
        self
    }

    /// Start the instance.
    pub fn build(self) -> SimTss {
        let vclock = VirtualClock::new();
        let clock = Clock::virtual_at(vclock.clone());
        let net = MemNet::new(clock.clone());
        let mut servers = Vec::new();
        let mut roots = Vec::new();
        for _ in 0..self.servers {
            let root = sim_root();
            let cfg = ServerConfig::localhost(root.path(), "sim-owner")
                .with_root_acl(self.root_acl.clone());
            let mut cfg = ServerConfig {
                dialer: net.dialer(),
                cache_bytes: self.cache_bytes,
                persistence: self.persistence.clone(),
                core: self.core,
                ..cfg
            };
            if let Some(n) = self.max_connections {
                cfg.max_connections = n;
            }
            if let Some(ring) = &self.keys {
                cfg.keys = ring.clone();
            }
            let listener = net.listen();
            let server = FileServer::start_on(cfg, Arc::new(listener)).expect("start sim server");
            servers.push(server);
            roots.push(root);
        }
        SimTss {
            clock,
            vclock,
            net,
            servers,
            roots,
        }
    }
}

/// A multi-server TSS instance running entirely in-process.
pub struct SimTss {
    clock: Clock,
    vclock: Arc<VirtualClock>,
    net: MemNet,
    servers: Vec<FileServer>,
    roots: Vec<TempDir>,
}

impl SimTss {
    /// Start building an instance.
    pub fn builder() -> SimTssBuilder {
        SimTssBuilder {
            servers: 1,
            root_acl: Acl::single("hostname:*", "rwlda").expect("valid rights"),
            cache_bytes: Some(64 * 1024),
            persistence: Persist::none(),
            core: CoreKind::default(),
            max_connections: None,
            keys: None,
        }
    }

    /// The shared virtual clock handle.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The underlying [`VirtualClock`] (for asserting on elapsed
    /// simulated time).
    pub fn virtual_clock(&self) -> &Arc<VirtualClock> {
        &self.vclock
    }

    /// The in-memory network.
    pub fn net(&self) -> &MemNet {
        &self.net
    }

    /// A dialer reaching the instance's servers.
    pub fn dialer(&self) -> Dialer {
        self.net.dialer()
    }

    /// The running servers.
    pub fn servers(&self) -> &[FileServer] {
        &self.servers
    }

    /// Endpoint (`host:port`) of server `i`.
    pub fn endpoint(&self, i: usize) -> String {
        self.servers[i].endpoint()
    }

    /// Host root directory of server `i` (for white-box assertions).
    pub fn root(&self, i: usize) -> &std::path::Path {
        self.roots[i].path()
    }

    /// An authenticated connection to server `i` over the in-memory
    /// network.
    pub fn connect(&self, i: usize) -> Connection {
        self.connect_via(&self.dialer(), i)
    }

    /// An authenticated connection to server `i` through a custom
    /// dialer (typically a fault-injecting wrapper).
    pub fn connect_via(&self, dialer: &Dialer, i: usize) -> Connection {
        let mut conn = Connection::connect_via(dialer, &self.endpoint(i), SIM_TIMEOUT)
            .expect("dial sim server");
        conn.authenticate(&auth()).expect("hostname auth");
        conn
    }

    /// The subject simulated clients authenticate as.
    pub fn subject(&self) -> String {
        let mut conn = self.connect(0);
        conn.whoami().expect("whoami")
    }

    /// A [`CfsConfig`] for server `i` wired to the in-memory network
    /// and the shared virtual clock, with a fast retry policy.
    pub fn cfs_config(&self, i: usize) -> CfsConfig {
        let mut cfg = CfsConfig::new(&self.endpoint(i), auth());
        cfg.timeout = SIM_TIMEOUT;
        cfg.retry = sim_retry();
        cfg.dialer = self.dialer();
        cfg.clock = self.clock.clone();
        cfg
    }

    /// [`StubFsOptions`] wired to the in-memory network and virtual
    /// clock (for pools, mirrored and striped abstractions).
    pub fn stubfs_options(&self) -> StubFsOptions {
        StubFsOptions {
            timeout: SIM_TIMEOUT,
            retry: sim_retry(),
            dialer: self.dialer(),
            clock: self.clock.clone(),
            ..StubFsOptions::default()
        }
    }

    /// A [`DataServer`] record for server `i` (pool construction).
    pub fn data_server(&self, i: usize, volume: &str) -> DataServer {
        DataServer::new(&self.endpoint(i), volume, auth())
    }

    /// The catalog report server `i` would send right now, parsed —
    /// exactly the packet the production report loop puts on UDP
    /// (vitals plus `m.*` telemetry), for feeding catalogs and
    /// federation shards without a socket.
    pub fn server_report(&self, i: usize) -> catalog::ServerReport {
        catalog::ServerReport::parse(&self.servers[i].compose_report())
            .expect("server report parses")
    }

    /// Shut every server down.
    pub fn shutdown(&mut self) {
        for s in &mut self.servers {
            s.shutdown();
        }
    }
}

/// Hostname auth, the method simulated clients use.
pub fn auth() -> Vec<AuthMethod> {
    vec![AuthMethod::Hostname]
}

/// A server root on RAM-backed storage when the host offers it. The
/// system temp dir is often a real disk, and disk metadata latency
/// inside every simulated RPC both slows the differential suite by an
/// order of magnitude and adds wall-clock noise the simulation
/// otherwise excludes.
pub(crate) fn sim_root() -> TempDir {
    let shm = std::path::Path::new("/dev/shm");
    if shm.is_dir() {
        TempDir::new_in(shm)
    } else {
        TempDir::new()
    }
}

/// Retry policy for simulated runs: several attempts with real
/// (virtual) backoff. The backoff durations are charged to the virtual
/// clock, so their magnitude costs nothing.
pub fn sim_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 5,
        initial_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(100),
        ..RetryPolicy::default()
    }
}

/// A dialer routing one endpoint through a designated dialer and
/// everything else through a default — how a simulation points fault
/// injection at a single replica while its peers stay clean, the
/// in-memory analogue of putting one TCP proxy in front of one server.
pub struct RouteDialer {
    routes: Vec<(String, Dialer)>,
    fallback: Dialer,
}

impl RouteDialer {
    /// Route `endpoint` through `via`; everything else through
    /// `fallback`.
    pub fn new(fallback: Dialer) -> RouteDialer {
        RouteDialer {
            routes: Vec::new(),
            fallback,
        }
    }

    /// Add a route. Returns `self` for chaining.
    pub fn route(mut self, endpoint: &str, via: Dialer) -> RouteDialer {
        self.routes.push((endpoint.to_string(), via));
        self
    }

    /// Finish into a [`Dialer`] handle.
    pub fn dialer(self) -> Dialer {
        Dialer::from_arc(Arc::new(self))
    }
}

impl Dial for RouteDialer {
    fn dial(&self, endpoint: &str, timeout: Duration) -> std::io::Result<Box<dyn Transport>> {
        for (ep, via) in &self.routes {
            if ep == endpoint {
                return via.dial(endpoint, timeout);
            }
        }
        self.fallback.dial(endpoint, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_proto::OpenFlags;

    #[test]
    fn two_servers_serve_rpcs_in_memory() {
        let sim = SimTss::builder().servers(2).build();
        for i in 0..2 {
            let mut conn = sim.connect(i);
            let fd = conn
                .open("/hello", OpenFlags::read_write() | OpenFlags::CREATE, 0o644)
                .unwrap();
            assert_eq!(conn.pwrite(fd, b"tactical", 0).unwrap(), 8);
            assert_eq!(conn.pread(fd, 8, 0).unwrap(), b"tactical");
            conn.close(fd).unwrap();
        }
        // The two servers are distinct resources with distinct roots.
        assert!(sim.root(0).join("hello").exists());
        assert!(sim.root(1).join("hello").exists());
        assert_ne!(sim.endpoint(0), sim.endpoint(1));
    }

    #[test]
    fn subject_is_stable_and_hostname_based() {
        let sim = SimTss::builder().build();
        let s = sim.subject();
        assert!(s.starts_with("hostname:"), "unexpected subject {s}");
        assert_eq!(sim.subject(), s);
    }

    #[test]
    fn virtual_sleep_is_instant() {
        let sim = SimTss::builder().build();
        let wall = std::time::Instant::now();
        let t0 = sim.clock().now();
        sim.clock().sleep(Duration::from_secs(3600));
        assert_eq!(
            sim.clock().elapsed_since(t0),
            Duration::from_secs(3600),
            "virtual hour passed"
        );
        assert!(wall.elapsed() < Duration::from_secs(2));
    }
}

//! Differential replay: real server vs. model, byte for byte.
//!
//! [`DiffRunner`] holds one long-lived in-memory TSS instance and one
//! client connection; each checked seed replays its generated sequence
//! twice — against the real handler stack (under a fresh `/seqN`
//! namespace on the shared server) and against a fresh
//! [`ModelServer`] — and compares the normalized result of every
//! operation, including error codes. On divergence the sequence is
//! shrunk (delta-debugging over op subsets, each candidate replayed in
//! its own fresh namespace) and the failure report carries the seed
//! plus the minimized trace, so reproduction is
//! `SIM_SEED=<n> cargo test -p simharness`.
//!
//! Results are *normalized* rather than compared raw: stat replies
//! keep only what the model defines (file-vs-directory and file size),
//! not host inode numbers or mtimes.

use std::fmt;

use chirp_client::Connection;
use chirp_proto::{ChirpError, ChirpResult, Reply, ReplyShape, Request, StatBuf};
use chirp_server::acl::Acl;

use crate::gen::{ops_for_seed, BurstOp, Op};
use crate::harness::SimTss;
use crate::model::ModelServer;

/// One operation's outcome, reduced to the facts both sides define.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// A numeric success (descriptor, byte count).
    Val(i32),
    /// Plain success with no interesting value.
    Unit,
    /// Returned bytes (`PREAD`) or rendered text (`GETACL`).
    Data(Vec<u8>),
    /// Sorted entry names (`GETDIR`).
    Names(Vec<String>),
    /// `(is_dir, size)`; size is only meaningful for files and is
    /// normalized to 0 for directories.
    Stat(bool, u64),
    /// Sorted `(name, is_dir, size)` entries (`GETDIRSTAT`), with the
    /// same directory-size normalization as [`OpResult::Stat`].
    Entries(Vec<(String, bool, u64)>),
    /// One verdict per batched or pipelined sub-operation, in request
    /// order (`STATMULTI`, pipelined bursts). Comparing the vectors
    /// checks both the values *and* the ordering contract: the n-th
    /// verdict must answer the n-th request on both sides.
    Multi(Vec<OpResult>),
    /// A text reply (`WHOAMI`).
    Text(String),
    /// The protocol error.
    Err(ChirpError),
}

impl OpResult {
    pub(crate) fn from_val(r: ChirpResult<i32>) -> OpResult {
        match r {
            Ok(v) => OpResult::Val(v),
            Err(e) => OpResult::Err(e),
        }
    }

    pub(crate) fn from_unit(r: ChirpResult<()>) -> OpResult {
        match r {
            Ok(()) => OpResult::Unit,
            Err(e) => OpResult::Err(e),
        }
    }

    pub(crate) fn from_data(r: ChirpResult<Vec<u8>>) -> OpResult {
        match r {
            Ok(d) => OpResult::Data(d),
            Err(e) => OpResult::Err(e),
        }
    }

    pub(crate) fn from_names(r: ChirpResult<Vec<String>>) -> OpResult {
        match r {
            Ok(n) => OpResult::Names(n),
            Err(e) => OpResult::Err(e),
        }
    }

    pub(crate) fn from_text(r: ChirpResult<String>) -> OpResult {
        match r {
            Ok(t) => OpResult::Text(t),
            Err(e) => OpResult::Err(e),
        }
    }

    pub(crate) fn from_stat(r: ChirpResult<(bool, u64)>) -> OpResult {
        match r {
            Ok((is_dir, size)) => OpResult::Stat(is_dir, if is_dir { 0 } else { size }),
            Err(e) => OpResult::Err(e),
        }
    }

    fn from_statbuf(r: ChirpResult<StatBuf>) -> OpResult {
        OpResult::from_stat(r.map(|st| (st.is_dir(), st.size)))
    }

    pub(crate) fn from_entries(r: ChirpResult<Vec<(String, bool, u64)>>) -> OpResult {
        match r {
            Ok(entries) => OpResult::Entries(
                entries
                    .into_iter()
                    .map(|(name, is_dir, size)| (name, is_dir, if is_dir { 0 } else { size }))
                    .collect(),
            ),
            Err(e) => OpResult::Err(e),
        }
    }
}

/// A confirmed real-vs-model divergence, already minimized.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The generator seed that produced the original sequence.
    pub seed: u64,
    /// The minimized operation trace still showing the divergence.
    pub trace: Vec<Op>,
    /// Index into `trace` of the first differing operation.
    pub op_index: usize,
    /// What the real server answered.
    pub real: OpResult,
    /// What the model answered.
    pub model: OpResult,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "real/model divergence (seed {})", self.seed)?;
        writeln!(
            f,
            "reproduce with: SIM_SEED={} cargo test -p simharness",
            self.seed
        )?;
        writeln!(f, "minimized trace ({} ops):", self.trace.len())?;
        for (i, op) in self.trace.iter().enumerate() {
            let marker = if i == self.op_index { ">>" } else { "  " };
            writeln!(f, " {marker} [{i}] {op:?}")?;
        }
        writeln!(f, "  real:  {:?}", self.real)?;
        write!(f, "  model: {:?}", self.model)
    }
}

/// Replays generated sequences against a shared [`SimTss`] instance
/// and fresh models.
pub struct DiffRunner<'a> {
    sim: &'a SimTss,
    conn: Connection,
    subject: String,
    root_acl: Acl,
    next_seq: usize,
}

impl<'a> DiffRunner<'a> {
    /// A runner against server 0 of `sim`. The instance's root ACL
    /// must be `root_acl` (it seeds each namespace's model).
    pub fn new(sim: &'a SimTss, root_acl: Acl) -> DiffRunner<'a> {
        let mut conn = sim.connect(0);
        let subject = conn.whoami().expect("whoami");
        DiffRunner {
            sim,
            conn,
            subject,
            root_acl,
            next_seq: 0,
        }
    }

    /// The authenticated subject (also the model's identity).
    pub fn subject(&self) -> &str {
        &self.subject
    }

    /// Check one seed: generate, replay both sides, compare. On
    /// divergence, shrink and return the minimized report.
    pub fn check_seed(&mut self, seed: u64) -> Result<(), Divergence> {
        let ops = ops_for_seed(seed, &self.subject);
        match self.first_divergence(&ops) {
            None => Ok(()),
            Some(_) => {
                let trace = self.shrink(ops);
                let (op_index, real, model) = self
                    .first_divergence(&trace)
                    .expect("shrunk trace still diverges");
                Err(Divergence {
                    seed,
                    trace,
                    op_index,
                    real,
                    model,
                })
            }
        }
    }

    /// Replay `ops` on both sides in a fresh namespace; the index and
    /// both results of the first differing op, if any.
    fn first_divergence(&mut self, ops: &[Op]) -> Option<(usize, OpResult, OpResult)> {
        let base = format!("/seq{}", self.next_seq);
        self.next_seq += 1;
        self.conn.mkdir(&base, 0o755).expect("create namespace");
        // The real namespace directory materializes the server's root
        // ACL on creation (inherit-on-create), which is exactly the
        // model's root state. Descriptor tables start empty on both
        // sides: the runner's connection is swept after every replay.
        let mut model = ModelServer::new(&self.subject, self.root_acl.clone());
        let mut diverged = None;
        for (i, op) in ops.iter().enumerate() {
            let real = self.apply_real(&base, op);
            let modeled = model.apply(op);
            if real != modeled {
                diverged = Some((i, real, modeled));
                break;
            }
        }
        if diverged.is_some() {
            // Real and model descriptor state may disagree past the
            // divergent op; a reconnect restores the invariant (and
            // divergences are rare, so the extra session is cheap).
            self.reconnect();
        } else {
            // Identical results all the way through mean identical fd
            // tables, so the model knows exactly which descriptors the
            // real connection still holds. Closing them is far cheaper
            // than a reconnect per sequence.
            for fd in model.open_fds() {
                let _ = self.conn.close(fd);
            }
        }
        diverged
    }

    fn reconnect(&mut self) {
        self.conn = self.sim.connect(0);
    }

    /// Run one op against the real server, under the `base` namespace.
    fn apply_real(&mut self, base: &str, op: &Op) -> OpResult {
        let p = |path: &str| {
            if path == "/" {
                base.to_string()
            } else {
                format!("{base}{path}")
            }
        };
        match op {
            Op::Open { path, flags } => OpResult::from_val(self.conn.open(&p(path), *flags, 0o644)),
            Op::Close { fd } => OpResult::from_unit(self.conn.close(*fd)),
            Op::Pread { fd, len, off } => OpResult::from_data(self.conn.pread(*fd, *len, *off)),
            Op::Pwrite { fd, data, off } => {
                OpResult::from_val(self.conn.pwrite(*fd, data, *off).map(|n| n as i32))
            }
            Op::Fstat { fd } => OpResult::from_statbuf(self.conn.fstat(*fd)),
            Op::Fsync { fd } => OpResult::from_unit(self.conn.fsync(*fd)),
            Op::Stat { path } => OpResult::from_statbuf(self.conn.stat(&p(path))),
            Op::Unlink { path } => OpResult::from_unit(self.conn.unlink(&p(path))),
            Op::Rename { from, to } => OpResult::from_unit(self.conn.rename(&p(from), &p(to))),
            Op::Mkdir { path } => OpResult::from_unit(self.conn.mkdir(&p(path), 0o755)),
            Op::Rmdir { path } => OpResult::from_unit(self.conn.rmdir(&p(path))),
            Op::Getdir { path } => OpResult::from_names(self.conn.getdir(&p(path))),
            Op::Getacl { path } => OpResult::from_text(self.conn.getacl(&p(path))),
            Op::Setacl {
                path,
                subject,
                rights,
            } => OpResult::from_unit(self.conn.setacl(&p(path), subject, rights)),
            Op::Truncate { path, size } => OpResult::from_unit(self.conn.truncate(&p(path), *size)),
            Op::GetdirStat { path } => {
                OpResult::from_entries(self.conn.getdir_stat(&p(path)).map(|entries| {
                    entries
                        .into_iter()
                        .map(|(name, st)| (name, st.is_dir(), st.size))
                        .collect()
                }))
            }
            Op::StatMulti { paths } => {
                let full: Vec<String> = paths.iter().map(|x| p(x)).collect();
                match self.conn.stat_multi(&full) {
                    Ok(verdicts) => {
                        OpResult::Multi(verdicts.into_iter().map(OpResult::from_statbuf).collect())
                    }
                    Err(e) => OpResult::Err(e),
                }
            }
            Op::Burst { ops } => self.apply_burst_real(base, ops),
            Op::Whoami => OpResult::from_text(self.conn.whoami()),
            Op::Disconnect => {
                self.reconnect();
                OpResult::Unit
            }
        }
    }

    /// Run a burst pipelined for real: every request goes onto the wire
    /// before the first reply is read, then the replies settle strictly
    /// in send order. Divergence here — including a verdict landing on
    /// the wrong request after a mid-pipeline protocol error — is an
    /// ordering-contract violation, not just a value mismatch.
    fn apply_burst_real(&mut self, base: &str, ops: &[BurstOp]) -> OpResult {
        let p = |path: &str| {
            if path == "/" {
                base.to_string()
            } else {
                format!("{base}{path}")
            }
        };
        let verdicts = self.conn.pipeline(ops.len().max(1), |pipe| {
            for op in ops {
                match op {
                    BurstOp::Pread { fd, len, off } => pipe.send(
                        &Request::Pread {
                            fd: *fd,
                            length: *len,
                            offset: *off,
                        },
                        None,
                        ReplyShape::Body,
                    )?,
                    BurstOp::Pwrite { fd, data, off } => pipe.send(
                        &Request::Pwrite {
                            fd: *fd,
                            length: data.len() as u64,
                            offset: *off,
                        },
                        Some(data),
                        ReplyShape::Status,
                    )?,
                    BurstOp::Stat { path } => {
                        pipe.send(&Request::Stat { path: p(path) }, None, ReplyShape::Status)?
                    }
                }
            }
            Ok(pipe.settle_all())
        });
        let verdicts = match verdicts {
            Ok(v) => v,
            Err(e) => return OpResult::Err(e),
        };
        OpResult::Multi(
            ops.iter()
                .zip(verdicts)
                .map(|(op, v)| match op {
                    BurstOp::Pread { .. } => OpResult::from_data(v.map(Reply::into_body)),
                    BurstOp::Pwrite { .. } => {
                        OpResult::from_val(v.map(|r| r.status().value as i32))
                    }
                    BurstOp::Stat { .. } => OpResult::from_statbuf(v.and_then(|r| {
                        let words: Vec<&str> =
                            r.status().words.iter().map(String::as_str).collect();
                        StatBuf::from_words(&words)
                    })),
                })
                .collect(),
        )
    }

    /// Delta-debugging: drop chunks of decreasing size while the
    /// divergence persists. Each candidate replays in a fresh
    /// namespace, so candidates cannot contaminate each other.
    fn shrink(&mut self, ops: Vec<Op>) -> Vec<Op> {
        ddmin(ops, &mut |cand| self.first_divergence(cand).is_some())
    }
}

/// Generic delta-debugging minimizer: drop chunks of decreasing size
/// (8, 4, 2, 1) from `items` while `still_fails` keeps holding, until
/// no single drop preserves the failure. The predicate must be a
/// function of the candidate alone — re-runs with stale shared state
/// produce unsound minima. Shared by the differential checker (op
/// traces) and the scenario runner (client fleets).
pub fn ddmin<T: Clone>(items: Vec<T>, still_fails: &mut dyn FnMut(&[T]) -> bool) -> Vec<T> {
    let mut cur = items;
    loop {
        let mut reduced = false;
        for chunk in [8usize, 4, 2, 1] {
            let mut i = 0;
            while i < cur.len() && cur.len() > 1 {
                let mut cand = cur.clone();
                cand.drain(i..(i + chunk).min(cand.len()));
                if cand.is_empty() {
                    i += chunk;
                    continue;
                }
                if still_fails(&cand) {
                    cur = cand;
                    reduced = true;
                } else {
                    i += chunk;
                }
            }
        }
        if !reduced {
            return cur;
        }
    }
}

/// Check `count` consecutive seeds starting at `first_seed` against a
/// fresh single-server instance. Returns the first divergence, if any.
pub fn run_seed(first_seed: u64, count: u64) -> Result<(), Divergence> {
    let root_acl = Acl::single("hostname:*", "rwlda").expect("valid rights");
    let sim = SimTss::builder().root_acl(root_acl.clone()).build();
    let mut runner = DiffRunner::new(&sim, root_acl);
    for seed in first_seed..first_seed + count {
        runner.check_seed(seed)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::BurstOp;
    use crate::harness::SimTss;
    use chirp_proto::OpenFlags;

    fn runner(sim: &SimTss, acl: Acl) -> DiffRunner<'_> {
        DiffRunner::new(sim, acl)
    }

    #[test]
    fn burst_settles_mid_pipeline_errors_in_send_order() {
        // Protocol errors inside a pipelined burst must land on the
        // request that earned them, not shift onto a neighbor: the
        // failing ops sit *between* two successes against the same
        // descriptor, so any off-by-one in reply matching makes the
        // final pread answer the wrong request and diverge.
        let root_acl = Acl::single("hostname:*", "rwlda").unwrap();
        let sim = SimTss::builder().root_acl(root_acl.clone()).build();
        let mut r = runner(&sim, root_acl);
        let ops = vec![
            Op::Open {
                path: "/f".into(),
                flags: OpenFlags::read_write() | OpenFlags::CREATE,
            },
            Op::Burst {
                ops: vec![
                    BurstOp::Pwrite {
                        fd: 0,
                        data: b"hello".to_vec(),
                        off: 0,
                    },
                    // BadFd mid-pipeline: a settled verdict, pipe alive.
                    BurstOp::Pread {
                        fd: 9,
                        len: 4,
                        off: 0,
                    },
                    // NotFound mid-pipeline, same contract.
                    BurstOp::Stat {
                        path: "/missing".into(),
                    },
                    BurstOp::Pread {
                        fd: 0,
                        len: 5,
                        off: 0,
                    },
                ],
            },
        ];
        assert!(
            r.first_divergence(&ops).is_none(),
            "mid-pipeline error ordering diverged from the model"
        );
    }
}

//! Crash-injection differential testing for the dsfs update protocol.
//!
//! The typestate layer (`tss_core::protocol`) proves the *order* of the
//! stub/data updates at compile time; this module proves the order is
//! *sufficient*: no matter where a crash lands, the surviving on-disk
//! state is one the paper's §5 argument accepts. For each seeded
//! sequence of whole-file operations against a simulated dsfs:
//!
//! 1. **Golden run** — replay with an armed [`CrashPoint`] journaling
//!    every durability point (stub writes, metadata creates/pwrites/
//!    fsyncs/dirsyncs/renames/unlinks, data-server creates/pwrites/
//!    truncates/unlinks) but unlimited budget, differentially checking
//!    each op's verdict and the final state against a model. The
//!    journal's length `N` is the number of places this sequence
//!    touches stable storage.
//! 2. **Crash sweep** — for every prefix length `k < N`, replay the
//!    same sequence with budget `k`: the k-th durability point (and
//!    every later one) fails, exactly as if the process died there —
//!    a dead process performs no further writes. The surviving state
//!    is then *restarted*: a fresh stub filesystem over the same
//!    metadata directory and data volume, with fresh connections.
//! 3. **Acceptance** — `fsck` the restarted filesystem and check the
//!    crash state against the model:
//!    * every path not named by the crashed op is byte-identical to
//!      the pre-crash model (failure coherence: a crash during one
//!      op cannot disturb another file);
//!    * the crashed op's own targets are in a state the protocol
//!      allows — fully old, fully new, or (for an in-flight create)
//!      an empty data file; a dangling or zero-length stub reads as
//!      "file not found", never as garbage;
//!    * orphaned data appears only where a rename clobber can leave
//!      it, never from a crashed create or delete — the ordering
//!      theorem;
//!    * one `repair` pass yields a clean report, a second removes
//!      nothing, and repair never touches a healthy file.
//!
//! A failure prints the seed, the crash budget, and a delta-debugged
//! minimal op trace, reproducible with `CRASH_SEED=<seed>`.
//!
//! **Torn-write mode** ([`CrashHarness::run_seed_torn`]) repeats the
//! sweep with the injector in partial-sector mode: the killing write
//! persists a seeded strict prefix of its bytes before the process
//! dies, modeling a power cut mid-sector instead of a clean kill. Only
//! the stub writes tear (the metadata tree is the only `LocalFs` in
//! the loop); the acceptance relaxes exactly one clause: a *corrupt*
//! stub — one fsck cannot parse — is allowed iff it names the crashed
//! op's own target, reads as an error (never as garbage data), and is
//! removed by the same repair pass that removes dangling stubs.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::sync::Arc;

use chirp_proto::persist::{CrashPoint, Persist};
use chirp_proto::OpenFlags;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tss_core::fs::FileSystem;
use tss_core::fsck::{fsck, repair, RepairOptions};
use tss_core::localfs::LocalFs;
use tss_core::placement::Placement;
use tss_core::stubfs::StubFs;

use crate::harness::{sim_root, SimTss};

/// One whole-file operation against the simulated dsfs. Coarser than
/// the RPC-level [`crate::gen::Op`] mix on purpose: each op is a full
/// protocol transaction, so every crash budget lands *inside* a
/// create, delete, rename, or truncate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashOp {
    /// Create or overwrite `path` with `data` (one open, one pwrite).
    Write {
        /// Tree path.
        path: String,
        /// File contents, written in a single pwrite.
        data: Vec<u8>,
    },
    /// Delete `path` (data first, then stub).
    Delete {
        /// Tree path.
        path: String,
    },
    /// Rename `from` over `to` (tree-only; clobber orphans data).
    Rename {
        /// Source path.
        from: String,
        /// Destination path.
        to: String,
    },
    /// Create directory `path` in the tree.
    Mkdir {
        /// Tree path.
        path: String,
    },
    /// Truncate `path` to `size`.
    Truncate {
        /// Tree path.
        path: String,
        /// New size.
        size: u64,
    },
}

impl CrashOp {
    /// The tree paths this op mutates — the only paths a crash during
    /// it may disturb.
    pub fn targets(&self) -> BTreeSet<String> {
        let mut t = BTreeSet::new();
        match self {
            CrashOp::Write { path, .. }
            | CrashOp::Delete { path }
            | CrashOp::Mkdir { path }
            | CrashOp::Truncate { path, .. } => {
                t.insert(path.clone());
            }
            CrashOp::Rename { from, to } => {
                t.insert(from.clone());
                t.insert(to.clone());
            }
        }
        t
    }
}

impl fmt::Display for CrashOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashOp::Write { path, data } => {
                write!(
                    f,
                    "write {path} ({} x {:#04x})",
                    data.len(),
                    data.first().copied().unwrap_or(0)
                )
            }
            CrashOp::Delete { path } => write!(f, "delete {path}"),
            CrashOp::Rename { from, to } => write!(f, "rename {from} -> {to}"),
            CrashOp::Mkdir { path } => write!(f, "mkdir {path}"),
            CrashOp::Truncate { path, size } => write!(f, "truncate {path} to {size}"),
        }
    }
}

/// File-name pool: a few root names plus nested names under the one
/// generated directory, so creates race missing parents and renames
/// clobber often.
const FILES: &[&str] = &["/a", "/b", "/c", "/d0/x", "/d0/y"];
/// Directory-name pool.
const DIRS: &[&str] = &["/d0"];

/// The op sequence for `seed` — a pure function of the seed.
pub fn crash_ops_for_seed(seed: u64) -> Vec<CrashOp> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC4A5_1DE7);
    let n = rng.gen_range(2usize..6);
    (0..n)
        .map(|_| {
            let pick = |rng: &mut SmallRng| FILES[rng.gen_range(0..FILES.len())].to_string();
            match rng.gen_range(0u32..100) {
                0..=44 => {
                    let len = rng.gen_range(1usize..25);
                    let byte = rng.gen_range(1u8..255);
                    CrashOp::Write {
                        path: pick(&mut rng),
                        data: vec![byte; len],
                    }
                }
                45..=64 => CrashOp::Delete {
                    path: pick(&mut rng),
                },
                65..=79 => CrashOp::Rename {
                    from: pick(&mut rng),
                    to: pick(&mut rng),
                },
                80..=89 => CrashOp::Mkdir {
                    path: DIRS[rng.gen_range(0..DIRS.len())].to_string(),
                },
                _ => CrashOp::Truncate {
                    path: pick(&mut rng),
                    size: rng.gen_range(0u64..33),
                },
            }
        })
        .collect()
}

/// What a path holds, in the model or on the real filesystem.
#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    File(Vec<u8>),
    Dir,
    Absent,
    /// A stub the filesystem refuses to follow (`InvalidData`): the
    /// remains of a torn stub write. Never produced by the model; only
    /// torn-mode acceptance may admit it, and only on the crashed
    /// op's own target.
    Torn,
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            State::File(b) => write!(f, "file[{} bytes]", b.len()),
            State::Dir => write!(f, "dir"),
            State::Absent => write!(f, "absent"),
            State::Torn => write!(f, "torn stub"),
        }
    }
}

/// The model: a map of whole files plus the directory set, with a
/// count of data files operations have knowingly orphaned (rename
/// clobbers — the only legal source of orphans).
#[derive(Debug, Clone, Default)]
pub struct CrashModel {
    files: BTreeMap<String, Vec<u8>>,
    dirs: BTreeSet<String>,
    orphans: u64,
}

impl CrashModel {
    /// An empty tree.
    pub fn new() -> CrashModel {
        CrashModel::default()
    }

    /// Count of data files legally orphaned so far.
    pub fn orphans(&self) -> u64 {
        self.orphans
    }

    fn parent_exists(&self, path: &str) -> bool {
        match path.rfind('/') {
            Some(0) => true,
            Some(i) => self.dirs.contains(&path[..i]),
            None => false,
        }
    }

    fn state(&self, path: &str) -> State {
        if self.dirs.contains(path) {
            State::Dir
        } else if let Some(b) = self.files.get(path) {
            State::File(b.clone())
        } else {
            State::Absent
        }
    }

    /// Apply `op`; returns whether the op succeeds (the real side must
    /// agree).
    pub fn apply(&mut self, op: &CrashOp) -> bool {
        match op {
            CrashOp::Write { path, data } => {
                if !self.parent_exists(path) {
                    return false;
                }
                self.files.insert(path.clone(), data.clone());
                true
            }
            CrashOp::Delete { path } => self.files.remove(path).is_some(),
            CrashOp::Rename { from, to } => {
                if !self.files.contains_key(from) || !self.parent_exists(to) {
                    return false;
                }
                if from == to {
                    return true;
                }
                if self.files.contains_key(to) {
                    // The clobbered stub's data file is now referenced
                    // by nothing: a legal, repairable orphan.
                    self.orphans += 1;
                }
                let v = self.files.remove(from).expect("checked above");
                self.files.insert(to.clone(), v);
                true
            }
            CrashOp::Mkdir { path } => {
                if self.dirs.contains(path)
                    || self.files.contains_key(path)
                    || !self.parent_exists(path)
                {
                    return false;
                }
                self.dirs.insert(path.clone());
                true
            }
            CrashOp::Truncate { path, size } => match self.files.get_mut(path) {
                Some(v) => {
                    v.resize(*size as usize, 0);
                    true
                }
                None => false,
            },
        }
    }
}

/// A rejected post-crash state (or a pre-crash differential mismatch).
#[derive(Debug, Clone)]
pub struct CrashDivergence {
    /// The generating seed.
    pub seed: u64,
    /// Durability-point budget of the failing run; `None` for the
    /// golden (crash-free) run.
    pub budget: Option<u64>,
    /// Index of the op the crash landed in, if any.
    pub crashed_op: Option<usize>,
    /// What the checker rejected.
    pub detail: String,
    /// The (possibly shrunk) op trace.
    pub trace: Vec<CrashOp>,
}

impl fmt::Display for CrashDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "crash divergence (seed {}):", self.seed)?;
        match self.budget {
            Some(k) => writeln!(
                f,
                "  killed at durability point {k}{}",
                match self.crashed_op {
                    Some(i) => format!(" (inside op {i})"),
                    None => String::new(),
                }
            )?,
            None => writeln!(f, "  golden (crash-free) run")?,
        }
        writeln!(f, "  {}", self.detail)?;
        writeln!(f, "  trace ({} ops):", self.trace.len())?;
        for (i, op) in self.trace.iter().enumerate() {
            writeln!(f, "    {i}: {op}")?;
        }
        write!(
            f,
            "  reproduce: CRASH_SEED={} cargo test --release -p simharness --test crash_sim",
            self.seed
        )
    }
}

/// Counters from a sweep, for reporting and EXPERIMENTS numbers.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrashStats {
    /// Sequences fully swept.
    pub sequences: u64,
    /// Generated ops replayed in golden runs.
    pub ops: u64,
    /// Durability points enumerated = simulated kills performed.
    pub crash_points: u64,
}

impl CrashStats {
    /// Accumulate another sweep's counters.
    pub fn add(&mut self, other: CrashStats) {
        self.sequences += other.sequences;
        self.ops += other.ops;
        self.crash_points += other.crash_points;
    }
}

/// The crash-injection harness: one simulated data server plus a
/// shared [`CrashPoint`] injector threaded through the server
/// handlers, the metadata filesystem, and the stub protocol.
pub struct CrashHarness {
    sim: SimTss,
    injector: Arc<CrashPoint>,
    persist: Persist,
    run: u64,
}

impl Default for CrashHarness {
    fn default() -> CrashHarness {
        CrashHarness::new()
    }
}

impl CrashHarness {
    /// Stand up the simulated deployment. The server cache is off:
    /// crash semantics are about stable storage, and the sweep
    /// white-box-cleans volumes between runs, which a cache keyed on
    /// recycled inodes must not observe.
    pub fn new() -> CrashHarness {
        let injector = CrashPoint::new();
        let persist = Persist::from_arc(injector.clone());
        let sim = SimTss::builder()
            .cache_bytes(None)
            .persistence(persist.clone())
            .build();
        CrashHarness {
            sim,
            injector,
            persist,
            run: 0,
        }
    }

    /// Sweep one seed: golden run, then a kill at every durability
    /// point. On failure the trace is delta-debug shrunk first.
    pub fn run_seed(&mut self, seed: u64) -> Result<CrashStats, CrashDivergence> {
        let ops = crash_ops_for_seed(seed);
        match self.sweep(seed, &ops, false) {
            Ok(stats) => Ok(stats),
            Err(div) => Err(self.shrink(seed, ops, div, false)),
        }
    }

    /// [`CrashHarness::run_seed`] with the injector in torn-write
    /// mode: the killing write persists a seeded strict prefix of its
    /// bytes before dying, so stub writes can leave *corrupt* (not
    /// just dangling) stubs for fsck to classify and repair.
    pub fn run_seed_torn(&mut self, seed: u64) -> Result<CrashStats, CrashDivergence> {
        let ops = crash_ops_for_seed(seed);
        match self.sweep(seed, &ops, true) {
            Ok(stats) => Ok(stats),
            Err(div) => Err(self.shrink(seed, ops, div, true)),
        }
    }

    /// Golden run plus full budget sweep over `ops`.
    fn sweep(
        &mut self,
        seed: u64,
        ops: &[CrashOp],
        torn: bool,
    ) -> Result<CrashStats, CrashDivergence> {
        let total = self.run_once(seed, ops, None, torn)?;
        for k in 0..total {
            self.run_once(seed, ops, Some(k), torn)?;
        }
        Ok(CrashStats {
            sequences: 1,
            ops: ops.len() as u64,
            crash_points: total,
        })
    }

    /// Delta-debug `ops` down to a minimal still-failing trace.
    fn shrink(
        &mut self,
        seed: u64,
        ops: Vec<CrashOp>,
        original: CrashDivergence,
        torn: bool,
    ) -> CrashDivergence {
        let mut best_ops = ops;
        let mut best = original;
        let mut chunk = (best_ops.len() / 2).max(1);
        loop {
            let mut shrunk = false;
            let mut i = 0;
            while i < best_ops.len() && best_ops.len() > 1 {
                let mut candidate = best_ops.clone();
                let end = (i + chunk).min(candidate.len());
                candidate.drain(i..end);
                if candidate.is_empty() {
                    i += chunk;
                    continue;
                }
                match self.sweep(seed, &candidate, torn) {
                    Err(d) => {
                        best_ops = candidate;
                        best = d;
                        shrunk = true;
                    }
                    Ok(_) => i += chunk,
                }
            }
            if chunk == 1 && !shrunk {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
        best.trace = best_ops;
        best
    }

    /// One replay of `ops` with the given crash budget (`None` =
    /// golden). Returns the number of durability points the run
    /// committed (meaningful for the golden run).
    fn run_once(
        &mut self,
        seed: u64,
        ops: &[CrashOp],
        budget: Option<u64>,
        torn: bool,
    ) -> Result<u64, CrashDivergence> {
        let run = self.run;
        self.run += 1;
        let volume = format!("/crash{run}");
        let fail = |detail: String, crashed_op: Option<usize>| CrashDivergence {
            seed,
            budget,
            crashed_op,
            detail,
            trace: ops.to_vec(),
        };

        // Fresh per-run namespace, built with the injector disarmed.
        let meta_dir = sim_root();
        let meta =
            LocalFs::with_persistence(meta_dir.path(), self.persist.clone()).expect("meta root");
        let mut opts = self.sim.stubfs_options();
        opts.persist = self.persist.clone();
        opts.breaker_threshold = 0; // crash errors must stay raw
        let fs = StubFs::new(
            Arc::new(meta),
            vec![self.sim.data_server(0, &volume)],
            Placement::round_robin(),
            opts,
        );
        fs.ensure_volumes().expect("create volume");

        // The killable region: exactly the generated ops.
        if torn {
            self.injector.arm_torn(budget, seed);
        } else {
            self.injector.arm(budget);
        }
        let mut model = CrashModel::new();
        let mut crashed: Option<usize> = None;
        for (i, op) in ops.iter().enumerate() {
            let res = apply_real(&fs, op);
            if self.injector.fired() {
                crashed = Some(i);
                break;
            }
            let expect = model.apply(op);
            if res.is_ok() != expect {
                self.injector.disarm();
                self.cleanup(&volume);
                return Err(fail(
                    format!(
                        "pre-crash differential mismatch on op {i} ({op}): real {:?}, model {}",
                        res.err().map(|e| e.kind()),
                        if expect { "success" } else { "failure" },
                    ),
                    None,
                ));
            }
        }
        let points = self.injector.points();
        self.injector.disarm();
        drop(fs); // return pooled connections before the restart view

        // Restart: fresh metadata filesystem and fresh connections
        // over whatever survived on disk.
        let rfs = StubFs::new(
            Arc::new(LocalFs::new(meta_dir.path()).expect("reopen meta root")),
            vec![self.sim.data_server(0, &volume)],
            Placement::round_robin(),
            {
                let mut o = self.sim.stubfs_options();
                o.breaker_threshold = 0;
                o
            },
        );
        let crashed_op = crashed.map(|i| &ops[i]);
        let verdict = verify_post_state(&rfs, &model, crashed_op, torn);
        drop(rfs);
        self.cleanup(&volume);
        verdict.map_err(|detail| fail(detail, crashed))?;
        Ok(points)
    }

    /// White-box removal of a run's volume from the server's root, so
    /// tens of thousands of runs don't accumulate on RAM-backed disk.
    fn cleanup(&self, volume: &str) {
        let _ = std::fs::remove_dir_all(self.sim.root(0).join(volume.trim_start_matches('/')));
    }
}

fn apply_real(fs: &StubFs, op: &CrashOp) -> io::Result<()> {
    match op {
        CrashOp::Write { path, data } => {
            let mut h = fs.open(
                path,
                OpenFlags::WRITE | OpenFlags::CREATE | OpenFlags::TRUNCATE,
                0o644,
            )?;
            h.pwrite(data, 0)?;
            Ok(())
        }
        CrashOp::Delete { path } => fs.unlink(path),
        CrashOp::Rename { from, to } => fs.rename(from, to),
        CrashOp::Mkdir { path } => fs.mkdir(path, 0o755),
        CrashOp::Truncate { path, size } => fs.truncate(path, *size),
    }
}

/// The state of `path` on the restarted filesystem.
fn real_state(fs: &StubFs, path: &str) -> Result<State, String> {
    match fs.stat(path) {
        Ok(st) if st.is_dir() => Ok(State::Dir),
        Ok(_) => match fs.read_file(path) {
            Ok(b) => Ok(State::File(b)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(State::Absent),
            Err(e) => Err(format!("read {path}: unexpected error {e}")),
        },
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(State::Absent),
        Err(e) if e.kind() == io::ErrorKind::InvalidData => Ok(State::Torn),
        Err(e) => Err(format!("stat {path}: unexpected error {e}")),
    }
}

/// Check a restarted filesystem against the model. `crashed_op` is the
/// op the crash landed in (`None` for the golden run, where the state
/// must match the model exactly). `torn` marks a torn-write run, the
/// only mode in which a corrupt stub is an acceptable crash remnant.
fn verify_post_state(
    fs: &StubFs,
    pre: &CrashModel,
    crashed_op: Option<&CrashOp>,
    torn: bool,
) -> Result<(), String> {
    let report = fsck(fs).map_err(|e| format!("fsck failed: {e}"))?;
    if !report.unreachable.is_empty() {
        return Err(format!(
            "unreachable paths after crash: {:?}",
            report.unreachable
        ));
    }

    let (post, targets) = match crashed_op {
        Some(op) => {
            let mut m = pre.clone();
            m.apply(op);
            (m, op.targets())
        }
        None => (pre.clone(), BTreeSet::new()),
    };

    // Dangling stubs may only name the crashed op's own targets.
    for d in &report.dangling_stubs {
        if !targets.contains(d) {
            return Err(format!(
                "dangling stub {d} outside the crashed op's targets"
            ));
        }
    }
    // A clean kill leaves stubs whole or empty (= dangling), never
    // torn: every stub lands in a single pwrite. Only a torn-write
    // run may leave a corrupt stub, and then only on the crashed op's
    // own target.
    for c in &report.corrupt_stubs {
        if !torn {
            return Err(format!("corrupt stub {c} from a clean (non-torn) kill"));
        }
        if !targets.contains(c) {
            return Err(format!("corrupt stub {c} outside the crashed op's targets"));
        }
    }
    // Every healthy file must be one the model knows (no phantoms).
    for h in &report.healthy {
        if !pre.files.contains_key(h) && !post.files.contains_key(h) {
            return Err(format!("phantom file {h} not in the model"));
        }
    }
    // Orphans: only rename clobbers make them; a crash mid-op may or
    // may not have reached the clobber.
    let lo = pre.orphans.min(post.orphans);
    let hi = pre.orphans.max(post.orphans);
    let n = report.orphaned_data.len() as u64;
    if n < lo || n > hi {
        return Err(format!(
            "{n} orphaned data files; the ordering theorem allows {lo}..={hi}"
        ));
    }

    // Per-path acceptance: untouched paths exactly match the pre-crash
    // model (failure coherence); the crashed op's targets may be in
    // the pre state, the post state, or — for a write — the in-flight
    // empty data file.
    let mut paths: BTreeSet<String> = BTreeSet::new();
    paths.extend(pre.files.keys().cloned());
    paths.extend(post.files.keys().cloned());
    paths.extend(pre.dirs.iter().cloned());
    paths.extend(post.dirs.iter().cloned());
    paths.extend(targets.iter().cloned());
    for p in &paths {
        let got = real_state(fs, p)?;
        let s_pre = pre.state(p);
        let s_post = post.state(p);
        let in_flight_write = matches!(
            crashed_op,
            Some(CrashOp::Write { path, .. }) if path == p
        ) && got == State::File(Vec::new());
        // A torn stub reads as an error (InvalidData), never as
        // garbage bytes; acceptable only where the crash landed.
        let torn_target = torn && targets.contains(p) && got == State::Torn;
        if got != s_pre && got != s_post && !in_flight_write && !torn_target {
            return Err(format!(
                "{p}: found {got}, accepted states are pre={s_pre} / post={s_post}"
            ));
        }
    }

    // Repair must converge in one pass, be a no-op on the second, and
    // remove exactly what the scan reported.
    let all = RepairOptions {
        remove_dangling_stubs: true,
        remove_orphans: true,
    };
    let removed = repair(fs, &report, all).map_err(|e| format!("repair failed: {e}"))?;
    let expected = (report.dangling_stubs.len()
        + report.corrupt_stubs.len()
        + report.orphaned_data.len()) as u64;
    if removed != expected {
        return Err(format!(
            "repair removed {removed} items, scan reported {expected}"
        ));
    }
    let after = fsck(fs).map_err(|e| format!("post-repair fsck failed: {e}"))?;
    if !after.is_clean() || !after.unreachable.is_empty() {
        return Err(format!("repair did not converge: {after:?}"));
    }
    let removed2 = repair(fs, &after, all).map_err(|e| format!("second repair failed: {e}"))?;
    if removed2 != 0 {
        return Err(format!(
            "second repair removed {removed2} items; must be a no-op"
        ));
    }
    // Repair must not have touched any path the crash did not.
    for (p, bytes) in &pre.files {
        if targets.contains(p) {
            continue;
        }
        let got = real_state(fs, p)?;
        if got != State::File(bytes.clone()) {
            return Err(format!("repair disturbed healthy file {p}: now {got}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chirp_proto::DurabilityPoint;

    /// Build a StubFs over a fresh meta dir and a named volume on the
    /// harness's server, instrumented (or not) with its injector.
    fn fixture(
        h: &CrashHarness,
        volume: &str,
        instrumented: bool,
    ) -> (chirp_proto::testutil::TempDir, StubFs) {
        let meta_dir = sim_root();
        let persist = if instrumented {
            h.persist.clone()
        } else {
            Persist::none()
        };
        let meta = LocalFs::with_persistence(meta_dir.path(), persist.clone()).unwrap();
        let mut opts = h.sim.stubfs_options();
        opts.persist = persist;
        opts.breaker_threshold = 0;
        let fs = StubFs::new(
            Arc::new(meta),
            vec![h.sim.data_server(0, volume)],
            Placement::round_robin(),
            opts,
        );
        fs.ensure_volumes().unwrap();
        (meta_dir, fs)
    }

    #[test]
    fn golden_journal_orders_stub_before_data_on_create() {
        let h = CrashHarness::new();
        let (_meta, fs) = fixture(&h, "/order", true);
        h.injector.arm(None);
        apply_real(
            &fs,
            &CrashOp::Write {
                path: "/f".into(),
                data: b"payload".to_vec(),
            },
        )
        .unwrap();
        let entries = h.injector.journal().entries();
        h.injector.disarm();
        let stub = entries
            .iter()
            .position(|e| e.point == DurabilityPoint::StubWrite)
            .expect("stub write journaled");
        let data = entries
            .iter()
            .position(|e| e.point == DurabilityPoint::DataCreate)
            .expect("data create journaled");
        assert!(
            stub < data,
            "stub must be durable before data exists: {entries:?}"
        );
        h.cleanup("/order");
    }

    #[test]
    fn golden_journal_orders_data_before_stub_on_delete() {
        let h = CrashHarness::new();
        let (_meta, fs) = fixture(&h, "/order2", true);
        apply_real(
            &fs,
            &CrashOp::Write {
                path: "/f".into(),
                data: b"payload".to_vec(),
            },
        )
        .unwrap();
        h.injector.arm(None);
        fs.unlink("/f").unwrap();
        let entries = h.injector.journal().entries();
        h.injector.disarm();
        let data = entries
            .iter()
            .position(|e| e.point == DurabilityPoint::DataUnlink)
            .expect("data unlink journaled");
        let stub = entries
            .iter()
            .position(|e| e.point == DurabilityPoint::StubUnlink)
            .expect("stub unlink journaled");
        assert!(
            data < stub,
            "data must go before the stub on delete: {entries:?}"
        );
        h.cleanup("/order2");
    }

    #[test]
    fn create_killed_between_stub_and_data_reads_not_found_and_repairs() {
        let h = CrashHarness::new();
        let (meta_dir, fs) = fixture(&h, "/dangle", true);
        let op = CrashOp::Write {
            path: "/f".into(),
            data: b"payload".to_vec(),
        };
        // Golden pass to learn where the data-create point sits.
        h.injector.arm(None);
        apply_real(&fs, &op).unwrap();
        let pos = h
            .injector
            .journal()
            .entries()
            .iter()
            .position(|e| e.point == DurabilityPoint::DataCreate)
            .expect("data create journaled") as u64;
        fs.unlink("/f").unwrap();
        // Replay, killed right before the data file is created: the
        // stub is durable, the data is not — the paper's dangling case.
        h.injector.arm(Some(pos));
        let err = apply_real(&fs, &op).expect_err("create must die");
        assert!(h.injector.fired(), "injector fired");
        assert!(chirp_proto::persist::is_crash(&err) || err.kind() == io::ErrorKind::Other);
        h.injector.disarm();
        // White-box: the stub file itself survived with content.
        let host_stub = meta_dir.path().join("f");
        assert!(host_stub.exists(), "stub survived the crash");
        assert!(std::fs::metadata(&host_stub).unwrap().len() > 0);
        // The mandated read-side behavior: file not found, not garbage.
        let e = fs.read_file("/f").expect_err("dangling stub must not read");
        assert_eq!(e.kind(), io::ErrorKind::NotFound);
        // fsck sees exactly one dangling stub; repair converges.
        let report = fsck(&fs).unwrap();
        assert_eq!(report.dangling_stubs, vec!["/f".to_string()]);
        let all = RepairOptions {
            remove_dangling_stubs: true,
            remove_orphans: true,
        };
        assert_eq!(repair(&fs, &report, all).unwrap(), 1);
        let clean = fsck(&fs).unwrap();
        assert!(clean.is_clean(), "{clean:?}");
        assert_eq!(repair(&fs, &clean, all).unwrap(), 0);
        h.cleanup("/dangle");
    }

    #[test]
    fn torn_stub_write_is_classified_corrupt_and_repaired() {
        let h = CrashHarness::new();
        let (_meta, fs) = fixture(&h, "/torn", true);
        // Golden pass to learn where the stub's pwrite point sits in a
        // create's durability sequence (same shape for every root
        // path).
        h.injector.arm(None);
        apply_real(
            &fs,
            &CrashOp::Write {
                path: "/probe".into(),
                data: b"payload".to_vec(),
            },
        )
        .unwrap();
        let pos = h
            .injector
            .journal()
            .entries()
            .iter()
            .position(|e| e.point == DurabilityPoint::Pwrite)
            .expect("stub pwrite journaled") as u64;
        fs.unlink("/probe").unwrap();

        // Tear the stub write of eight creates with distinct seeds.
        // The torn prefix length is `seed`-dependent; a zero-length
        // tear leaves a dangling (empty) stub, any other length a
        // corrupt one — never a healthy file.
        let paths: Vec<String> = (0..8).map(|i| format!("/f{i}")).collect();
        for (i, path) in paths.iter().enumerate() {
            h.injector.arm_torn(Some(pos), i as u64);
            let err = apply_real(
                &fs,
                &CrashOp::Write {
                    path: path.clone(),
                    data: b"payload".to_vec(),
                },
            )
            .expect_err("create must die at the stub write");
            assert!(h.injector.fired(), "injector fired for {path}");
            assert!(chirp_proto::persist::is_crash(&err) || err.kind() == io::ErrorKind::Other);
            h.injector.disarm();
            // The mandated read-side behavior: an error, never
            // garbage bytes.
            let e = fs.read_file(path).expect_err("torn stub must not read");
            assert!(
                matches!(
                    e.kind(),
                    io::ErrorKind::NotFound | io::ErrorKind::InvalidData
                ),
                "torn stub read gave {e}"
            );
        }
        let report = fsck(&fs).unwrap();
        let mut flagged: Vec<String> = report
            .dangling_stubs
            .iter()
            .chain(&report.corrupt_stubs)
            .cloned()
            .collect();
        flagged.sort();
        assert_eq!(flagged, paths, "every torn create flagged: {report:?}");
        assert!(
            !report.corrupt_stubs.is_empty(),
            "some seed must tear mid-stub (non-empty prefix): {report:?}"
        );
        assert!(
            report.orphaned_data.is_empty(),
            "stub-first create cannot orphan data"
        );
        // One repair pass removes them all; a second is a no-op.
        let all = RepairOptions {
            remove_dangling_stubs: true,
            remove_orphans: true,
        };
        assert_eq!(repair(&fs, &report, all).unwrap(), paths.len() as u64);
        let clean = fsck(&fs).unwrap();
        assert!(clean.is_clean(), "{clean:?}");
        assert_eq!(repair(&fs, &clean, all).unwrap(), 0);
        h.cleanup("/torn");
    }

    #[test]
    fn checker_rejects_planted_orphan() {
        let h = CrashHarness::new();
        let (_meta, fs) = fixture(&h, "/teeth1", false);
        let mut model = CrashModel::new();
        let op = CrashOp::Write {
            path: "/a".into(),
            data: b"abc".to_vec(),
        };
        apply_real(&fs, &op).unwrap();
        assert!(model.apply(&op));
        verify_post_state(&fs, &model, None, false).expect("clean state accepted");
        // Plant a data file no stub references, behind the fs's back.
        let mut conn = h.sim.connect(0);
        let fd = conn
            .open(
                "/teeth1/planted.data",
                OpenFlags::WRITE | OpenFlags::CREATE,
                0o644,
            )
            .unwrap();
        conn.close(fd).unwrap();
        let err = verify_post_state(&fs, &model, None, false).expect_err("orphan must be rejected");
        assert!(err.contains("orphaned"), "unexpected detail: {err}");
        h.cleanup("/teeth1");
    }

    #[test]
    fn checker_rejects_phantom_file() {
        let h = CrashHarness::new();
        let (_meta, fs) = fixture(&h, "/teeth2", false);
        let model = CrashModel::new();
        // A file exists that the model never created.
        apply_real(
            &fs,
            &CrashOp::Write {
                path: "/ghost".into(),
                data: b"boo".to_vec(),
            },
        )
        .unwrap();
        let err =
            verify_post_state(&fs, &model, None, false).expect_err("phantom must be rejected");
        assert!(err.contains("phantom"), "unexpected detail: {err}");
        h.cleanup("/teeth2");
    }

    #[test]
    fn model_rename_clobber_counts_an_orphan() {
        let mut m = CrashModel::new();
        assert!(m.apply(&CrashOp::Write {
            path: "/a".into(),
            data: vec![1],
        }));
        assert!(m.apply(&CrashOp::Write {
            path: "/b".into(),
            data: vec![2],
        }));
        assert!(m.apply(&CrashOp::Rename {
            from: "/a".into(),
            to: "/b".into(),
        }));
        assert_eq!(m.orphans(), 1);
        // Self-rename is a no-op, not a clobber.
        assert!(m.apply(&CrashOp::Rename {
            from: "/b".into(),
            to: "/b".into(),
        }));
        assert_eq!(m.orphans(), 1);
        // Missing parent fails without touching state.
        assert!(!m.apply(&CrashOp::Write {
            path: "/d0/x".into(),
            data: vec![3],
        }));
        assert!(m.apply(&CrashOp::Mkdir { path: "/d0".into() }));
        assert!(m.apply(&CrashOp::Write {
            path: "/d0/x".into(),
            data: vec![3],
        }));
    }
}

//! Seeded generation of Chirp operation sequences.
//!
//! The generator draws from small, fixed pools of paths, flags, and
//! ACL specs, chosen so that interesting collisions are frequent: the
//! same few names are opened, unlinked, renamed over each other, and
//! re-created; directories are made and removed under paths that files
//! also target; descriptors are referenced by raw number so stale-fd
//! and double-close cases arise naturally. A sequence is a pure
//! function of its seed.
//!
//! Deliberately *not* generated, to keep the model honest:
//!
//! * `APPEND` opens — Linux `pwrite(2)` ignores the offset on
//!   `O_APPEND` descriptors, a platform quirk this system does not
//!   promise to reproduce;
//! * flag combinations the real `OpenOptions` rejects up front
//!   (truncate or create without write);
//! * directory names that collide with file names — `rename` of
//!   directories is out of the model's scope.

use chirp_proto::OpenFlags;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One generated client operation. Paths are protocol paths relative
/// to the sequence's namespace root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `OPEN` with a flag combination from the fixed pool.
    Open {
        /// Target path.
        path: String,
        /// Open flags.
        flags: OpenFlags,
    },
    /// `CLOSE` a raw descriptor number (may be stale or never opened).
    Close {
        /// Descriptor number.
        fd: i32,
    },
    /// `PREAD`.
    Pread {
        /// Descriptor number.
        fd: i32,
        /// Bytes requested.
        len: u64,
        /// File offset.
        off: u64,
    },
    /// `PWRITE`.
    Pwrite {
        /// Descriptor number.
        fd: i32,
        /// Payload bytes.
        data: Vec<u8>,
        /// File offset.
        off: u64,
    },
    /// `FSTAT`.
    Fstat {
        /// Descriptor number.
        fd: i32,
    },
    /// `FSYNC` a raw descriptor number (may be stale or never opened).
    Fsync {
        /// Descriptor number.
        fd: i32,
    },
    /// `STAT` by path.
    Stat {
        /// Target path.
        path: String,
    },
    /// `UNLINK`.
    Unlink {
        /// Target path.
        path: String,
    },
    /// `RENAME`.
    Rename {
        /// Source path.
        from: String,
        /// Destination path.
        to: String,
    },
    /// `MKDIR`.
    Mkdir {
        /// Target path.
        path: String,
    },
    /// `RMDIR`.
    Rmdir {
        /// Target path.
        path: String,
    },
    /// `GETDIR`.
    Getdir {
        /// Target path.
        path: String,
    },
    /// `GETDIRSTAT`: listing with attributes in one exchange.
    GetdirStat {
        /// Target path.
        path: String,
    },
    /// `STATMULTI`: a batch of paths statted in one exchange, one
    /// verdict per path.
    StatMulti {
        /// Target paths, in reply order.
        paths: Vec<String>,
    },
    /// A pipelined burst: the ops ride the connection back to back and
    /// their replies settle strictly in order — the generator's probe
    /// for FIFO reply matching, including error verdicts landing
    /// mid-pipeline without shifting later replies.
    Burst {
        /// The pipelined operations, in send order.
        ops: Vec<BurstOp>,
    },
    /// `GETACL`.
    Getacl {
        /// Target path.
        path: String,
    },
    /// `SETACL`.
    Setacl {
        /// Target directory.
        path: String,
        /// Subject pattern to grant or revoke.
        subject: String,
        /// Rights spec (possibly empty = revoke, possibly invalid).
        rights: String,
    },
    /// `TRUNCATE` by path.
    Truncate {
        /// Target path.
        path: String,
        /// New size.
        size: u64,
    },
    /// `WHOAMI`.
    Whoami,
    /// Drop the connection and reconnect: the server must close every
    /// descriptor and a fresh session must renumber from zero.
    Disconnect,
}

/// An operation simple enough to ride a pipelined burst: exactly one
/// reply each and no descriptor-table mutation, so the fd-sweep
/// invariant between runner and model survives any burst.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BurstOp {
    /// `PREAD` (body-shaped reply).
    Pread {
        /// Descriptor number.
        fd: i32,
        /// Bytes requested.
        len: u64,
        /// File offset.
        off: u64,
    },
    /// `PWRITE` (request payload, status-shaped reply).
    Pwrite {
        /// Descriptor number.
        fd: i32,
        /// Payload bytes.
        data: Vec<u8>,
        /// File offset.
        off: u64,
    },
    /// `STAT` by path (status-plus-words reply).
    Stat {
        /// Target path.
        path: String,
    },
}

/// File-name pool. Nested names share the two directory names so
/// operations race over the same tree.
const FILES: &[&str] = &["/f0", "/f1", "/f2", "/d0/f0", "/d0/f1", "/d1/f0"];
/// Directory-name pool, disjoint from file leaf names.
const DIRS: &[&str] = &["/d0", "/d1"];
/// Flag pool: every combination the real `OpenOptions` accepts and the
/// model reproduces.
const FLAG_POOL: &[fn() -> OpenFlags] = &[
    || OpenFlags::READ,
    || OpenFlags::WRITE | OpenFlags::CREATE,
    || OpenFlags::READ | OpenFlags::WRITE | OpenFlags::CREATE,
    || OpenFlags::READ | OpenFlags::WRITE | OpenFlags::CREATE | OpenFlags::TRUNCATE,
    || OpenFlags::WRITE | OpenFlags::CREATE | OpenFlags::EXCLUSIVE,
    || OpenFlags::READ | OpenFlags::WRITE,
];
/// Rights specs for `SETACL`, including a revocation (empty), reserve
/// grants, and one spec the parser rejects.
const RIGHTS_POOL: &[&str] = &["rwlda", "rl", "rwl", "", "v(rwl)", "rwldav(rl)", "x!"];

/// Seeded operation-sequence generator.
pub struct OpGen {
    rng: SmallRng,
    subject: String,
}

impl OpGen {
    /// A generator for `seed`, granting/revoking ACL entries against
    /// `subject` (the differential session's identity).
    pub fn new(seed: u64, subject: &str) -> OpGen {
        OpGen {
            rng: SmallRng::seed_from_u64(seed),
            subject: subject.to_string(),
        }
    }

    fn pick<'a>(&mut self, pool: &[&'a str]) -> &'a str {
        pool[self.rng.gen_range(0..pool.len())]
    }

    /// A path from the combined pool (files, directories, and the
    /// root), for operations valid on anything.
    fn any_path(&mut self) -> String {
        let n = self.rng.gen_range(0..FILES.len() + DIRS.len() + 1);
        if n < FILES.len() {
            FILES[n].to_string()
        } else if n < FILES.len() + DIRS.len() {
            DIRS[n - FILES.len()].to_string()
        } else {
            "/".to_string()
        }
    }

    /// A path from files ∪ dirs (never the root — these ops resolve a
    /// parent, and the namespace root must stay put).
    fn node_path(&mut self) -> String {
        let n = self.rng.gen_range(0..FILES.len() + DIRS.len());
        if n < FILES.len() {
            FILES[n].to_string()
        } else {
            DIRS[n - FILES.len()].to_string()
        }
    }

    fn fd(&mut self) -> i32 {
        self.rng.gen_range(0..5i32)
    }

    /// One op for a pipelined burst: mostly reads, some writes, some
    /// path stats, drawn against the same stale-fd-prone pools so
    /// error verdicts land mid-pipeline often.
    fn burst_op(&mut self) -> BurstOp {
        match self.rng.gen_range(0u32..10) {
            0..=3 => BurstOp::Pread {
                fd: self.fd(),
                len: self.rng.gen_range(0u64..192),
                off: self.rng.gen_range(0u64..256),
            },
            4..=6 => {
                let len = self.rng.gen_range(0usize..48);
                let byte = self.rng.gen_range(0u8..255);
                BurstOp::Pwrite {
                    fd: self.fd(),
                    data: vec![byte; len],
                    off: self.rng.gen_range(0u64..200),
                }
            }
            _ => BurstOp::Stat {
                path: self.node_path(),
            },
        }
    }

    fn one(&mut self) -> Op {
        match self.rng.gen_range(0u32..100) {
            // Descriptor traffic dominates, as it does in real
            // workloads.
            0..=17 => Op::Open {
                path: self.node_path(),
                flags: FLAG_POOL[self.rng.gen_range(0..FLAG_POOL.len())](),
            },
            18..=27 => Op::Close { fd: self.fd() },
            28..=39 => Op::Pread {
                fd: self.fd(),
                len: self.rng.gen_range(0u64..192),
                off: self.rng.gen_range(0u64..256),
            },
            40..=53 => {
                let len = self.rng.gen_range(0usize..48);
                let byte = self.rng.gen_range(0u8..255);
                Op::Pwrite {
                    fd: self.fd(),
                    data: vec![byte; len],
                    off: self.rng.gen_range(0u64..200),
                }
            }
            54..=56 => Op::Fstat { fd: self.fd() },
            57 => Op::Fsync { fd: self.fd() },
            // Stat's rights come from the *parent* of the target, so
            // "/" is excluded: the namespace root's parent lies outside
            // the modeled tree. (Ops that check rights on the target
            // itself — getdir, getacl, setacl — do include "/".)
            58..=61 => Op::Stat {
                path: self.node_path(),
            },
            62..=63 => {
                let n = self.rng.gen_range(1usize..5);
                Op::StatMulti {
                    paths: (0..n).map(|_| self.node_path()).collect(),
                }
            }
            64..=69 => Op::Unlink {
                path: self.node_path(),
            },
            70..=74 => Op::Rename {
                from: self.pick(FILES).to_string(),
                to: self.pick(FILES).to_string(),
            },
            75..=80 => Op::Mkdir {
                path: self.pick(DIRS).to_string(),
            },
            81..=84 => Op::Rmdir {
                path: self.pick(DIRS).to_string(),
            },
            85..=86 => Op::Getdir {
                path: self.any_path(),
            },
            87..=88 => Op::GetdirStat {
                path: self.any_path(),
            },
            89..=90 => Op::Getacl {
                path: self.any_path(),
            },
            91..=93 => {
                let subject = match self.rng.gen_range(0u32..3) {
                    0 => self.subject.clone(),
                    1 => "hostname:*".to_string(),
                    _ => "unix:alice".to_string(),
                };
                Op::Setacl {
                    path: if self.rng.gen_bool(0.5) {
                        "/".to_string()
                    } else {
                        self.pick(DIRS).to_string()
                    },
                    subject,
                    rights: self.pick(RIGHTS_POOL).to_string(),
                }
            }
            94..=95 => Op::Truncate {
                path: self.pick(FILES).to_string(),
                size: self.rng.gen_range(0u64..320),
            },
            96 => {
                let n = self.rng.gen_range(2usize..7);
                Op::Burst {
                    ops: (0..n).map(|_| self.burst_op()).collect(),
                }
            }
            97 => Op::Whoami,
            _ => Op::Disconnect,
        }
    }

    /// Generate one sequence: 4–24 operations.
    pub fn sequence(&mut self) -> Vec<Op> {
        let n = self.rng.gen_range(4usize..24);
        (0..n).map(|_| self.one()).collect()
    }
}

/// The ops for `seed`, as the differential checker replays them.
pub fn ops_for_seed(seed: u64, subject: &str) -> Vec<Op> {
    OpGen::new(seed, subject).sequence()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let a = ops_for_seed(42, "hostname:x");
        let b = ops_for_seed(42, "hostname:x");
        assert_eq!(a, b);
        assert!(a.len() >= 4);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut distinct = 0;
        for seed in 0..20 {
            if ops_for_seed(seed, "s") != ops_for_seed(seed + 1, "s") {
                distinct += 1;
            }
        }
        assert!(distinct >= 18, "only {distinct}/20 neighbours differed");
    }

    #[test]
    fn pools_cover_every_op_kind() {
        // Across a modest seed range every variant should appear.
        let mut seen = [false; 20];
        for seed in 0..500 {
            for op in ops_for_seed(seed, "s") {
                let idx = match op {
                    Op::Open { .. } => 0,
                    Op::Close { .. } => 1,
                    Op::Pread { .. } => 2,
                    Op::Pwrite { .. } => 3,
                    Op::Fstat { .. } => 4,
                    Op::Fsync { .. } => 19,
                    Op::Stat { .. } => 5,
                    Op::Unlink { .. } => 6,
                    Op::Rename { .. } => 7,
                    Op::Mkdir { .. } => 8,
                    Op::Rmdir { .. } => 9,
                    Op::Getdir { .. } => 10,
                    Op::Getacl { .. } => 11,
                    Op::Setacl { .. } => 12,
                    Op::Truncate { .. } => 13,
                    Op::Whoami => 14,
                    Op::Disconnect => 15,
                    Op::GetdirStat { .. } => 16,
                    Op::StatMulti { .. } => 17,
                    Op::Burst { .. } => 18,
                };
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "unreached op kinds: {seen:?}");
    }

    #[test]
    fn bursts_mix_op_shapes() {
        // Bursts must carry every BurstOp kind somewhere in the seed
        // range, or the pipelined replay never sees mixed reply shapes.
        let (mut preads, mut pwrites, mut stats) = (0, 0, 0);
        for seed in 0..2000 {
            for op in ops_for_seed(seed, "s") {
                if let Op::Burst { ops } = op {
                    assert!((2..=6).contains(&ops.len()));
                    for b in ops {
                        match b {
                            BurstOp::Pread { .. } => preads += 1,
                            BurstOp::Pwrite { .. } => pwrites += 1,
                            BurstOp::Stat { .. } => stats += 1,
                        }
                    }
                }
            }
        }
        assert!(
            preads > 0 && pwrites > 0 && stats > 0,
            "burst shape mix missing: {preads} preads, {pwrites} pwrites, {stats} stats"
        );
    }
}

//! Declarative mass-tenant scenarios with asserted telemetry envelopes.
//!
//! A [`Scenario`] composes a fleet — N in-process servers, M client
//! sessions with weighted roles — and a phased load schedule (ramp,
//! stampede, steady state) over the [`SimTss`](crate::harness::SimTss)
//! harness: everything runs on the in-memory network and the shared
//! virtual clock, so a thousand-tenant stampede needs no ports and no
//! wall-clock sleeps. After the fleet drains, the runner evaluates
//! *envelopes* — named predicates over a [`ScenarioReport`] holding
//! the client-side metrics, the merged server-side telemetry delta,
//! and resource measurements (RSS growth, wall/virtual elapsed).
//!
//! Determinism and reproduction follow the rest of the crate's
//! contract: every client's behavior is a function of
//! `(scenario seed, phase, client index)`, a failed envelope prints a
//! `SCENARIO_SEED=<n>` repro line, and small fleets are delta-debugged
//! ([`ddmin`]) down to a minimal set of clients that still violates
//! the envelope — which is sound because an envelope is a function of
//! the report, and the report carries the (shrunken) fleet size.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use chirp_client::{AuthMethod, Connection};
use chirp_server::KeyRing;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use telemetry::{MetricsSnapshot, Registry};

use crate::diff::ddmin;
use crate::harness::{SimTss, SIM_TIMEOUT};

/// Fleets above this size are not delta-debugged on failure: each
/// shrink candidate replays the whole scenario against a fresh
/// instance, which is only worth the cycles when the fleet is small
/// enough to minimize quickly.
const SHRINK_CAP: usize = 96;

/// Number of files the [`standard_setup`] fixture creates under
/// `/shared` on every server.
pub const SHARED_FILES: usize = 8;

/// The scenario seed: `SCENARIO_SEED` env override, else `default`.
pub fn scenario_seed(default: u64) -> u64 {
    std::env::var("SCENARIO_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The fleet multiplier from `SCENARIO_SCALE` (default 1.0). Values
/// below 1 shrink every scenario for quick iteration; values above 1
/// scale soaks up toward headline sizes.
pub fn scenario_scale() -> f64 {
    std::env::var("SCENARIO_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// A fleet size: the debug or release base (optimized builds push the
/// simulated tenancy an order of magnitude higher) scaled by
/// [`scenario_scale`], never below 1. Shared by the scenario suite,
/// the connection-scale bench, and the idle soak so one knob resizes
/// every mass-tenant workload.
pub fn fleet_size(debug_base: usize, release_base: usize) -> usize {
    let base = if cfg!(debug_assertions) {
        debug_base
    } else {
        release_base
    };
    ((base as f64 * scenario_scale()).round() as usize).max(1)
}

/// Resident set size in bytes (`/proc/self/statm`), `None` where the
/// host doesn't offer it.
pub fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4096)
}

/// What one simulated tenant does each round.
#[derive(Clone)]
pub enum Role {
    /// Cold-opens the shared tree: stat, list, and read one of the
    /// [`standard_setup`] files — the SP5 init-stampede access shape.
    Reader,
    /// Writes a private file and reads it back, verifying the bytes.
    Writer,
    /// Replicates a shared file to another server with `THIRDPUT`
    /// (server-to-server transfer, the distribution-tree primitive).
    Replicator,
    /// Grants and revokes rights for a crowd of virtual users on its
    /// own directory — mass ACL churn.
    AclChurner,
    /// Reads one fixed path and verifies its length — the fan-in side
    /// of an artifact distribution (every CI consumer pulls the same
    /// file from whichever replica it landed on).
    PathReader {
        /// Path to fetch.
        path: String,
        /// Expected byte count.
        len: usize,
    },
    /// Runs a full challenge–response handshake on a fresh connection
    /// every round (connect, nonce, MAC, verify, drop).
    AuthStormer {
        /// Auth method label the key is registered under.
        method: String,
        /// Subject name to claim.
        name: String,
        /// Key material to sign the challenge with.
        key: Vec<u8>,
        /// Whether the handshake should be granted. `false` models a
        /// rotated-out or never-registered credential: the denial is
        /// counted as expected, and a *grant* is the failure.
        expect_success: bool,
    },
}

impl fmt::Debug for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Reader => write!(f, "Reader"),
            Role::Writer => write!(f, "Writer"),
            Role::Replicator => write!(f, "Replicator"),
            Role::AclChurner => write!(f, "AclChurner"),
            Role::PathReader { path, len } => write!(f, "PathReader({path}, {len}B)"),
            // Key bytes stay out of failure reports and logs.
            Role::AuthStormer {
                method,
                name,
                expect_success,
                ..
            } => write!(
                f,
                "AuthStormer({method}:{name}, expect_success={expect_success})"
            ),
        }
    }
}

/// One client session: a role and how many rounds it runs before the
/// session ends.
#[derive(Debug, Clone)]
pub struct ClientSpec {
    /// The tenant's behavior.
    pub role: Role,
    /// Rounds before the session closes (a stampede is rounds = 1 at
    /// huge fleet width; a soak is many rounds at moderate width).
    pub rounds: usize,
}

/// One step of the load schedule. All of a phase's clients run to
/// completion (on the worker pool) before the next phase starts, so a
/// ramp is successive phases of growing width and a stampede is one
/// maximally wide phase.
#[derive(Clone)]
pub struct Phase {
    /// Phase label (failure reports and minimized fleets name it).
    pub name: &'static str,
    /// Runs on the harness at the phase boundary — where a rotation
    /// scenario swaps keys in the shared [`KeyRing`] under load.
    pub on_start: Option<fn(&SimTss)>,
    /// The client sessions this phase launches.
    pub clients: Vec<ClientSpec>,
}

impl Phase {
    /// An empty phase named `name`.
    pub fn new(name: &'static str) -> Phase {
        Phase {
            name,
            on_start: None,
            clients: Vec::new(),
        }
    }

    /// Install a phase-boundary hook.
    pub fn on_start(mut self, f: fn(&SimTss)) -> Phase {
        self.on_start = Some(f);
        self
    }

    /// Add `count` clients of `role`, each running `rounds` rounds.
    pub fn with(mut self, count: usize, role: Role, rounds: usize) -> Phase {
        for _ in 0..count {
            self.clients.push(ClientSpec {
                role: role.clone(),
                rounds,
            });
        }
        self
    }
}

/// A named envelope: the check name and a predicate over the report.
/// Written as plain function pointers so a scenario stays `Clone` and
/// a shrink re-run evaluates the identical predicate.
pub type Check = (&'static str, fn(&ScenarioReport) -> Result<(), String>);

/// A declarative mass-tenant scenario. Build one with [`Scenario::new`]
/// plus the chained knobs, then [`Scenario::run`].
#[derive(Clone)]
pub struct Scenario {
    name: &'static str,
    seed: u64,
    servers: usize,
    workers: usize,
    max_connections: Option<usize>,
    keys: Option<KeyRing>,
    setup: Option<fn(&SimTss)>,
    phases: Vec<Phase>,
    checks: Vec<Check>,
}

impl Scenario {
    /// A scenario named `name`, seeded with `seed` (pass it through
    /// [`scenario_seed`] so `SCENARIO_SEED` reproduces failures).
    pub fn new(name: &'static str, seed: u64) -> Scenario {
        Scenario {
            name,
            seed,
            servers: 1,
            workers: 32,
            max_connections: None,
            keys: None,
            setup: None,
            phases: Vec::new(),
            checks: Vec::new(),
        }
    }

    /// Number of servers in the instance (default 1).
    pub fn servers(mut self, n: usize) -> Scenario {
        self.servers = n;
        self
    }

    /// Worker threads multiplexing the client sessions (default 32):
    /// thousands of short-lived tenants run on a bounded pool, so the
    /// fleet scales without a thread per client.
    pub fn workers(mut self, n: usize) -> Scenario {
        self.workers = n.max(1);
        self
    }

    /// Per-server connection limit (default: sized to the widest
    /// phase plus slack, so an intentional stampede isn't refused).
    pub fn max_connections(mut self, n: usize) -> Scenario {
        self.max_connections = Some(n);
        self
    }

    /// Key ring installed on every server. Keep a clone to rotate
    /// credentials from a phase hook.
    pub fn keys(mut self, ring: KeyRing) -> Scenario {
        self.keys = Some(ring);
        self
    }

    /// Fixture preparation, run once before the first phase
    /// (typically [`standard_setup`]).
    pub fn setup(mut self, f: fn(&SimTss)) -> Scenario {
        self.setup = Some(f);
        self
    }

    /// Append a phase to the schedule.
    pub fn phase(mut self, phase: Phase) -> Scenario {
        self.phases.push(phase);
        self
    }

    /// Append an envelope check.
    pub fn check(
        mut self,
        name: &'static str,
        f: fn(&ScenarioReport) -> Result<(), String>,
    ) -> Scenario {
        self.checks.push((name, f));
        self
    }

    /// Total client sessions across all phases.
    pub fn fleet(&self) -> usize {
        self.phases.iter().map(|p| p.clients.len()).sum()
    }

    /// Run the scenario and evaluate every envelope. On violation the
    /// failure carries the report, the repro line, and (for small
    /// fleets) a minimized fleet that still violates an envelope.
    pub fn run(&self) -> Result<ScenarioReport, Box<ScenarioFailure>> {
        let report = self.execute(&self.phases);
        let failed = self.eval(&report);
        if failed.is_empty() {
            return Ok(report);
        }
        let minimized = (self.fleet() <= SHRINK_CAP).then(|| self.shrink_fleet());
        Err(Box::new(ScenarioFailure {
            name: self.name,
            seed: self.seed,
            failed,
            minimized,
            report,
        }))
    }

    /// Evaluate every check; the violations.
    fn eval(&self, report: &ScenarioReport) -> Vec<(&'static str, String)> {
        self.checks
            .iter()
            .filter_map(|(name, f)| f(report).err().map(|msg| (*name, msg)))
            .collect()
    }

    /// Delta-debug the fleet down to a minimal client set that still
    /// violates some envelope. Each candidate replays against a fresh
    /// instance, so candidates cannot contaminate each other.
    fn shrink_fleet(&self) -> Vec<(usize, ClientSpec)> {
        let items: Vec<(usize, ClientSpec)> = self
            .phases
            .iter()
            .enumerate()
            .flat_map(|(pi, p)| p.clients.iter().map(move |c| (pi, c.clone())))
            .collect();
        ddmin(items, &mut |cand| {
            let phases = self.phases_from(cand);
            let report = self.execute(&phases);
            !self.eval(&report).is_empty()
        })
    }

    /// Rebuild the phase schedule from a shrink candidate: every phase
    /// keeps its position and `on_start` hook (a rotation boundary is
    /// part of the scenario even with zero surviving clients), only
    /// the client lists thin out.
    fn phases_from(&self, fleet: &[(usize, ClientSpec)]) -> Vec<Phase> {
        let mut phases: Vec<Phase> = self
            .phases
            .iter()
            .map(|p| Phase {
                name: p.name,
                on_start: p.on_start,
                clients: Vec::new(),
            })
            .collect();
        for (pi, spec) in fleet {
            phases[*pi].clients.push(spec.clone());
        }
        phases
    }

    /// Stand up a fresh instance and drain the given schedule through
    /// the worker pool.
    fn execute(&self, phases: &[Phase]) -> ScenarioReport {
        let mut builder = SimTss::builder().servers(self.servers);
        let widest = phases.iter().map(|p| p.clients.len()).max().unwrap_or(0);
        // Every phase client may hold a session at once; servers must
        // not refuse an intentional stampede unless the scenario says so.
        builder = builder.max_connections(self.max_connections.unwrap_or(widest + 16));
        if let Some(ring) = &self.keys {
            builder = builder.keys(ring.clone());
        }
        let sim = builder.build();
        if let Some(setup) = self.setup {
            setup(&sim);
        }

        let registry = Registry::new();
        let before: Vec<MetricsSnapshot> = sim
            .servers()
            .iter()
            .map(|s| s.telemetry().registry().snapshot())
            .collect();
        let rss_before = rss_bytes();
        let vt0 = sim.clock().now();
        let wall0 = Instant::now();

        for (pi, phase) in phases.iter().enumerate() {
            if let Some(hook) = phase.on_start {
                hook(&sim);
            }
            let next = AtomicUsize::new(0);
            let workers = self.workers.min(phase.clients.len().max(1));
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(spec) = phase.clients.get(i) else {
                            break;
                        };
                        run_client(
                            &sim,
                            spec,
                            client_seed(self.seed, pi, i),
                            &registry,
                            self.servers,
                        );
                    });
                }
            });
        }

        let wall_elapsed = wall0.elapsed();
        let virtual_elapsed = sim.clock().elapsed_since(vt0);
        let rss_grown = match (rss_before, rss_bytes()) {
            (Some(b), Some(a)) => Some(a.saturating_sub(b)),
            _ => None,
        };
        let mut servers_delta = MetricsSnapshot::default();
        for (server, before) in sim.servers().iter().zip(&before) {
            let after = server.telemetry().registry().snapshot();
            servers_delta.merge(&after.delta(before));
        }
        ScenarioReport {
            name: self.name,
            seed: self.seed,
            fleet: phases.iter().map(|p| p.clients.len()).sum(),
            client: registry.snapshot(),
            servers: servers_delta,
            virtual_elapsed,
            wall_elapsed,
            rss_grown,
        }
    }
}

/// Per-client deterministic seed: a function of the scenario seed,
/// the phase, and the client index only.
fn client_seed(seed: u64, phase: usize, client: usize) -> u64 {
    seed ^ (phase as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (client as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03)
}

/// Create the shared fixture every role layout assumes: `/shared`
/// with [`SHARED_FILES`] seeded files on every server.
pub fn standard_setup(sim: &SimTss) {
    for i in 0..sim.servers().len() {
        let mut conn = sim.connect(i);
        conn.mkdir("/shared", 0o755).expect("mkdir /shared");
        for k in 0..SHARED_FILES {
            let body: Vec<u8> = (0..512 + 64 * k).map(|j| (j % 251) as u8).collect();
            conn.putfile(&format!("/shared/f{k}"), 0o644, &body)
                .expect("seed shared file");
        }
    }
}

/// Run one client session: dial, authenticate, run the role's rounds,
/// drop the session. Outcomes land in the client registry.
fn run_client(sim: &SimTss, spec: &ClientSpec, seed: u64, reg: &Registry, servers: usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let ops = reg.counter("client.ops");
    let failures = reg.counter("client.failures");
    let denied = reg.counter("client.denied");
    let latency = reg.histogram("client.latency_ns");

    if let Role::AuthStormer {
        method,
        name,
        key,
        expect_success,
    } = &spec.role
    {
        // Every round is a whole fresh session: the handshake *is*
        // the workload.
        for _ in 0..spec.rounds {
            let si = rng.gen_range(0usize..servers);
            let t = Instant::now();
            let granted = Connection::connect_via(&sim.dialer(), &sim.endpoint(si), SIM_TIMEOUT)
                .and_then(|mut conn| conn.authenticate(&[AuthMethod::key(method, name, key)]));
            latency.record(t.elapsed().as_nanos() as u64);
            match (granted.is_ok(), expect_success) {
                (true, true) | (false, false) => {
                    if granted.is_ok() {
                        ops.inc()
                    } else {
                        denied.inc()
                    }
                }
                // A rotated-out key that still verifies is as much a
                // failure as a live key that doesn't.
                _ => failures.inc(),
            }
        }
        return;
    }

    let si = rng.gen_range(0usize..servers);
    let session = Connection::connect_via(&sim.dialer(), &sim.endpoint(si), SIM_TIMEOUT)
        .and_then(|mut conn| conn.authenticate(&[AuthMethod::Hostname]).map(|_| conn));
    let mut conn = match session {
        Ok(conn) => conn,
        Err(_) => {
            failures.inc();
            return;
        }
    };
    let tag = format!("{seed:016x}");
    for round in 0..spec.rounds {
        let t = Instant::now();
        let ok = run_round(
            sim, &mut conn, &spec.role, &tag, round, &mut rng, si, servers,
        );
        latency.record(t.elapsed().as_nanos() as u64);
        if ok {
            ops.inc()
        } else {
            failures.inc()
        }
    }
}

/// One round of a hostname-authenticated role on a session attached
/// to server `si`. `true` on success.
#[allow(clippy::too_many_arguments)]
fn run_round(
    sim: &SimTss,
    conn: &mut Connection,
    role: &Role,
    tag: &str,
    round: usize,
    rng: &mut SmallRng,
    si: usize,
    servers: usize,
) -> bool {
    match role {
        Role::Reader => {
            let k = rng.gen_range(0usize..SHARED_FILES);
            conn.stat("/shared").is_ok()
                && conn.getdir("/shared").map(|d| d.len() == SHARED_FILES) == Ok(true)
                && conn
                    .getfile(&format!("/shared/f{k}"))
                    .map(|b| b.len() == 512 + 64 * k)
                    == Ok(true)
        }
        Role::Writer => {
            let len = rng.gen_range(1usize..2048);
            let body: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let path = format!("/w_{tag}_{round}");
            conn.putfile(&path, 0o644, &body).is_ok() && conn.getfile(&path) == Ok(body)
        }
        Role::Replicator => {
            let k = rng.gen_range(0usize..SHARED_FILES);
            if si + 1 >= servers {
                // No higher-numbered peer: replicate locally. THIRDPUT
                // runs on the serving core itself, so pushes must form
                // an acyclic "downhill" order — a push to self, or two
                // servers pushing to each other, parks the reactor(s)
                // against their own transfer until the client timeout.
                let body = match conn.getfile(&format!("/shared/f{k}")) {
                    Ok(body) => body,
                    Err(_) => return false,
                };
                return conn
                    .putfile(&format!("/rep_{tag}_{round}"), 0o644, &body)
                    .is_ok();
            }
            let sj = rng.gen_range(si + 1..servers);
            conn.thirdput(
                &format!("/shared/f{k}"),
                &sim.endpoint(sj),
                &format!("/rep_{tag}_{round}"),
            )
            .map(|n| n as usize == 512 + 64 * k)
                == Ok(true)
        }
        Role::AclChurner => {
            let dir = format!("/acl_{tag}");
            if round == 0 && conn.mkdir(&dir, 0o755).is_err() {
                return false;
            }
            // Thousands of distinct virtual users churn through the
            // grant table; one in four rounds revokes instead.
            let user = format!("globus:/O=Sim/CN=user{}", rng.gen_range(0u32..4096));
            let rights = if rng.gen_range(0u32..4) == 0 {
                ""
            } else {
                "rl"
            };
            conn.setacl(&dir, &user, rights).is_ok() && conn.getacl(&dir).is_ok()
        }
        Role::PathReader { path, len } => conn.getfile(path).map(|b| b.len() == *len) == Ok(true),
        Role::AuthStormer { .. } => unreachable!("handled by run_client"),
    }
}

/// Everything an envelope can assert on: client-side metrics, the
/// merged server-side telemetry delta, and resource measurements.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: &'static str,
    /// The seed the run used.
    pub seed: u64,
    /// Total client sessions that ran (the shrunken size during
    /// minimization — envelopes must scale their expectations by it).
    pub fleet: usize,
    /// Snapshot of the client-side registry: `client.ops`,
    /// `client.failures`, `client.denied`, `client.latency_ns`.
    pub client: MetricsSnapshot,
    /// Per-server telemetry deltas over the run, merged across the
    /// instance (`rpc.*`, `auth.*`, `reactor.*`).
    pub servers: MetricsSnapshot,
    /// Simulated time the run consumed (retry backoff, breaker
    /// cooldowns — all charged to the virtual clock).
    pub virtual_elapsed: Duration,
    /// Real time the run consumed.
    pub wall_elapsed: Duration,
    /// RSS growth across the run, where the host exposes it.
    pub rss_grown: Option<u64>,
}

impl ScenarioReport {
    /// Successful client operations.
    pub fn ops(&self) -> u64 {
        self.client.counter("client.ops").unwrap_or(0)
    }

    /// Unexpected client failures.
    pub fn failures(&self) -> u64 {
        self.client.counter("client.failures").unwrap_or(0)
    }

    /// Expected denials (auth storms with `expect_success: false`).
    pub fn denied(&self) -> u64 {
        self.client.counter("client.denied").unwrap_or(0)
    }

    /// The `q`-quantile of client-observed per-op wall latency.
    pub fn latency_quantile(&self, q: f64) -> Duration {
        self.client
            .histogram("client.latency_ns")
            .map(|h| Duration::from_nanos(h.quantile(q)))
            .unwrap_or(Duration::ZERO)
    }

    /// Aggregate successful client ops per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops() as f64 / self.wall_elapsed.as_secs_f64().max(1e-9)
    }

    /// One-line metric summary (also the [`fmt::Display`] rendering).
    fn summary(&self) -> String {
        format!(
            "ops={} failures={} denied={} p99={:?} ops/s={:.0} wall={:?} virtual={:?} rss_grown={}",
            self.ops(),
            self.failures(),
            self.denied(),
            self.latency_quantile(0.99),
            self.ops_per_sec(),
            self.wall_elapsed,
            self.virtual_elapsed,
            self.rss_grown
                .map(|b| format!("{}KiB", b / 1024))
                .unwrap_or_else(|| "n/a".into()),
        )
    }
}

impl fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scenario '{}' (seed {}, fleet {}): {}",
            self.name,
            self.seed,
            self.fleet,
            self.summary()
        )
    }
}

/// One or more envelopes violated, with the repro line and (for small
/// fleets) the minimized client set.
#[derive(Debug, Clone)]
pub struct ScenarioFailure {
    /// Scenario name.
    pub name: &'static str,
    /// The seed that reproduces the run.
    pub seed: u64,
    /// The violated checks: `(check name, message)`.
    pub failed: Vec<(&'static str, String)>,
    /// The minimal `(phase index, client)` fleet still violating an
    /// envelope; `None` when the fleet was too large to shrink.
    pub minimized: Option<Vec<(usize, ClientSpec)>>,
    /// The full report of the original (unshrunken) run.
    pub report: ScenarioReport,
}

impl fmt::Display for ScenarioFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scenario '{}' violated {} envelope check(s) (seed {}, fleet {}):",
            self.name,
            self.failed.len(),
            self.seed,
            self.report.fleet
        )?;
        for (name, msg) in &self.failed {
            writeln!(f, "  - {name}: {msg}")?;
        }
        writeln!(f, "  {}", self.report.summary())?;
        write!(
            f,
            "reproduce with: SCENARIO_SEED={} cargo test -p simharness --test scenarios_sim",
            self.seed
        )?;
        if let Ok(scale) = std::env::var("SCENARIO_SCALE") {
            write!(f, " (with SCENARIO_SCALE={scale})")?;
        }
        if let Some(fleet) = &self.minimized {
            write!(f, "\nminimized fleet ({} clients):", fleet.len())?;
            for (pi, spec) in fleet {
                write!(f, "\n  phase[{pi}] {:?} rounds={}", spec.role, spec.rounds)?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for ScenarioFailure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_fleet_meets_a_zero_failure_envelope() {
        let report = Scenario::new("unit-mixed", 7)
            .servers(2)
            .workers(8)
            .setup(standard_setup)
            .phase(
                Phase::new("steady")
                    .with(6, Role::Reader, 2)
                    .with(4, Role::Writer, 2)
                    .with(2, Role::Replicator, 1)
                    .with(2, Role::AclChurner, 3),
            )
            .check("zero-failures", |r| {
                if r.failures() == 0 {
                    Ok(())
                } else {
                    Err(format!("{} client failures", r.failures()))
                }
            })
            .check("all-ops-counted", |r| {
                // 6×2 + 4×2 + 2×1 + 2×3 = 28 successful rounds.
                if r.ops() == 28 {
                    Ok(())
                } else {
                    Err(format!("expected 28 ops, counted {}", r.ops()))
                }
            })
            .run()
            .unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(report.fleet, 14);
        assert!(report.servers.counter_sum("rpc.") > 0, "server delta empty");
    }

    #[test]
    fn violated_envelope_reports_seed_and_minimizes_the_fleet() {
        let err = Scenario::new("unit-impossible", 11)
            .setup(standard_setup)
            .phase(Phase::new("load").with(9, Role::Reader, 1))
            .check("impossible", |r| {
                Err(format!("fleet of {} can never pass", r.fleet))
            })
            .run()
            .expect_err("check always fails");
        let text = err.to_string();
        assert!(text.contains("SCENARIO_SEED=11"), "{text}");
        assert!(text.contains("impossible"), "{text}");
        // ddmin over a fleet whose envelope always fails lands on one
        // client.
        assert_eq!(err.minimized.as_ref().map(Vec::len), Some(1), "{text}");
    }

    #[test]
    fn fleet_size_scales_and_floors_at_one() {
        // No env manipulation (racy across threads): with the default
        // scale the build-profile base comes straight through.
        if std::env::var("SCENARIO_SCALE").is_err() {
            let expect = if cfg!(debug_assertions) { 10 } else { 100 };
            assert_eq!(fleet_size(10, 100), expect);
        }
        assert!(fleet_size(0, 0) >= 1);
    }
}

//! Deterministic simulation testing for the tactical storage system.
//!
//! The paper's thesis is that storage *abstractions* should be
//! separable from storage *resources*. This crate applies the same
//! separation to testing: the entire system — file servers, client
//! connections, striped and mirrored abstractions, retry and breaker
//! recovery, fault injection — runs in one process on an in-memory
//! transport ([`chirp_proto::MemNet`]) with a virtual clock, so a
//! whole multi-server deployment becomes a deterministic function of
//! a seed.
//!
//! Three pieces:
//!
//! * [`harness`] — [`SimTss`](harness::SimTss), a builder that stands
//!   up N real `FileServer`s in-process and wires clients, pools and
//!   abstractions to the shared memory network and virtual clock.
//! * [`model`] — [`ModelServer`](model::ModelServer), an executable
//!   specification of one Chirp server: an in-memory tree with ACL
//!   inheritance and POSIX-style fd semantics, small enough to audit
//!   by eye.
//! * [`gen`] + [`diff`] — a seeded generator of operation sequences
//!   and a differential checker that replays each sequence against
//!   the real handler stack and the model, diffing results
//!   byte-for-byte including error codes, and shrinks any divergence
//!   to a minimal trace.
//! * [`crash`] — crash-injection differential testing: every seeded
//!   sequence is re-run with a simulated kill at *each* durability
//!   point the golden run journals, and the restarted filesystem is
//!   checked (`fsck`, repair convergence, byte-level state) against
//!   the set of post-crash states the paper's stub/data ordering
//!   argument accepts.
//! * [`scenario`] — declarative mass-tenant scenarios: fleets of
//!   weighted client roles over phased load schedules, with named
//!   telemetry *envelopes* (latency quantiles, throughput, failure
//!   and RSS bounds) asserted over the run's metric deltas.
//!
//! Reproducing a failure is one number: the checker prints the seed,
//! and `SIM_SEED=<n> cargo test -p simharness` replays it exactly
//! (`CRASH_SEED=<n>` for the crash suite, `SCENARIO_SEED=<n>` for the
//! scenario suite).

#![warn(missing_docs)]

pub mod crash;
pub mod diff;
pub mod gen;
pub mod harness;
pub mod model;
pub mod scenario;

pub use crash::{CrashDivergence, CrashHarness, CrashOp, CrashStats};
pub use diff::{ddmin, run_seed, Divergence, OpResult};
pub use gen::{Op, OpGen};
pub use harness::{RouteDialer, SimTss};
pub use model::ModelServer;
pub use scenario::{
    fleet_size, scenario_seed, standard_setup, ClientSpec, Phase, Role, Scenario, ScenarioFailure,
    ScenarioReport,
};

//! Client-side read-ahead: a per-handle window filled by oversized
//! `PREAD`s serves small sequential reads without extra round trips,
//! and is invalidated by anything that could make it stale (writes,
//! truncates, reconnection).

mod common;

use chirp_proto::testutil::TempDir;
use chirp_proto::OpenFlags;
use common::{auth, open_server};
use tss_core::cfs::{Cfs, CfsConfig};
use tss_core::fs::FileSystem;

fn readahead_cfs(endpoint: &str, window: usize) -> Cfs {
    Cfs::new(CfsConfig::new(endpoint, auth()).with_readahead(window))
}

#[test]
fn sequential_small_reads_come_from_the_window() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let fs = readahead_cfs(&server.endpoint(), 64 * 1024);
    let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    fs.write_file("/big", &data).unwrap();

    let before = server.stats().snapshot().requests;
    let mut h = fs.open("/big", OpenFlags::READ, 0).unwrap();
    let mut out = Vec::new();
    let mut buf = [0u8; 1000];
    loop {
        let n = h.pread(&mut buf, out.len() as u64).unwrap();
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    assert_eq!(out, data);
    // 100 reads of 1000 bytes against a 64 KiB window: the server
    // should have seen a handful of big PREADs, not one per call.
    let rpcs = server.stats().snapshot().requests - before;
    assert!(rpcs < 20, "expected few amplified RPCs, saw {rpcs}");
}

#[test]
fn writes_invalidate_the_window() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let fs = readahead_cfs(&server.endpoint(), 64 * 1024);
    fs.write_file("/f", b"old old old old").unwrap();

    let mut h = fs
        .open("/f", OpenFlags::READ | OpenFlags::WRITE, 0)
        .unwrap();
    let mut buf = [0u8; 3];
    h.pread(&mut buf, 0).unwrap();
    assert_eq!(&buf, b"old");
    // Overwrite through the same handle; the stale window must not
    // answer the next read.
    h.pwrite(b"new", 0).unwrap();
    h.pread(&mut buf, 0).unwrap();
    assert_eq!(&buf, b"new");
}

#[test]
fn truncate_invalidates_the_window() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let fs = readahead_cfs(&server.endpoint(), 64 * 1024);
    fs.write_file("/f", b"0123456789").unwrap();

    let mut h = fs
        .open("/f", OpenFlags::READ | OpenFlags::WRITE, 0)
        .unwrap();
    let mut buf = [0u8; 10];
    assert_eq!(h.pread(&mut buf, 0).unwrap(), 10);
    h.ftruncate(4).unwrap();
    // The window held 10 bytes; after the truncate only 4 remain.
    assert_eq!(h.pread(&mut buf, 0).unwrap(), 4);
    assert_eq!(&buf[..4], b"0123");
}

#[test]
fn zero_window_means_no_buffering() {
    let dir = TempDir::new();
    let server = open_server(dir.path());
    let fs = readahead_cfs(&server.endpoint(), 0);
    fs.write_file("/f", b"abcdef").unwrap();

    let mut h = fs.open("/f", OpenFlags::READ, 0).unwrap();
    let before = server.stats().snapshot().requests;
    let mut b = [0u8; 2];
    for off in [0u64, 2, 4] {
        h.pread(&mut b, off).unwrap();
    }
    // Every pread is its own RPC — the paper's no-caching default.
    assert_eq!(server.stats().snapshot().requests - before, 3);
}

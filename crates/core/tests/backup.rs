//! The distributed-backup application over live storage: record,
//! peruse, restore, dedup, prune — the conclusion's closing scenario.

mod common;

use std::sync::Arc;

use chirp_proto::testutil::TempDir;
use common::{cfs, data_count, open_server};
use tss_core::BackupVault;

fn write_tree(root: &std::path::Path) {
    std::fs::create_dir_all(root.join("src")).unwrap();
    std::fs::write(root.join("README"), b"project docs").unwrap();
    std::fs::write(root.join("src/main.rs"), b"fn main() {}").unwrap();
    std::fs::write(root.join("src/lib.rs"), b"pub fn f() {}").unwrap();
}

fn vault_fixture() -> (TempDir, chirp_server::FileServer, BackupVault) {
    let host = TempDir::new();
    let server = open_server(host.path());
    let fs = Arc::new(cfs(&server.endpoint()));
    let vault = BackupVault::open(fs, "/backups").unwrap();
    (host, server, vault)
}

#[test]
fn backup_restore_round_trip() {
    let (_host, _server, vault) = vault_fixture();
    let src = TempDir::new();
    write_tree(src.path());
    let image = vault.backup(src.path(), "nightly").unwrap();
    assert_eq!(image.seq, 1);
    assert_eq!(image.file_count, 3);

    let dest = TempDir::new();
    let restored = vault.restore(&image.name, dest.path()).unwrap();
    assert_eq!(restored, 3);
    assert_eq!(
        std::fs::read(dest.path().join("README")).unwrap(),
        b"project docs"
    );
    assert_eq!(
        std::fs::read(dest.path().join("src/main.rs")).unwrap(),
        b"fn main() {}"
    );
}

#[test]
fn unchanged_files_share_blobs_across_images() {
    let (host, _server, vault) = vault_fixture();
    let src = TempDir::new();
    write_tree(src.path());
    vault.backup(src.path(), "one").unwrap();
    let objects_after_first = data_count(&host.path().join("backups/objects"));
    assert_eq!(objects_after_first, 3);

    // Change one file, add none: only one new blob appears.
    std::fs::write(src.path().join("README"), b"project docs v2").unwrap();
    let image2 = vault.backup(src.path(), "two").unwrap();
    assert_eq!(image2.seq, 2);
    let objects_after_second = data_count(&host.path().join("backups/objects"));
    assert_eq!(
        objects_after_second,
        objects_after_first + 1,
        "dedup: unchanged files upload nothing"
    );
    assert_eq!(vault.images().unwrap().len(), 2);
}

#[test]
fn online_perusal_and_forensics_over_time() {
    let (_host, _server, vault) = vault_fixture();
    let src = TempDir::new();
    write_tree(src.path());
    vault.backup(src.path(), "before").unwrap();
    std::fs::write(src.path().join("src/main.rs"), b"fn main() { pwned(); }").unwrap();
    vault.backup(src.path(), "after").unwrap();

    let images = vault.images().unwrap();
    assert_eq!(images.len(), 2);
    // Forensics: compare the same path across points in time without
    // restoring anything.
    let old = vault.read_file(&images[0].name, "src/main.rs").unwrap();
    let new = vault.read_file(&images[1].name, "src/main.rs").unwrap();
    assert_eq!(old, b"fn main() {}");
    assert_eq!(new, b"fn main() { pwned(); }");
    // Perusal lists the tree.
    let listing = vault.list_image(&images[0].name).unwrap();
    assert_eq!(listing.len(), 3);
    assert!(listing.iter().any(|(p, _)| p == "README"));
}

#[test]
fn prune_keeps_recent_images_and_collects_garbage() {
    let (host, _server, vault) = vault_fixture();
    let src = TempDir::new();
    write_tree(src.path());
    for label in ["a", "b", "c"] {
        std::fs::write(src.path().join("README"), format!("version {label}")).unwrap();
        vault.backup(src.path(), label).unwrap();
    }
    // 3 shared blobs + 3 README versions... shared: main.rs, lib.rs
    // constant; README differs per image.
    assert_eq!(data_count(&host.path().join("backups/objects")), 5);

    let (images_removed, objects_removed) = vault.prune(1).unwrap();
    assert_eq!(images_removed, 2);
    assert_eq!(objects_removed, 2, "two stale README blobs collected");
    let images = vault.images().unwrap();
    assert_eq!(images.len(), 1);
    assert_eq!(images[0].label, "c");
    // The survivor is fully restorable.
    let dest = TempDir::new();
    vault.restore(&images[0].name, dest.path()).unwrap();
    assert_eq!(
        std::fs::read(dest.path().join("README")).unwrap(),
        b"version c"
    );
}

#[test]
fn corrupted_blob_is_detected_on_read() {
    let (host, _server, vault) = vault_fixture();
    let src = TempDir::new();
    write_tree(src.path());
    let image = vault.backup(src.path(), "x").unwrap();
    // Corrupt one object in place on the storage host.
    let objects = host.path().join("backups/objects");
    let victim = std::fs::read_dir(&objects)
        .unwrap()
        .flatten()
        .find(|e| e.file_name() != ".__acl")
        .unwrap();
    std::fs::write(victim.path(), b"garbage").unwrap();
    // At least one file now fails its checksum on perusal.
    let failures = vault
        .list_image(&image.name)
        .unwrap()
        .iter()
        .filter(|(p, _)| vault.read_file(&image.name, p).is_err())
        .count();
    assert_eq!(failures, 1);
}

#[test]
fn labels_are_validated() {
    let (_host, _server, vault) = vault_fixture();
    let src = TempDir::new();
    write_tree(src.path());
    assert!(vault.backup(src.path(), "").is_err());
    assert!(vault.backup(src.path(), "has/slash").is_err());
    assert!(vault.backup(src.path(), "has-dash").is_err());
}

//! A small TCP forwarding proxy used by the recovery tests to simulate
//! network failures between adapter and file server without touching
//! the server itself.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// A proxy that forwards TCP connections to a retargetable backend and
/// can sever every live connection on demand.
pub struct FlakyProxy {
    addr: SocketAddr,
    target: Arc<Mutex<Option<SocketAddr>>>,
    live: Arc<Mutex<Vec<TcpStream>>>,
    shutdown: Arc<AtomicBool>,
}

impl FlakyProxy {
    /// Start a proxy forwarding to `target`.
    pub fn start(target: SocketAddr) -> FlakyProxy {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let target = Arc::new(Mutex::new(Some(target)));
        let live: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let (t, l, s) = (target.clone(), live.clone(), shutdown.clone());
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if s.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(client) = conn else { continue };
                let Some(backend_addr) = *t.lock().unwrap() else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                let Ok(backend) = TcpStream::connect(backend_addr) else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                client.set_nodelay(true).ok();
                backend.set_nodelay(true).ok();
                {
                    let mut live = l.lock().unwrap();
                    live.push(client.try_clone().unwrap());
                    live.push(backend.try_clone().unwrap());
                }
                spawn_pump(client.try_clone().unwrap(), backend.try_clone().unwrap());
                spawn_pump(backend, client);
            }
        });
        FlakyProxy {
            addr,
            target,
            live,
            shutdown,
        }
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The `host:port` endpoint string for clients.
    pub fn endpoint(&self) -> String {
        self.addr.to_string()
    }

    /// Sever every live connection (both directions).
    pub fn drop_connections(&self) {
        let mut live = self.live.lock().unwrap();
        for s in live.drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    /// Point the proxy at a different backend (or `None` to refuse).
    pub fn set_target(&self, target: Option<SocketAddr>) {
        *self.target.lock().unwrap() = target;
    }
}

impl Drop for FlakyProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        self.drop_connections();
    }
}

fn spawn_pump(mut from: TcpStream, mut to: TcpStream) {
    std::thread::spawn(move || {
        let mut buf = [0u8; 64 * 1024];
        loop {
            match from.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    if to.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        }
        let _ = to.shutdown(Shutdown::Both);
    });
}

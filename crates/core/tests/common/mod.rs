//! Shared helpers for tss-core integration tests.
//!
//! Each integration test binary compiles this module separately, so
//! items used by only one binary look dead in the others.
#![allow(dead_code)]

pub mod proxy;

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use chirp_client::AuthMethod;
use chirp_server::acl::Acl;
use chirp_server::{FileServer, ServerConfig};
use tss_core::cfs::{Cfs, CfsConfig, RetryPolicy};

/// Network timeout for tests: short, so failure paths stay fast.
pub const TIMEOUT: Duration = Duration::from_millis(2000);

/// Start a file server granting full non-admin rights to hostname
/// subjects.
pub fn open_server(root: &Path) -> FileServer {
    let cfg = ServerConfig::localhost(root, "test-owner")
        .with_root_acl(Acl::single("hostname:*", "rwlda").unwrap());
    FileServer::start(cfg).unwrap()
}

/// Hostname auth, the default for loopback tests.
pub fn auth() -> Vec<AuthMethod> {
    vec![AuthMethod::Hostname]
}

/// A CFS with a fast retry policy suited to tests.
pub fn cfs(endpoint: &str) -> Cfs {
    let mut cfg = CfsConfig::new(endpoint, auth());
    cfg.timeout = TIMEOUT;
    cfg.retry = RetryPolicy {
        max_retries: 5,
        initial_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(100),
        ..RetryPolicy::default()
    };
    Cfs::new(cfg)
}

/// An Arc'd CFS for use as a DSFS metadata store.
pub fn cfs_arc(endpoint: &str) -> Arc<Cfs> {
    Arc::new(cfs(endpoint))
}

/// Count the data files in a host directory, ignoring the server's
/// private ACL metadata.
pub fn data_count(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .unwrap()
        .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().as_ref() != ".__acl")
        .count()
}
